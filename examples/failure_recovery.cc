// Failure & recovery walkthrough. Re-enacts the paper's motivating
// multi-failure example (Sections 2, 3.3) step by step on the protocol
// testbed, showing why 2PC blocks and EasyCommit does not, then
// demonstrates WAL-driven independent recovery (Section 4.2).
//
// Run: ./build/examples/failure_recovery
//
// With `--trace-dir DIR`, the EasyCommit multi-failure run is re-executed
// with protocol tracing enabled and exported to DIR as
// failure_recovery_ec.jsonl (offline checker / grep) and
// failure_recovery_ec.chrome.json (load in Perfetto or chrome://tracing).
//
// With `--chaos-seed N`, the scripted walkthrough is replaced by a seeded
// chaos case (src/chaos/): a generated fault plan — crashes, restarts,
// link cuts, loss bursts, delay spikes — runs against an EasyCommit
// cluster, then the end-to-end crash-recovery audit crash-restarts every
// node and checks atomicity, durability and liveness. Same seed, same
// timeline, same verdict, every time.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/campaign.h"
#include "chaos/fault_plan.h"
#include "commit/recovery.h"
#include "commit/testbed.h"
#include "trace/trace_export.h"

using namespace ecdb;
using ecdb::testbed::ProtocolTestbed;

namespace {

// The scenario: coordinator C(0) and cohorts X(1), Y(2), Z(3). C decides
// commit, fails mid-broadcast so only X is addressed, and X fails too.
void RunMotivatingExample(CommitProtocol protocol, bool x_receives,
                          const std::string& trace_dir = "") {
  std::printf("\n--- %s, X %s the decision before failing ---\n",
              ToString(protocol).c_str(),
              x_receives ? "receives (and under EC forwards)" : "never sees");

  NetworkConfig net;
  net.base_latency_us = 100;
  net.jitter_us = 0;
  ProtocolTestbed bed(protocol, 4, net);
  if (!trace_dir.empty()) bed.EnableTracing();

  bed.network().SetSendFilter([&bed](const Message& msg) {
    const bool decision = msg.type == MsgType::kGlobalCommit ||
                          msg.type == MsgType::kGlobalAbort;
    if (decision && msg.src == 0 && !msg.forwarded && msg.dst != 1) {
      std::printf("  [fault] C crashes mid-broadcast; decision for node %u "
                  "never leaves C\n", msg.dst);
      bed.network().CrashNode(0);
      return false;
    }
    return true;
  });
  bed.network().SetDeliveryInterceptor([&bed,
                                        x_receives](const Message& msg) {
    const bool decision = msg.type == MsgType::kGlobalCommit ||
                          msg.type == MsgType::kGlobalAbort;
    if (decision && msg.src == 0 && msg.dst == 1 && !x_receives) {
      std::printf("  [fault] X crashes before the decision reaches it\n");
      bed.network().CrashNode(1);
      return false;
    }
    return true;
  });

  const TxnId txn = bed.StartAll();
  bed.Settle();
  if (x_receives && !bed.network().IsCrashed(1)) {
    std::printf("  [fault] X crashes after forwarding + committing\n");
    bed.network().CrashNode(1);
    bed.Settle();
  }

  for (NodeId id = 2; id <= 3; ++id) {
    const auto applied = bed.host(id).applied(txn);
    if (applied.has_value()) {
      std::printf("  node %u (%c): decided %s\n", id, id == 2 ? 'Y' : 'Z',
                  ToString(*applied).c_str());
    } else if (bed.host(id).blocked_count() > 0) {
      std::printf("  node %u (%c): BLOCKED — cannot terminate the "
                  "transaction\n", id, id == 2 ? 'Y' : 'Z');
    } else {
      std::printf("  node %u (%c): undecided\n", id, id == 2 ? 'Y' : 'Z');
    }
  }
  std::printf("  termination rounds run: %llu, safety violations: %zu\n",
              static_cast<unsigned long long>(
                  bed.host(2).engine().termination_rounds() +
                  bed.host(3).engine().termination_rounds()),
              bed.monitor().Violations().size());

  if (!trace_dir.empty()) {
    TraceMeta meta;
    meta.runtime = "testbed";
    meta.protocol = ToString(protocol);
    meta.num_nodes = 4;
    const std::vector<TraceEvent> events = CollectEvents(bed.recorders());
    const std::string jsonl = trace_dir + "/failure_recovery_ec.jsonl";
    const std::string chrome = trace_dir + "/failure_recovery_ec.chrome.json";
    if (!WriteJsonlFile(meta, events, jsonl) ||
        !WriteChromeTraceFile(meta, events, chrome)) {
      std::fprintf(stderr, "failed to write traces under %s\n",
                   trace_dir.c_str());
      std::exit(1);
    }
    std::printf("  traced %zu events -> %s (+ .chrome.json)\n",
                events.size(), jsonl.c_str());
  }
}

// Independent recovery (Section 4.2): what a node decides from its own WAL
// after a crash.
void ShowIndependentRecovery() {
  std::printf("\n--- independent recovery from the WAL (Section 4.2) ---\n");
  MemoryWal wal;
  // Four transactions crashed at different protocol points.
  wal.Append({0, 1, LogRecordType::kReady, {0, 1, 2}});          // voted
  wal.Append({0, 2, LogRecordType::kBeginCommit, {1, 0, 2}});    // pre-vote
  wal.Append({0, 3, LogRecordType::kCommitReceived, {0, 1, 2}});
  wal.Append({0, 4, LogRecordType::kAbortDecision, {1, 0, 2}});

  for (TxnId txn : RecoveryManager::InFlightTxns(wal)) {
    const char* action = "?";
    switch (RecoveryManager::Analyze(wal, txn)) {
      case RecoveryAction::kAbort:
        action = "abort independently";
        break;
      case RecoveryAction::kCommit:
        action = "commit independently";
        break;
      case RecoveryAction::kConsultPeers:
        action = "consult peers (outcome unknowable locally)";
        break;
    }
    std::printf("  txn %llu: last entry '%s' -> %s\n",
                static_cast<unsigned long long>(txn),
                ToString(wal.LastFor(txn)->type).c_str(), action);
  }
}

// Seeded chaos mode: one generated fault plan + the full audit, narrated.
int RunChaosCaseDemo(uint64_t seed) {
  ChaosCaseConfig cfg;  // EasyCommit, 4 nodes, default intensity
  std::printf("Chaos case: %s, %u nodes, seed %llu (deterministic)\n",
              ToString(cfg.protocol).c_str(), cfg.num_nodes,
              static_cast<unsigned long long>(seed));

  const FaultPlan plan = GenerateFaultPlan(seed, cfg.num_nodes,
                                           cfg.horizon_us, cfg.intensity);
  std::printf("\nfault timeline (%zu events over %llu ms):\n",
              plan.events.size(),
              static_cast<unsigned long long>(plan.horizon_us / 1000));
  for (const FaultEvent& ev : plan.events) {
    std::printf("  t=%6llu us  %s", static_cast<unsigned long long>(ev.at_us),
                ToString(ev.type));
    if (ev.a != kInvalidNode) std::printf("  a=%u", ev.a);
    if (ev.b != kInvalidNode) std::printf("  b=%u", ev.b);
    if (ev.duration_us > 0) {
      std::printf("  for %llu us",
                  static_cast<unsigned long long>(ev.duration_us));
    }
    if (ev.probability > 0) std::printf("  p=%.2f", ev.probability);
    std::printf("\n");
  }

  const ChaosCaseResult result = RunChaosCase(cfg, seed);
  std::printf("\naudit (quiesce -> crash every node -> WAL recovery -> "
              "drain):\n");
  std::printf("  quiescent:     %s\n", result.audit.quiescent ? "yes" : "NO");
  std::printf("  acked commits: %llu\n",
              static_cast<unsigned long long>(result.audit.acked_commits));
  std::printf("  blocked txns:  %llu\n",
              static_cast<unsigned long long>(result.audit.blocked_txns));
  for (const AuditViolation& v : result.audit.violations) {
    std::printf("  VIOLATION [%s] txn=%llu: %s\n", v.check.c_str(),
                static_cast<unsigned long long>(v.txn), v.detail.c_str());
  }
  std::printf("\nverdict: %s\n", result.ok() ? "PASS — every client-acked "
              "commit survived, no node disagrees on any outcome"
                                             : "FAIL");
  return result.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-dir") == 0 && i + 1 < argc) {
      trace_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--chaos-seed") == 0 && i + 1 < argc) {
      return RunChaosCaseDemo(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: failure_recovery [--trace-dir DIR] "
                   "[--chaos-seed N]\n");
      return 2;
    }
  }

  std::printf("Failure handling: the paper's motivating example\n");
  std::printf("(coordinator C + cohorts X, Y, Z; C and X fail)\n");

  RunMotivatingExample(CommitProtocol::kTwoPhase, /*x_receives=*/false);
  RunMotivatingExample(CommitProtocol::kEasyCommit, /*x_receives=*/false);
  RunMotivatingExample(CommitProtocol::kEasyCommit, /*x_receives=*/true,
                       trace_dir);
  RunMotivatingExample(CommitProtocol::kThreePhase, /*x_receives=*/false);

  ShowIndependentRecovery();

  std::printf("\nSummary: 2PC blocks Y and Z; EC terminates them in two\n"
              "phases (abort when nobody saw the decision, commit when X's\n"
              "forwards arrive); 3PC also terminates but needs its third\n"
              "phase on every transaction to do so.\n");
  return 0;
}
