// Quickstart: stand up a simulated 4-node shared-nothing cluster, run the
// YCSB workload under each atomic-commitment protocol (2PC, 3PC,
// EasyCommit) and compare throughput and latency.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "cluster/sim_cluster.h"
#include "workload/ycsb.h"

using namespace ecdb;

int main() {
  std::printf("ecdb quickstart: EasyCommit vs 2PC vs 3PC on YCSB\n\n");

  for (CommitProtocol protocol :
       {CommitProtocol::kTwoPhase, CommitProtocol::kThreePhase,
        CommitProtocol::kEasyCommit}) {
    // 1. Describe the cluster: 4 server nodes, 4 worker threads each,
    //    closed-loop clients, a LAN-like network, and the chosen commit
    //    protocol. Everything else keeps its defaults.
    ClusterConfig cluster_config;
    cluster_config.num_nodes = 4;
    cluster_config.clients_per_node = 16;
    cluster_config.protocol = protocol;

    // 2. Describe the workload: YCSB with 10 operations per transaction,
    //    half of them writes, spanning 2 of the 4 partitions, with a
    //    moderately skewed (Zipfian theta = 0.6) access pattern.
    YcsbConfig ycsb_config;
    ycsb_config.num_partitions = cluster_config.num_nodes;
    ycsb_config.rows_per_partition = 65536;
    ycsb_config.theta = 0.6;

    // 3. Run: warm up, then measure one simulated second.
    SimCluster cluster(cluster_config,
                       std::make_unique<YcsbWorkload>(ycsb_config));
    cluster.Start();
    cluster.RunFor(0.25);  // warmup (simulated seconds)
    cluster.BeginMeasurement();
    cluster.RunFor(1.0);
    const ClusterStats stats = cluster.CollectStats(1.0);

    // 4. Read the results.
    std::printf("%-4s  throughput %8.0f txns/s   p99 latency %6.1f ms   "
                "aborts/commit %.2f\n",
                ToString(protocol).c_str(), stats.Throughput(),
                stats.total.latency.Percentile(0.99) / 1000.0,
                stats.AbortRate());

    // The safety monitor watches every applied decision: no two nodes may
    // ever disagree on a transaction's outcome.
    if (!cluster.monitor().Violations().empty()) {
      std::printf("  !! safety violation detected (this is a bug)\n");
      return 1;
    }
  }

  std::printf(
      "\nExpected: EC ~= 2PC throughput, both well above 3PC; EC is the\n"
      "only one of the three that is both two-phase and non-blocking.\n");
  return 0;
}
