// Parameterized YCSB driver: explore the simulated cluster from the
// command line and print the full metric readout, including the Figure-12
// style time breakdown.
//
// Usage: ycsb_demo [protocol] [nodes] [theta] [write_pct] [parts_per_txn]
//                  [coalesce]
//   protocol: 2pc | 3pc | ec | ec-noforward     (default ec)
//   nodes:    cluster size                      (default 8)
//   theta:    Zipfian skew 0.0..0.95            (default 0.6)
//   write_pct: percent of operations that write (default 50)
//   parts_per_txn: partitions per transaction   (default 2)
//   coalesce: 1 enables transport coalescing    (default 0)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "cluster/sim_cluster.h"
#include "workload/ycsb.h"

using namespace ecdb;

namespace {

CommitProtocol ParseProtocol(const char* arg) {
  if (std::strcmp(arg, "2pc") == 0) return CommitProtocol::kTwoPhase;
  if (std::strcmp(arg, "3pc") == 0) return CommitProtocol::kThreePhase;
  if (std::strcmp(arg, "ec") == 0) return CommitProtocol::kEasyCommit;
  if (std::strcmp(arg, "ec-noforward") == 0) {
    return CommitProtocol::kEasyCommitNoForward;
  }
  std::fprintf(stderr, "unknown protocol '%s' (want 2pc|3pc|ec|ec-noforward)\n",
               arg);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  ClusterConfig cluster_config;
  cluster_config.num_nodes = 8;
  cluster_config.protocol = CommitProtocol::kEasyCommit;

  YcsbConfig ycsb;
  ycsb.rows_per_partition = 131072;
  ycsb.theta = 0.6;

  if (argc > 1) cluster_config.protocol = ParseProtocol(argv[1]);
  if (argc > 2) cluster_config.num_nodes = std::atoi(argv[2]);
  if (argc > 3) ycsb.theta = std::atof(argv[3]);
  if (argc > 4) ycsb.write_fraction = std::atof(argv[4]) / 100.0;
  if (argc > 5) ycsb.partitions_per_txn = std::atoi(argv[5]);
  if (argc > 6) cluster_config.coalesce_transport = std::atoi(argv[6]) != 0;
  ycsb.num_partitions = cluster_config.num_nodes;

  std::printf("YCSB on %u nodes, %s, theta %.2f, %.0f%% writes, "
              "%u partitions/txn%s\n",
              cluster_config.num_nodes,
              ToString(cluster_config.protocol).c_str(), ycsb.theta,
              ycsb.write_fraction * 100.0, ycsb.partitions_per_txn,
              cluster_config.coalesce_transport ? ", coalesced" : "");

  SimCluster cluster(cluster_config, std::make_unique<YcsbWorkload>(ycsb));
  cluster.Start();
  cluster.RunFor(0.25);
  cluster.BeginMeasurement();
  cluster.RunFor(1.0);
  const ClusterStats stats = cluster.CollectStats(1.0);

  std::printf("\n  throughput        %10.0f txns/s\n", stats.Throughput());
  std::printf("  latency mean      %10.2f ms\n",
              stats.total.latency.Mean() / 1000.0);
  std::printf("  latency p50       %10.2f ms\n",
              stats.total.latency.Percentile(0.5) / 1000.0);
  std::printf("  latency p99       %10.2f ms\n",
              stats.total.latency.Percentile(0.99) / 1000.0);
  std::printf("  aborts per commit %10.3f\n", stats.AbortRate());
  std::printf("  commit protocols  %10llu runs\n",
              static_cast<unsigned long long>(
                  stats.total.commit_protocol_runs));
  std::printf("  blocked txns      %10llu\n",
              static_cast<unsigned long long>(stats.total.txns_blocked));

  std::printf("\n  commit phase latency (committed txns, us):\n");
  struct PhaseRow {
    const char* name;
    const Histogram* h;
  };
  const PhaseRow phases[] = {
      {"vote collection", &stats.total.phase_vote},
      {"decision transmit", &stats.total.phase_transmit},
      {"decision apply", &stats.total.phase_apply},
  };
  for (const PhaseRow& p : phases) {
    std::printf("    %-18s mean %8.1f  p99 %8llu  (n=%llu)\n", p.name,
                p.h->Mean(),
                static_cast<unsigned long long>(p.h->Percentile(0.99)),
                static_cast<unsigned long long>(p.h->count()));
  }
  std::printf("  termination rounds %9llu, messages at crashed nodes: "
              "from %llu / to %llu\n",
              static_cast<unsigned long long>(
                  stats.total.termination_rounds),
              static_cast<unsigned long long>(
                  stats.net_messages_from_crashed),
              static_cast<unsigned long long>(stats.net_messages_to_crashed));

  std::printf("\n  time breakdown (Figure 12 categories):\n");
  for (size_t c = 0; c < kNumTimeCategories; ++c) {
    std::printf("    %-12s %6.1f%%\n",
                ToString(static_cast<TimeCategory>(c)).c_str(),
                100.0 * stats.TimeFraction(static_cast<TimeCategory>(c)));
  }

  std::printf("\n  network: %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(
                  cluster.network().stats().messages_sent),
              static_cast<unsigned long long>(
                  cluster.network().stats().bytes_sent));
  std::printf("  coalescing: %llu frames, %llu messages coalesced, "
              "%llu duplicate decisions suppressed, %llu WAL group flushes\n",
              static_cast<unsigned long long>(stats.net_frames_sent),
              static_cast<unsigned long long>(stats.net_messages_coalesced),
              static_cast<unsigned long long>(
                  stats.duplicate_decisions_suppressed),
              static_cast<unsigned long long>(stats.wal_group_flushes));
  std::printf("  safety violations: %zu (must be 0 for 2pc/3pc/ec)\n",
              cluster.monitor().Violations().size());
  return 0;
}
