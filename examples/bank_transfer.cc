// Bank-transfer example: a custom workload on the *threaded* runtime
// (real OS threads, wall-clock time), demonstrating
//   * how to implement your own Workload,
//   * distributed transactions that span partitions (transfers between
//     accounts homed on different nodes),
//   * the atomicity audit: every committed transfer updates exactly two
//     account rows, so the total number of row updates must equal
//     2 x committed transfers — aborted attempts must leave no trace.
//
// Run: ./build/examples/bank_transfer

#include <cstdio>
#include <memory>

#include "cluster/thread_node.h"
#include "common/logging.h"
#include "workload/workload.h"

using namespace ecdb;

namespace {

constexpr TableId kAccounts = 0;
constexpr uint64_t kAccountsPerBranch = 1024;

/// Each node hosts one bank branch with `kAccountsPerBranch` accounts.
/// A transfer touches two accounts; 40% of transfers cross branches.
class BankWorkload : public Workload {
 public:
  explicit BankWorkload(uint32_t branches) : branches_(branches) {}

  void LoadPartition(PartitionStore* store,
                     const KeyPartitioner& partitioner) override {
    (void)partitioner;
    Status s = store->CreateTable(kAccounts, "accounts", /*num_columns=*/2);
    ECDB_CHECK(s.ok());
    Table* accounts = store->GetTable(kAccounts);
    for (uint64_t a = 0; a < kAccountsPerBranch; ++a) {
      ECDB_CHECK(accounts->Insert(AccountKey(store->id(), a)).ok());
    }
  }

  TxnRequest NextTxn(PartitionId home, Rng& rng) override {
    TxnRequest request;
    const Key from = AccountKey(home, rng.NextBounded(kAccountsPerBranch));
    PartitionId to_branch = home;
    if (branches_ > 1 && rng.NextBernoulli(0.4)) {
      do {
        to_branch = static_cast<PartitionId>(rng.NextBounded(branches_));
      } while (to_branch == home);
    }
    Key to = AccountKey(to_branch, rng.NextBounded(kAccountsPerBranch));
    while (to == from) {
      to = AccountKey(to_branch, rng.NextBounded(kAccountsPerBranch));
    }
    request.ops.push_back({kAccounts, from, AccessMode::kWrite});
    request.ops.push_back({kAccounts, to, AccessMode::kWrite});
    return request;
  }

  Key AccountKey(PartitionId branch, uint64_t account) const {
    return account * branches_ + branch;
  }

 private:
  uint32_t branches_;
};

}  // namespace

int main() {
  constexpr uint32_t kBranches = 4;

  ThreadClusterConfig config;
  config.num_nodes = kBranches;
  config.clients_per_node = 4;
  config.protocol = CommitProtocol::kEasyCommit;

  auto workload = std::make_unique<BankWorkload>(kBranches);
  BankWorkload* bank = workload.get();
  ThreadCluster cluster(config, std::move(workload));

  std::printf("bank_transfer: %u branches on real threads, EasyCommit\n",
              kBranches);
  cluster.Start();
  cluster.RunFor(2.0);   // wall-clock seconds
  cluster.Quiesce(0.5);  // drain in-flight transfers so the audit is exact
  cluster.Stop();

  uint64_t committed = 0, aborted = 0;
  for (NodeId id = 0; id < kBranches; ++id) {
    committed += cluster.node(id).stats().txns_committed;
    aborted += cluster.node(id).stats().txns_aborted;
  }

  // Atomicity audit: each committed transfer bumped exactly two account
  // versions; aborted attempts must have been rolled back completely.
  uint64_t total_updates = 0;
  for (NodeId id = 0; id < kBranches; ++id) {
    Table* accounts = cluster.node(id).store().GetTable(kAccounts);
    for (uint64_t a = 0; a < kAccountsPerBranch; ++a) {
      total_updates +=
          accounts->Get(bank->AccountKey(id, a)).value()->version;
    }
  }

  std::printf("committed transfers: %llu (plus %llu aborted+retried "
              "attempts)\n",
              static_cast<unsigned long long>(committed),
              static_cast<unsigned long long>(aborted));
  std::printf("account updates:     %llu (expected exactly 2 x committed "
              "= %llu)\n",
              static_cast<unsigned long long>(total_updates),
              static_cast<unsigned long long>(2 * committed));
  if (total_updates != 2 * committed) {
    std::printf("ATOMICITY VIOLATION — this is a bug\n");
    return 1;
  }
  std::printf("atomicity audit passed: no partial transfers.\n");
  return 0;
}
