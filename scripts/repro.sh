#!/usr/bin/env bash
# One-shot reproduction driver: configure, build, run the full test suite
# and regenerate every paper exhibit. Outputs land in test_output.txt and
# bench_output.txt at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    echo "############ $b"
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt
