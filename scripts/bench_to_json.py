#!/usr/bin/env python3
"""Run the engine benchmark harness and record results in BENCH_engine.json.

BENCH_engine.json is the repository's perf-trajectory file: an append-only
list of labeled benchmark snapshots, one per recorded run (e.g. "seed",
"pr1", ...). Comparing the latest entry against its predecessors is how a PR
proves it did not regress the simulator hot paths (docs/PERFORMANCE.md).

Usage:
    scripts/bench_to_json.py --label pr1 [--build build] [--out BENCH_engine.json]
    scripts/bench_to_json.py --compare seed pr1   # print speedup table

The benchmark binary must already be built:
    cmake -B build -S . && cmake --build build --target bench_engine -j
"""

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def git_commit():
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            text=True).strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


#: Benchmark binaries recorded into each snapshot. bench_engine (simulator
#: hot paths) is required; bench_threaded (wall-clock threaded runtime) and
#: bench_open_loop (offered-load latency tails) are skipped with a warning
#: when the build predates them.
BINARIES = [("bench_engine", True), ("bench_threaded", False),
            ("bench_open_loop", False)]

#: google-benchmark time_unit -> nanosecond multiplier. Benchmarks choose
#: their display unit (the 4096-node rounds report in us); the trajectory
#: file always stores ns so entries stay comparable across unit changes.
TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def run_one_binary(binary, repetitions):
    cmd = [
        binary,
        "--benchmark_format=json",
        f"--benchmark_repetitions={repetitions}",
        "--benchmark_report_aggregates_only=true",
    ]
    raw = json.loads(subprocess.check_output(cmd, text=True))
    results = {}
    for bench in raw.get("benchmarks", []):
        # With aggregates, keep the median; without, the single run.
        if bench.get("aggregate_name", "median") != "median":
            continue
        name = bench["run_name"] if "run_name" in bench else bench["name"]
        unit = TIME_UNIT_NS.get(bench.get("time_unit", "ns"))
        if unit is None:
            sys.exit(f"{name}: unknown time_unit "
                     f"'{bench.get('time_unit')}' in benchmark output")
        results[name] = {
            "real_time_ns": bench["real_time"] * unit,
            "cpu_time_ns": bench["cpu_time"] * unit,
            "items_per_second": bench.get("items_per_second"),
        }
        # Custom counters (e.g. termination_rounds on the threaded cluster
        # runs, latency tails on the open-loop runs) ride along when the
        # binary reports them.
        for counter in ("termination_rounds", "dropped_at_crashed",
                        "frames_sent", "messages_coalesced",
                        "duplicate_decisions_suppressed",
                        "wal_group_flushes",
                        "offered_per_sec", "committed_per_sec",
                        "rejected_per_sec", "p50_us", "p99_us", "p999_us"):
            if counter in bench:
                results[name][counter] = bench[counter]
    if not results:
        sys.exit(f"{binary} produced no parseable benchmark results")
    return {"context": raw.get("context", {}), "results": results}


def run_benchmarks(build_dir, repetitions):
    context, results = {}, {}
    for name, required in BINARIES:
        binary = os.path.join(REPO_ROOT, build_dir, "bench", name)
        if not os.path.exists(binary):
            if required:
                sys.exit(f"benchmark binary not found: {binary} "
                         f"(build the {name} target first)")
            print(f"note: {binary} not built, skipping", file=sys.stderr)
            continue
        snapshot = run_one_binary(binary, repetitions)
        context = context or snapshot["context"]
        results.update(snapshot["results"])
    return {"context": context, "results": results}


def load(path):
    if os.path.exists(path):
        with open(path) as f:
            content = f.read().strip()
            if content:
                return json.loads(content)
    return {"description":
            "Perf trajectory of the simulator engine hot paths; entries are "
            "appended by scripts/bench_to_json.py (see docs/PERFORMANCE.md).",
            "entries": []}


def pr_number(label):
    """pr-style labels ('pr3') order by number; 'seed' sorts first."""
    if label == "seed":
        return -1
    if label.startswith("pr") and label[2:].isdigit():
        return int(label[2:])
    return None


def validate_entries(entries):
    """The trajectory file is append-only history: labels must be unique
    and pr-numbered labels must appear in increasing order. A violation
    means a snapshot was recorded out of sequence (or hand-edited), which
    silently corrupts every later --compare."""
    seen = set()
    last_ordered = None
    for entry in entries:
        label = entry.get("label")
        if not label:
            sys.exit("trajectory entry without a label")
        if label in seen:
            sys.exit(f"duplicate trajectory label '{label}'")
        seen.add(label)
        number = pr_number(label)
        if number is None:
            continue  # ad-hoc labels (e.g. 'wip') carry no order
        if last_ordered is not None and number <= last_ordered:
            sys.exit(f"trajectory label '{label}' out of order: recorded "
                     f"after pr{last_ordered}")
        last_ordered = number


def cmd_record(args):
    out_path = os.path.join(REPO_ROOT, args.out)
    data = load(out_path)
    snapshot = run_benchmarks(args.build, args.repetitions)
    entry = {
        "label": args.label,
        "commit": git_commit(),
        "host": snapshot["context"].get("host_name", "unknown"),
        "num_cpus": snapshot["context"].get("num_cpus"),
        "benchmarks": snapshot["results"],
    }
    data["entries"] = [e for e in data["entries"] if e["label"] != args.label]
    data["entries"].append(entry)
    validate_entries(data["entries"])
    with open(out_path, "w") as f:
        json.dump(data, f, indent=2)
        f.write("\n")
    print(f"recorded {len(entry['benchmarks'])} benchmarks as "
          f"'{args.label}' in {args.out}")


def cmd_compare(args):
    data = load(os.path.join(REPO_ROOT, args.out))
    validate_entries(data["entries"])
    by_label = {e["label"]: e for e in data["entries"]}
    for label in (args.base, args.new):
        if label not in by_label:
            sys.exit(f"no entry labeled '{label}' in {args.out}")
    base = by_label[args.base]["benchmarks"]
    new = by_label[args.new]["benchmarks"]
    # A benchmark present in the base but missing from the new snapshot is
    # the classic silent regression (binary dropped from BINARIES, bench
    # renamed, run truncated) — fail loudly instead of shrinking the table.
    missing = sorted(set(base) - set(new))
    if missing:
        sys.exit(f"benchmarks in '{args.base}' but missing from "
                 f"'{args.new}': {', '.join(missing)}")
    for name in sorted(set(new) - set(base)):
        print(f"note: {name} is new in '{args.new}' (no baseline)",
              file=sys.stderr)
    print(f"{'benchmark':<40} {args.base:>12} {args.new:>12} {'speedup':>9}")
    for name in sorted(set(base) & set(new)):
        bi = base[name].get("items_per_second")
        ni = new[name].get("items_per_second")
        if bi and ni:
            # Throughput benchmarks (e.g. the fixed-window cluster runs):
            # items/s is the metric, elapsed time is constant by design.
            print(f"{name:<40} {bi:>10.0f}/s {ni:>10.0f}/s {ni / bi:>8.2f}x")
        else:
            b = base[name]["real_time_ns"]
            n = new[name]["real_time_ns"]
            print(f"{name:<40} {b:>10.0f}ns {n:>10.0f}ns {b / n:>8.2f}x")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", help="label for this snapshot (e.g. pr1)")
    parser.add_argument("--build", default="build", help="build directory")
    parser.add_argument("--out", default="BENCH_engine.json")
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument("--compare", nargs=2, metavar=("BASE", "NEW"),
                        help="print a speedup table between two entries")
    args = parser.parse_args()
    if args.compare:
        args.base, args.new = args.compare
        cmd_compare(args)
    elif args.label:
        cmd_record(args)
    else:
        parser.error("either --label or --compare is required")


if __name__ == "__main__":
    main()
