// Ablation A3: the cost of EasyCommit's delayed cleanup. Section 5.3 makes
// every node hold its transactional resources (locks included) until it
// has seen the forwarded decision from every other participant; Section
// 6.5 attributes part of EC's small gap to 2PC at high write ratios to
// exactly this. This bench measures EC with the paper's semantics against
// a variant that releases locks the moment the decision is applied.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ecdb;
  using namespace ecdb::bench;

  PrintBanner("Ablation A3", "EC delayed cleanup vs early lock release, "
                             "16 nodes, theta 0.6");

  std::printf("%-9s%16s%16s%16s%16s\n", "write%", "EC (paper)",
              "EC (early rel)", "abort/commit", "abort/commit");

  for (int pct : {30, 50, 70, 90}) {
    YcsbConfig ycsb = DefaultYcsb(16);
    ycsb.write_fraction = pct / 100.0;

    ClusterConfig paper = DefaultCluster(16, CommitProtocol::kEasyCommit);
    const RunResult r_paper =
        RunCluster(paper, std::make_unique<YcsbWorkload>(ycsb));

    ClusterConfig early = paper;
    early.release_locks_at_decision = true;
    const RunResult r_early =
        RunCluster(early, std::make_unique<YcsbWorkload>(ycsb));

    std::printf("%-9d%14.1fk%14.1fk%16.3f%16.3f\n", pct,
                r_paper.throughput / 1000.0, r_early.throughput / 1000.0,
                r_paper.abort_rate, r_early.abort_rate);
    std::fflush(stdout);
  }

  std::printf("\nExpected: early release recovers a little throughput and\n"
              "lowers the abort rate at high write ratios — the price EC\n"
              "pays for the Section 5.3 cleanup rule.\n");
  return 0;
}
