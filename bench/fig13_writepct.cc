// Reproduces Section 6.5 (Figure 13): YCSB throughput vs. transaction
// write percentage (10%..90%); theta 0.6, 16 nodes, 2 partitions/txn.
//
// Paper shape: at 10% writes all protocols converge (most transactions
// skip or barely exercise the commit protocol); as the write percentage
// grows, 3PC falls away while EC tracks 2PC with a marginal gap (EC holds
// locks slightly longer while waiting for forwarded decisions).

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ecdb;
  using namespace ecdb::bench;

  PrintBanner("Figure 13 / Section 6.5",
              "YCSB throughput vs write percentage, 16 nodes, theta 0.6");

  std::printf("%-9s", "write%%");
  for (CommitProtocol p : kProtocols) {
    std::printf("%12s", ToString(p).c_str());
  }
  std::printf("   (thousand txns/s)\n");

  for (int pct : {10, 30, 50, 70, 90}) {
    std::printf("%-9d", pct);
    for (CommitProtocol protocol : kProtocols) {
      ClusterConfig cluster = DefaultCluster(16, protocol);
      YcsbConfig ycsb = DefaultYcsb(16);
      ycsb.write_fraction = pct / 100.0;
      const RunResult r =
          RunCluster(cluster, std::make_unique<YcsbWorkload>(ycsb));
      std::printf("%12.1f", r.throughput / 1000.0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
