// Reproduces Figure 9: YCSB throughput vs. Zipfian skew (theta) for 2PC,
// 3PC and EasyCommit. 16 server nodes, 2 partitions per transaction.
//
// Paper shape: for theta <= 0.6, EC and 2PC sit close together and clearly
// above 3PC; at high skew (>= 0.7) contention dominates and the three
// protocols converge at a much lower throughput.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ecdb;
  using namespace ecdb::bench;

  PrintBanner("Figure 9", "YCSB throughput vs skew factor (theta), "
                          "16 nodes, 2 partitions/txn");

  const double thetas[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
  std::printf("%-7s", "theta");
  for (CommitProtocol p : kProtocols) {
    std::printf("%12s", ToString(p).c_str());
  }
  std::printf("   (thousand txns/s)\n");

  for (double theta : thetas) {
    std::printf("%-7.1f", theta);
    for (CommitProtocol protocol : kProtocols) {
      ClusterConfig cluster = DefaultCluster(16, protocol);
      YcsbConfig ycsb = DefaultYcsb(16);
      ycsb.theta = theta;
      const RunResult r =
          RunCluster(cluster, std::make_unique<YcsbWorkload>(ycsb));
      std::printf("%12.1f", r.throughput / 1000.0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
