// Reproduces Figure 14 / Section 6.6: TPC-C (Payment + NewOrder)
// throughput vs. server count.
//
// Paper shape: TPC-C is dominated by single-partition transactions (only
// ~15% of Payments and ~10% of NewOrders cross partitions), so the gaps
// between commit protocols are much smaller than under YCSB; throughput
// scales with the node count for all three.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ecdb;
  using namespace ecdb::bench;

  PrintBanner("Figure 14", "TPC-C throughput vs server count");

  std::printf("%-8s", "nodes");
  for (CommitProtocol p : kProtocols) {
    std::printf("%12s", ToString(p).c_str());
  }
  std::printf("   (thousand txns/s)\n");

  for (uint32_t nodes : {2u, 4u, 8u, 16u, 32u}) {
    std::printf("%-8u", nodes);
    for (CommitProtocol protocol : kProtocols) {
      ClusterConfig cluster = DefaultCluster(nodes, protocol);
      const RunResult r = RunCluster(
          cluster, std::make_unique<TpccWorkload>(DefaultTpcc(nodes)));
      std::printf("%12.1f", r.throughput / 1000.0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
