// Ablation A2: message complexity per commit, measured. Section 3.3/3.4:
// 2PC and 3PC exchange O(n) messages per transaction while EC exchanges
// O(n^2) (every cohort forwards the decision to all n-1 peers). This bench
// counts actual messages per protocol as the participant count grows and
// fits the growth.

#include <cstdio>

#include "commit/testbed.h"

int main() {
  using namespace ecdb;
  using ecdb::testbed::ProtocolTestbed;

  std::printf("=========================================================\n");
  std::printf("Ablation A2 — messages per committed transaction vs n\n");
  std::printf("=========================================================\n\n");

  const CommitProtocol protocols[] = {CommitProtocol::kTwoPhase,
                                      CommitProtocol::kThreePhase,
                                      CommitProtocol::kEasyCommit,
                                      CommitProtocol::kEasyCommitNoForward};
  NetworkConfig net;
  net.base_latency_us = 100;
  net.jitter_us = 0;

  std::printf("%-8s", "n");
  for (CommitProtocol p : protocols) std::printf("%14s", ToString(p).c_str());
  std::printf("\n");

  uint64_t last_ec = 0, last_2pc = 0;
  uint64_t prev_ec = 0, prev_2pc = 0;
  for (uint32_t n : {2u, 4u, 8u, 16u, 32u}) {
    std::printf("%-8u", n);
    for (CommitProtocol protocol : protocols) {
      ProtocolTestbed bed(protocol, n, net);
      bed.StartAll();
      bed.Settle(1'000'000);
      const uint64_t msgs = bed.network().stats().messages_sent;
      std::printf("%14llu", static_cast<unsigned long long>(msgs));
      if (protocol == CommitProtocol::kEasyCommit) {
        prev_ec = last_ec;
        last_ec = msgs;
      }
      if (protocol == CommitProtocol::kTwoPhase) {
        prev_2pc = last_2pc;
        last_2pc = msgs;
      }
    }
    std::printf("\n");
  }

  // Doubling n should ~2x the 2PC count and ~4x the EC count at scale.
  const double growth_2pc =
      static_cast<double>(last_2pc) / static_cast<double>(prev_2pc);
  const double growth_ec =
      static_cast<double>(last_ec) / static_cast<double>(prev_ec);
  std::printf("\ngrowth when n doubles (16 -> 32): 2PC x%.2f (O(n) ~ 2), "
              "EC x%.2f (O(n^2) ~ 4)\n", growth_2pc, growth_ec);
  return 0;
}
