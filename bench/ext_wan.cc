// Extension E-WAN: the geo-scale setting that motivates the paper's
// introduction. Commit-protocol phases multiply WAN round trips, so the
// 3PC penalty — one extra phase on every update transaction — explodes as
// the one-way latency grows from LAN (0.4 ms) to cross-region WAN
// (25-100 ms). EC keeps 2PC's two phases, so it tracks 2PC at every
// latency, which is precisely the argument for a non-blocking *two-phase*
// protocol in geo-distributed databases.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ecdb;
  using namespace ecdb::bench;

  PrintBanner("Extension: geo-scale (WAN) latencies",
              "YCSB throughput & p99 vs one-way network latency, 8 nodes");

  std::printf("%-14s", "one-way");
  for (CommitProtocol p : kProtocols) std::printf("%10s", ToString(p).c_str());
  std::printf(" | ");
  for (CommitProtocol p : kProtocols) std::printf("%10s", ToString(p).c_str());
  std::printf("\n%-14s%30s | %30s\n", "latency", "throughput (k txns/s)",
              "p99 latency (ms)");

  const struct {
    Micros latency_us;
    const char* label;
  } latencies[] = {
      {400, "0.4ms LAN"},
      {5'000, "5ms metro"},
      {25'000, "25ms region"},
      {100'000, "100ms geo"},
  };

  for (const auto& wan : latencies) {
    std::printf("%-14s", wan.label);
    double tput[3];
    uint64_t p99[3];
    int i = 0;
    for (CommitProtocol protocol : kProtocols) {
      ClusterConfig cluster = DefaultCluster(8, protocol);
      cluster.network.base_latency_us = wan.latency_us;
      cluster.network.jitter_us = wan.latency_us / 4;
      // Timeouts must stay above the round trips at every latency.
      cluster.commit.timeout_us = wan.latency_us * 20 + 10'000;
      cluster.commit.termination_window_us = wan.latency_us * 8 + 5'000;
      cluster.exec_timeout_us = wan.latency_us * 40 + 50'000;
      cluster.backoff_base_us = 500 + wan.latency_us / 4;
      YcsbConfig ycsb = DefaultYcsb(8);
      ycsb.theta = 0.5;
      // Longer windows so even 100ms-latency transactions complete many
      // times within the measurement.
      const double warmup = 0.5 + wan.latency_us / 1e5;
      const double measure = 1.0 + 4.0 * wan.latency_us / 1e5;
      const RunResult r = RunCluster(
          cluster, std::make_unique<YcsbWorkload>(ycsb), warmup, measure);
      tput[i] = r.throughput / 1000.0;
      p99[i] = r.p99_us;
      i++;
    }
    for (int j = 0; j < 3; ++j) std::printf("%10.1f", tput[j]);
    std::printf(" | ");
    for (int j = 0; j < 3; ++j) {
      std::printf("%10.1f", static_cast<double>(p99[j]) / 1000.0);
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf("\nExpected: the 2PC/EC advantage over 3PC widens toward the\n"
              "phase-count ratio as network latency dominates; EC == 2PC\n"
              "in phases, so geo-scale deployments get non-blocking commit\n"
              "without paying 3PC's WAN round trip.\n");
  return 0;
}
