// Ablation A1: what does EasyCommit's message redundancy (insight ii —
// every cohort forwards the decision to everyone) actually buy?
//
// We run the paper's motivating failure shape — the coordinator's decision
// broadcast truncated after one cohort, that cohort fail-stopping right
// after applying — across every cohort choice and cluster size, under:
//   * EC            (forwarding on)  -> survivors learn the decision,
//   * EC-noforward  (ablation)       -> survivors' termination aborts
//                                       while the dead cohort committed:
//                                       a safety violation,
//   * 2PC           (baseline)       -> survivors block.

#include <cstdio>

#include "commit/testbed.h"

namespace {

using namespace ecdb;
using ecdb::testbed::ProtocolTestbed;

struct Outcome {
  uint64_t schedules = 0;
  uint64_t violations = 0;
  uint64_t blocked = 0;
  uint64_t undecided_active = 0;
};

Outcome RunScenario(CommitProtocol protocol, uint32_t n) {
  Outcome outcome;
  NetworkConfig net;
  net.base_latency_us = 100;
  net.jitter_us = 7;
  for (NodeId x = 1; x < n; ++x) {
    ProtocolTestbed bed(protocol, n, net);
    bed.host(x).set_crash_after_apply(true);
    bed.network().SetSendFilter([&bed, x](const Message& msg) {
      const bool decision = msg.type == MsgType::kGlobalCommit ||
                            msg.type == MsgType::kGlobalAbort;
      if (decision && msg.src == 0 && !msg.forwarded && msg.dst != x) {
        bed.network().CrashNode(0);
        return false;
      }
      return true;
    });
    const TxnId txn = bed.StartAll();
    bed.Settle(200'000);
    outcome.schedules++;
    if (!bed.monitor().Violations().empty()) outcome.violations++;
    if (bed.monitor().blocked_reports() > 0) outcome.blocked++;
    for (NodeId id = 0; id < n; ++id) {
      if (bed.network().IsCrashed(id)) continue;
      if (!bed.host(id).applied(txn).has_value() &&
          bed.host(id).blocked_count() == 0) {
        outcome.undecided_active++;
      }
    }
  }
  return outcome;
}

}  // namespace

int main() {
  std::printf("=========================================================\n");
  std::printf("Ablation A1 — decision forwarding (EC insight ii)\n");
  std::printf("Scenario: coordinator crashes mid-broadcast; the one\n");
  std::printf("cohort that received the decision fail-stops after\n");
  std::printf("applying it. Sweep over cohorts and cluster sizes.\n");
  std::printf("=========================================================\n\n");

  std::printf("%-15s%-8s%-12s%-12s%-10s%-12s\n", "protocol", "nodes",
              "schedules", "violations", "blocked", "undecided");
  const CommitProtocol protocols[] = {CommitProtocol::kEasyCommit,
                                      CommitProtocol::kEasyCommitNoForward,
                                      CommitProtocol::kTwoPhase};
  bool ec_clean = true;
  bool ablation_shows_violation = false;
  for (CommitProtocol protocol : protocols) {
    for (uint32_t n : {3u, 4u, 5u}) {
      const Outcome o = RunScenario(protocol, n);
      std::printf("%-15s%-8u%-12llu%-12llu%-10llu%-12llu\n",
                  ToString(protocol).c_str(), n,
                  static_cast<unsigned long long>(o.schedules),
                  static_cast<unsigned long long>(o.violations),
                  static_cast<unsigned long long>(o.blocked),
                  static_cast<unsigned long long>(o.undecided_active));
      if (protocol == CommitProtocol::kEasyCommit &&
          (o.violations != 0 || o.blocked != 0)) {
        ec_clean = false;
      }
      if (protocol == CommitProtocol::kEasyCommitNoForward &&
          o.violations > 0) {
        ablation_shows_violation = true;
      }
    }
  }

  std::printf("\nConclusion: %s\n",
              ec_clean && ablation_shows_violation
                  ? "forwarding is necessary and sufficient here — EC is "
                    "safe and non-blocking, the no-forwarding variant "
                    "violates safety, 2PC blocks."
                  : "UNEXPECTED — see counters above.");
  return ec_clean && ablation_shows_violation ? 0 : 1;
}
