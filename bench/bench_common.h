#ifndef ECDB_BENCH_BENCH_COMMON_H_
#define ECDB_BENCH_BENCH_COMMON_H_

// Shared driver for the figure-reproduction benchmarks: build a simulated
// cluster, warm it up, measure a window, and print one table row. Every
// bench binary regenerates one exhibit from the paper's Section 6; the
// absolute numbers come from a simulator (see DESIGN.md), the *shapes* are
// the reproduction target.

#include <cstdio>
#include <memory>
#include <string>

#include "cluster/sim_cluster.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace ecdb {
namespace bench {

/// Measurement windows (simulated seconds). The paper uses 60 s + 60 s of
/// wall-clock; the simulator's determinism makes much shorter windows
/// stable.
inline constexpr double kWarmupSeconds = 0.25;
inline constexpr double kMeasureSeconds = 0.5;

/// One measured configuration.
struct RunResult {
  double throughput = 0;    // committed txns per simulated second
  uint64_t p99_us = 0;      // 99th percentile latency
  double abort_rate = 0;    // aborted attempts per commit
  ClusterStats stats;
  NetworkStats net;
};

inline RunResult RunCluster(const ClusterConfig& config,
                            std::unique_ptr<Workload> workload,
                            double warmup = kWarmupSeconds,
                            double measure = kMeasureSeconds) {
  SimCluster cluster(config, std::move(workload));
  cluster.Start();
  cluster.RunFor(warmup);
  cluster.network().ResetStats();
  cluster.BeginMeasurement();
  cluster.RunFor(measure);
  RunResult result;
  result.stats = cluster.CollectStats(measure);
  result.throughput = result.stats.Throughput();
  result.p99_us = result.stats.total.latency.Percentile(0.99);
  result.abort_rate = result.stats.AbortRate();
  result.net = cluster.network().stats();
  return result;
}

/// Default YCSB setup used by the Section 6 experiments: the paper's 16M
/// rows/partition are scaled down (contention depends on skew, not table
/// bytes); everything else matches (10 ops/txn, 2 partitions/txn, 1:1
/// read/write mix unless the experiment sweeps it).
inline YcsbConfig DefaultYcsb(uint32_t num_nodes) {
  YcsbConfig cfg;
  cfg.num_partitions = num_nodes;
  cfg.rows_per_partition = 131072;
  cfg.ops_per_txn = 10;
  cfg.partitions_per_txn = 2;
  cfg.write_fraction = 0.5;
  cfg.theta = 0.6;
  return cfg;
}

inline TpccConfig DefaultTpcc(uint32_t num_nodes) {
  TpccConfig cfg;
  cfg.num_partitions = num_nodes;
  cfg.warehouses_per_partition = 4;
  return cfg;
}

inline ClusterConfig DefaultCluster(uint32_t num_nodes,
                                    CommitProtocol protocol) {
  ClusterConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.clients_per_node = 32;
  cfg.protocol = protocol;
  cfg.seed = 20180326;  // EDBT'18 :-)
  return cfg;
}

inline const CommitProtocol kProtocols[] = {CommitProtocol::kTwoPhase,
                                            CommitProtocol::kThreePhase,
                                            CommitProtocol::kEasyCommit};

inline void PrintBanner(const char* exhibit, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", exhibit, description);
  std::printf("(simulated cluster; compare shapes with the paper, not\n");
  std::printf(" absolute numbers — see DESIGN.md / EXPERIMENTS.md)\n");
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace ecdb

#endif  // ECDB_BENCH_BENCH_COMMON_H_
