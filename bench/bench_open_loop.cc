// Open-loop load benchmarks (google-benchmark): transactions arrive at a
// configured per-node rate, independent of completions — the load model of
// the ROADMAP north-star, where the paper's closed loop structurally cannot
// show queueing collapse. Each benchmark advances a SimCluster in fixed
// slices of simulated time and reports, as counters:
//
//   offered_per_sec    arrival rate actually generated (whole cluster)
//   committed_per_sec  goodput — plateaus below offered under overload
//   rejected_per_sec   admission-control sheds (whole cluster)
//   p50_us/p99_us/p999_us  end-to-end committed-transaction latency
//
// Two families:
//   BM_OpenLoop{2PC,3PC,EasyCommit}  — protocol comparison at a fixed,
//                                      moderately loaded arrival rate.
//   BM_OpenLoopRateSweep             — EC under a rising offered rate; the
//                                      offered-vs-p99 curve for
//                                      docs/PERFORMANCE.md.
//
// `scripts/bench_to_json.py` runs this binary and appends a labeled entry
// to BENCH_engine.json alongside bench_engine / bench_threaded.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "cluster/sim_cluster.h"
#include "workload/ycsb.h"

namespace {

using namespace ecdb;

// Simulated seconds per benchmark iteration. Short enough that the harness
// can calibrate, long enough that a slice holds thousands of arrivals.
constexpr double kSliceSeconds = 0.05;

ClusterConfig OpenLoopCluster(uint32_t n, CommitProtocol protocol,
                              double rate_per_node) {
  ClusterConfig cfg = bench::DefaultCluster(n, protocol);
  cfg.open_loop.enabled = true;
  cfg.open_loop.arrivals_per_sec_per_node = rate_per_node;
  return cfg;
}

void ReportOpenLoop(benchmark::State& state, SimCluster& cluster,
                    double measured_seconds) {
  const ClusterStats stats = cluster.CollectStats(measured_seconds);
  state.SetItemsProcessed(
      static_cast<int64_t>(stats.total.txns_committed));
  state.counters["offered_per_sec"] =
      benchmark::Counter(stats.OfferedRate());
  state.counters["committed_per_sec"] =
      benchmark::Counter(stats.Throughput());
  state.counters["rejected_per_sec"] = benchmark::Counter(
      measured_seconds > 0
          ? static_cast<double>(stats.total.open_loop_rejected) /
                measured_seconds
          : 0.0);
  state.counters["p50_us"] = benchmark::Counter(
      static_cast<double>(stats.total.latency.Percentile(0.50)));
  state.counters["p99_us"] = benchmark::Counter(
      static_cast<double>(stats.total.latency.Percentile(0.99)));
  state.counters["p999_us"] = benchmark::Counter(
      static_cast<double>(stats.total.latency.Percentile(0.999)));
}

void BM_OpenLoopLoad(benchmark::State& state, CommitProtocol protocol,
                     double rate_per_node) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  SimCluster cluster(
      OpenLoopCluster(n, protocol, rate_per_node),
      std::make_unique<YcsbWorkload>(bench::DefaultYcsb(n)));
  cluster.Start();
  cluster.RunFor(bench::kWarmupSeconds);
  cluster.BeginMeasurement();
  double measured = 0;
  for (auto _ : state) {
    cluster.RunFor(kSliceSeconds);
    measured += kSliceSeconds;
  }
  ReportOpenLoop(state, cluster, measured);
}

// Protocol comparison at a rate that keeps an 8-node cluster busy without
// saturating it, so the p99 difference is protocol cost, not queueing.
constexpr double kComparisonRate = 1500.0;

void BM_OpenLoop2PC(benchmark::State& state) {
  BM_OpenLoopLoad(state, CommitProtocol::kTwoPhase, kComparisonRate);
}
void BM_OpenLoop3PC(benchmark::State& state) {
  BM_OpenLoopLoad(state, CommitProtocol::kThreePhase, kComparisonRate);
}
void BM_OpenLoopEasyCommit(benchmark::State& state) {
  BM_OpenLoopLoad(state, CommitProtocol::kEasyCommit, kComparisonRate);
}
BENCHMARK(BM_OpenLoop2PC)->Arg(8)->Arg(32);
BENCHMARK(BM_OpenLoop3PC)->Arg(8)->Arg(32);
BENCHMARK(BM_OpenLoopEasyCommit)->Arg(8)->Arg(32);

// Offered-rate sweep (EC, 8 nodes): as the arrival rate crosses the
// cluster's capacity, committed_per_sec plateaus, rejected_per_sec takes
// off, and p99 jumps — the open-loop signature the closed loop hides.
void BM_OpenLoopRateSweep(benchmark::State& state) {
  const uint32_t n = 8;
  const double rate = static_cast<double>(state.range(0));
  SimCluster cluster(
      OpenLoopCluster(n, CommitProtocol::kEasyCommit, rate),
      std::make_unique<YcsbWorkload>(bench::DefaultYcsb(n)));
  cluster.Start();
  cluster.RunFor(bench::kWarmupSeconds);
  cluster.BeginMeasurement();
  double measured = 0;
  for (auto _ : state) {
    cluster.RunFor(kSliceSeconds);
    measured += kSliceSeconds;
  }
  ReportOpenLoop(state, cluster, measured);
}
BENCHMARK(BM_OpenLoopRateSweep)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Arg(8000);

}  // namespace

BENCHMARK_MAIN();
