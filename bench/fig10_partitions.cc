// Reproduces Figure 10: YCSB throughput vs. partitions per transaction
// (2, 4, 6) for 2PC, 3PC and EasyCommit. 16 nodes, theta = 0.6, 16
// operations per transaction, 1:1 read/write ratio.
//
// Paper shape: throughput drops steeply from 2 to 4 partitions (~55%) and
// further (~25%) from 4 to 6, for all protocols; message count grows
// linearly for 2PC/3PC and quadratically for EC, so EC's gap to 2PC widens
// with the partition count.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ecdb;
  using namespace ecdb::bench;

  PrintBanner("Figure 10", "YCSB throughput vs partitions per transaction, "
                           "16 nodes, theta 0.6, 16 ops/txn");

  std::printf("%-12s", "parts/txn");
  for (CommitProtocol p : kProtocols) {
    std::printf("%12s", ToString(p).c_str());
  }
  std::printf("   (thousand txns/s)\n");

  for (uint32_t parts : {2u, 4u, 6u}) {
    std::printf("%-12u", parts);
    for (CommitProtocol protocol : kProtocols) {
      ClusterConfig cluster = DefaultCluster(16, protocol);
      YcsbConfig ycsb = DefaultYcsb(16);
      ycsb.ops_per_txn = 16;
      ycsb.partitions_per_txn = parts;
      const RunResult r =
          RunCluster(cluster, std::make_unique<YcsbWorkload>(ycsb));
      std::printf("%12.1f", r.throughput / 1000.0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
