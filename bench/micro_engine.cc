// Micro-benchmarks (google-benchmark): raw cost of the protocol state
// machines themselves — complete commit rounds per second per protocol
// and the cost of individual subsystem operations that sit on the
// transaction critical path.

#include <benchmark/benchmark.h>

#include "cc/lock_table.h"
#include "commit/testbed.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "sim/scheduler.h"
#include "storage/table.h"
#include "wal/wal.h"

namespace {

using namespace ecdb;
using ecdb::testbed::ProtocolTestbed;

void BM_CommitRound(benchmark::State& state, CommitProtocol protocol) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  NetworkConfig net;
  net.base_latency_us = 1;
  net.jitter_us = 0;
  CommitEngineConfig commit;
  ProtocolTestbed bed(protocol, n, net, commit);
  for (auto _ : state) {
    const TxnId txn = bed.StartAll();
    bed.Settle();
    benchmark::DoNotOptimize(bed.host(0).applied(txn));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_TwoPhaseRound(benchmark::State& state) {
  BM_CommitRound(state, CommitProtocol::kTwoPhase);
}
void BM_ThreePhaseRound(benchmark::State& state) {
  BM_CommitRound(state, CommitProtocol::kThreePhase);
}
void BM_EasyCommitRound(benchmark::State& state) {
  BM_CommitRound(state, CommitProtocol::kEasyCommit);
}
BENCHMARK(BM_TwoPhaseRound)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_ThreePhaseRound)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_EasyCommitRound)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_SchedulerScheduleRun(benchmark::State& state) {
  Scheduler sched;
  for (auto _ : state) {
    sched.ScheduleAfter(1, [] {});
    sched.RunOne();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerScheduleRun);

void BM_LockAcquireRelease(benchmark::State& state) {
  LockTable locks(CcPolicy::kNoWait);
  TxnId txn = 1;
  for (auto _ : state) {
    for (Key key = 0; key < 10; ++key) {
      benchmark::DoNotOptimize(
          locks.Acquire(txn, txn, 0, key, LockMode::kExclusive));
    }
    locks.ReleaseAll(txn);
    txn++;
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_LockAcquireRelease);

void BM_TableLookup(benchmark::State& state) {
  Table table(0, "t", 10);
  for (Key key = 0; key < 100000; ++key) {
    (void)table.Insert(key);
  }
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Get(rng.NextBounded(100000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableLookup);

void BM_WalAppend(benchmark::State& state) {
  MemoryWal wal;
  TxnId txn = 1;
  for (auto _ : state) {
    wal.Append({0, txn++, LogRecordType::kCommitReceived, {}});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalAppend);

void BM_ZipfianNext(benchmark::State& state) {
  ZipfianGenerator zipf(1'000'000, 0.6);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianNext);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram hist;
  Rng rng(1);
  for (auto _ : state) {
    hist.Record(rng.NextBounded(1'000'000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

}  // namespace

BENCHMARK_MAIN();
