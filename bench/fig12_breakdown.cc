// Reproduces Figure 12: where worker time goes (Useful Work, Txn Manager,
// Index, Abort, Idle, Commit, Overhead) as contention varies, for each
// commit protocol. 16 nodes, 2 partitions per transaction.
//
// Paper shape: the Abort share grows with theta; at medium/high contention
// 3PC workers are idle the most and do the least useful work (the extra
// phase keeps resources busy waiting); the Commit share grows with
// contention for every protocol.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ecdb;
  using namespace ecdb::bench;

  PrintBanner("Figure 12", "time breakdown per component vs contention, "
                           "16 nodes");

  const double thetas[] = {0.1, 0.5, 0.6, 0.7, 0.8};

  for (CommitProtocol protocol : kProtocols) {
    std::printf("\n--- %s ---\n", ToString(protocol).c_str());
    std::printf("%-7s", "theta");
    for (size_t c = 0; c < kNumTimeCategories; ++c) {
      std::printf("%13s", ToString(static_cast<TimeCategory>(c)).c_str());
    }
    // Commit-phase latency means (us) from the tracing/metrics layer:
    // vote collection, decision transmit, decision apply.
    std::printf("%10s%10s%10s\n", "vote_us", "xmit_us", "apply_us");
    for (double theta : thetas) {
      ClusterConfig cluster = DefaultCluster(16, protocol);
      YcsbConfig ycsb = DefaultYcsb(16);
      ycsb.theta = theta;
      const RunResult r =
          RunCluster(cluster, std::make_unique<YcsbWorkload>(ycsb));
      std::printf("%-7.1f", theta);
      for (size_t c = 0; c < kNumTimeCategories; ++c) {
        std::printf("%12.1f%%",
                    100.0 * r.stats.TimeFraction(static_cast<TimeCategory>(c)));
      }
      std::printf("%10.1f%10.1f%10.1f\n", r.stats.total.phase_vote.Mean(),
                  r.stats.total.phase_transmit.Mean(),
                  r.stats.total.phase_apply.Mean());
      std::fflush(stdout);
    }
  }
  return 0;
}
