// Engine micro-benchmarks (google-benchmark): the discrete-event hot paths
// every experiment in this repo is built on. Three layers are measured:
//
//   1. Scheduler   — schedule/run/cancel throughput, with and without a
//                    standing backlog (the steady-state shape of a loaded
//                    simulation, where thousands of timers are pending).
//   2. SimNetwork  — broadcast fan-out: one logical decision delivered to
//                    n recipients, the dominant cost of EasyCommit's O(n^2)
//                    decision re-broadcast (paper Section 5.3).
//   3. End to end  — complete commit rounds per wall-clock second for
//                    2PC / 3PC / EC on a ProtocolTestbed.
//
// `scripts/bench_to_json.py` runs this binary and appends a labeled entry
// to BENCH_engine.json, the repo's perf-trajectory file. The acceptance
// gate for engine changes is "no silent regressions" — see
// docs/PERFORMANCE.md.

#include <benchmark/benchmark.h>

#include <vector>

#include "commit/testbed.h"
#include "net/network.h"
#include "sim/scheduler.h"

namespace {

using namespace ecdb;
using ecdb::testbed::ProtocolTestbed;

// --------------------------------------------------------------------------
// 1. Scheduler
// --------------------------------------------------------------------------

// Schedule one event, run it. The queue stays near-empty: this isolates the
// fixed per-event overhead (allocation, bookkeeping) from heap depth.
void BM_SchedulerScheduleRun(benchmark::State& state) {
  Scheduler sched;
  for (auto _ : state) {
    sched.ScheduleAfter(1, [] {});
    sched.RunOne();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerScheduleRun);

// Steady-state churn: a standing backlog of pending timers (range(0)) while
// events are scheduled and retired one-for-one. This is the shape of a
// loaded simulation — every in-flight message and armed timeout is a
// pending event.
void BM_SchedulerChurn(benchmark::State& state) {
  const size_t backlog = static_cast<size_t>(state.range(0));
  Scheduler sched;
  for (size_t i = 0; i < backlog; ++i) {
    sched.ScheduleAfter(1 + (i % 97), [] {});
  }
  for (auto _ : state) {
    sched.ScheduleAfter(101, [] {});
    sched.RunOne();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerChurn)->Arg(64)->Arg(1024)->Arg(16384);

// Schedule two events, cancel one, run the other. Covers the cancel path
// plus the cancelled-entry skip during pop (armed-then-cancelled timers are
// the common case: every message that arrives in time cancels a timeout).
void BM_SchedulerScheduleCancelRun(benchmark::State& state) {
  Scheduler sched;
  for (auto _ : state) {
    const auto doomed = sched.ScheduleAfter(1, [] {});
    sched.ScheduleAfter(2, [] {});
    sched.Cancel(doomed);
    sched.RunOne();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerScheduleCancelRun);

// --------------------------------------------------------------------------
// 2. SimNetwork broadcast fan-out
// --------------------------------------------------------------------------

// One kGlobalCommit carrying an n-entry participant list, fanned out to
// n-1 recipients and delivered. This is exactly what a coordinator (and,
// under EC, every cohort) does per decision.
void BM_NetworkBroadcast(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Scheduler sched;
  NetworkConfig cfg;
  cfg.base_latency_us = 1;
  cfg.jitter_us = 0;
  SimNetwork net(&sched, cfg, /*seed=*/1);
  for (NodeId id = 0; id < n; ++id) {
    net.RegisterNode(id, [](const Message&) {});
  }
  std::vector<NodeId> participants;
  for (NodeId id = 0; id < n; ++id) participants.push_back(id);

  for (auto _ : state) {
    Message base;
    base.type = MsgType::kGlobalCommit;
    base.src = 0;
    base.txn = MakeTxnId(0, 1);
    base.participants = participants;
    for (NodeId dst = 1; dst < n; ++dst) {
      Message m = base;  // per-recipient copy: the fan-out cost under test
      m.dst = dst;
      net.Send(std::move(m));
    }
    sched.RunAll();
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_NetworkBroadcast)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// --------------------------------------------------------------------------
// 3. End-to-end commit rounds
// --------------------------------------------------------------------------

// The round benchmarks measure the coalesced transport (the configuration
// the cluster experiments run with): all messages a node emits in one
// scheduler step share a frame, and equal-latency frames share a single
// delivery event. BM_EasyCommitRoundUncoalesced keeps the per-message
// delivery path measured as an ablation baseline.
void BM_CommitRound(benchmark::State& state, CommitProtocol protocol,
                    bool coalesce = true,
                    SchedulerBackend backend = SchedulerBackend::kHeap) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  NetworkConfig net;
  net.base_latency_us = 1;
  net.jitter_us = 0;
  CommitEngineConfig commit;
  ProtocolTestbed bed(protocol, n, net, commit, /*seed=*/7, backend);
  if (coalesce) bed.network().EnableCoalescing(true);
  for (auto _ : state) {
    const TxnId txn = bed.StartAll();
    bed.Settle();
    benchmark::DoNotOptimize(bed.host(0).applied(txn));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_TwoPhaseRound(benchmark::State& state) {
  BM_CommitRound(state, CommitProtocol::kTwoPhase);
}
void BM_ThreePhaseRound(benchmark::State& state) {
  BM_CommitRound(state, CommitProtocol::kThreePhase);
}
void BM_EasyCommitRound(benchmark::State& state) {
  BM_CommitRound(state, CommitProtocol::kEasyCommit);
}
void BM_EasyCommitRoundUncoalesced(benchmark::State& state) {
  BM_CommitRound(state, CommitProtocol::kEasyCommit, /*coalesce=*/false);
}
// Timer-wheel ablation: identical rounds over the wheel backend. The wheel
// trades the heap's O(log n) pop for O(1) bucket ops — at large n the
// event queue holds tens of thousands of pending deliveries and the
// backend choice shows up directly in rounds/s.
void BM_EasyCommitRoundWheel(benchmark::State& state) {
  BM_CommitRound(state, CommitProtocol::kEasyCommit, /*coalesce=*/true,
                 SchedulerBackend::kTimerWheel);
}
BENCHMARK(BM_TwoPhaseRound)->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_ThreePhaseRound)->Arg(4)->Arg(8)->Arg(16)->Arg(32);
// The scale axis: 256/1024/4096 stress the O(active)-link network state
// and the pooled engine records; a full EC round at n=4096 is ~16.8M
// cohort-to-cohort decision messages (paper Section 5.3's O(n^2)).
BENCHMARK(BM_EasyCommitRound)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_EasyCommitRoundUncoalesced)->Arg(32);
BENCHMARK(BM_EasyCommitRoundWheel)
    ->Arg(32)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

// Many concurrent commit rounds with coordinators spread round-robin over
// the cluster — the shape where coalescing actually packs frames: each
// scheduler step can emit messages for several transactions toward the
// same destination, and the transmit-phase cross-broadcasts of different
// transactions overlap. Measures txns/s, not rounds/s.
void BM_EasyCommitConcurrent(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  constexpr uint32_t kInflight = 64;
  NetworkConfig net;
  net.base_latency_us = 1;
  net.jitter_us = 0;
  CommitEngineConfig commit;
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, n, net, commit);
  bed.network().EnableCoalescing(true);
  uint64_t seq = 0;
  for (auto _ : state) {
    for (uint32_t k = 0; k < kInflight; ++k) {
      const NodeId coord = k % n;
      const TxnId txn = MakeTxnId(coord, ++seq);
      // StartCommit requires the coordinator at participants[0].
      std::vector<NodeId> participants;
      participants.push_back(coord);
      for (NodeId id = 0; id < n; ++id) {
        if (id != coord) participants.push_back(id);
      }
      for (NodeId id = 0; id < n; ++id) {
        if (id == coord) continue;
        bed.host(id).engine().ExpectPrepare(txn, coord, participants);
      }
      bed.host(coord).engine().StartCommit(txn, participants,
                                           Decision::kCommit);
    }
    bed.Settle();
    benchmark::DoNotOptimize(bed.host(0).blocked_count());
  }
  state.SetItemsProcessed(state.iterations() * kInflight);
}
BENCHMARK(BM_EasyCommitConcurrent)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
