// Reproduces Section 6.7 (the TPC-C latency companion of Figure 14; the
// source text of the paper truncates mid-section, so this bench reports
// the natural latency counterpart): TPC-C 99-percentile latency vs.
// server count.
//
// Expected shape: latencies are far lower than YCSB's (mostly local
// transactions), 3PC pays the extra round on the multi-partition tail,
// and EC tracks 2PC closely.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ecdb;
  using namespace ecdb::bench;

  PrintBanner("Section 6.7", "TPC-C p99 latency vs server count");

  std::printf("%-8s", "nodes");
  for (CommitProtocol p : kProtocols) {
    std::printf("%12s", ToString(p).c_str());
  }
  std::printf("   (p99 latency, ms)\n");

  for (uint32_t nodes : {2u, 4u, 8u, 16u, 32u}) {
    std::printf("%-8u", nodes);
    for (CommitProtocol protocol : kProtocols) {
      ClusterConfig cluster = DefaultCluster(nodes, protocol);
      const RunResult r = RunCluster(
          cluster, std::make_unique<TpccWorkload>(DefaultTpcc(nodes)));
      std::printf("%12.2f", static_cast<double>(r.p99_us) / 1000.0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
