// Reproduces Figure 11 (a, b, c): YCSB throughput and 99-percentile
// latency vs. server count (2..32) at low (theta 0.1), medium (0.6) and
// high (0.7) contention; 2 partitions per transaction.
//
// Paper shape: throughput grows with node count for every protocol, with
// EC ~= 2PC (EC marginally lower at low/medium contention) and both above
// 3PC; latency grows with node count and is highest for 3PC (extra round).

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ecdb;
  using namespace ecdb::bench;

  PrintBanner("Figure 11", "YCSB throughput and p99 latency vs server "
                           "count, theta in {0.1, 0.6, 0.7}");

  const struct {
    double theta;
    const char* label;
  } contentions[] = {
      {0.1, "(a) low contention, theta=0.1"},
      {0.6, "(b) medium contention, theta=0.6"},
      {0.7, "(c) high contention, theta=0.7"},
  };

  for (const auto& contention : contentions) {
    std::printf("\n%s\n", contention.label);
    std::printf("%-8s", "nodes");
    for (CommitProtocol p : kProtocols) {
      std::printf("%10s", ToString(p).c_str());
    }
    std::printf(" | ");
    for (CommitProtocol p : kProtocols) {
      std::printf("%10s", ToString(p).c_str());
    }
    std::printf("\n%-8s%30s | %30s\n", "", "throughput (k txns/s)",
                "p99 latency (ms)");

    for (uint32_t nodes : {2u, 4u, 8u, 16u, 32u}) {
      std::printf("%-8u", nodes);
      double tput[3];
      uint64_t p99[3];
      int i = 0;
      for (CommitProtocol protocol : kProtocols) {
        ClusterConfig cluster = DefaultCluster(nodes, protocol);
        YcsbConfig ycsb = DefaultYcsb(nodes);
        ycsb.theta = contention.theta;
        const RunResult r =
            RunCluster(cluster, std::make_unique<YcsbWorkload>(ycsb));
        tput[i] = r.throughput / 1000.0;
        p99[i] = r.p99_us;
        i++;
      }
      for (int j = 0; j < 3; ++j) std::printf("%10.1f", tput[j]);
      std::printf(" | ");
      for (int j = 0; j < 3; ++j) {
        std::printf("%10.1f", static_cast<double>(p99[j]) / 1000.0);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  return 0;
}
