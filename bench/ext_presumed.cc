// Extension E-PAPC: the classic presumed-abort / presumed-commit 2PC
// optimizations as additional baselines. They trim acknowledgments and
// log writes (PA on the abort side, PC on the commit side) but — unlike
// EasyCommit — remain blocking. This bench counts messages and log writes
// per transaction on commit and abort paths, then measures end-to-end
// throughput against 2PC and EC.

#include <cstdio>

#include "bench_common.h"
#include "commit/testbed.h"

namespace {

using namespace ecdb;
using ecdb::testbed::ProtocolTestbed;

struct PathCost {
  uint64_t messages = 0;
  uint64_t log_writes = 0;
};

PathCost MeasurePath(CommitProtocol protocol, uint32_t n, bool commit) {
  NetworkConfig net;
  net.base_latency_us = 100;
  net.jitter_us = 0;
  ProtocolTestbed bed(protocol, n, net);
  if (!commit) bed.host(n - 1).set_vote(Decision::kAbort);
  const TxnId txn = bed.StartAll();
  bed.Settle();
  PathCost cost;
  cost.messages = bed.network().stats().messages_sent;
  for (NodeId id = 0; id < n; ++id) {
    cost.log_writes += bed.host(id).LogTypes(txn).size();
  }
  return cost;
}

}  // namespace

int main() {
  using namespace ecdb::bench;

  std::printf("=========================================================\n");
  std::printf("Extension: presumed-abort / presumed-commit baselines\n");
  std::printf("=========================================================\n\n");

  const CommitProtocol protocols[] = {
      CommitProtocol::kTwoPhase, CommitProtocol::kTwoPhasePresumedAbort,
      CommitProtocol::kTwoPhasePresumedCommit, CommitProtocol::kEasyCommit};

  std::printf("Per-transaction cost at n=4 participants:\n");
  std::printf("%-10s%14s%14s%14s%14s\n", "protocol", "msgs(commit)",
              "logs(commit)", "msgs(abort)", "logs(abort)");
  for (CommitProtocol protocol : protocols) {
    const PathCost commit = MeasurePath(protocol, 4, true);
    const PathCost abort = MeasurePath(protocol, 4, false);
    std::printf("%-10s%14llu%14llu%14llu%14llu\n",
                ToString(protocol).c_str(),
                static_cast<unsigned long long>(commit.messages),
                static_cast<unsigned long long>(commit.log_writes),
                static_cast<unsigned long long>(abort.messages),
                static_cast<unsigned long long>(abort.log_writes));
  }

  std::printf("\nEnd-to-end YCSB throughput (16 nodes, theta 0.6):\n");
  std::printf("%-10s%16s%14s\n", "protocol", "tput (k txns/s)", "blocked");
  for (CommitProtocol protocol : protocols) {
    ClusterConfig cluster = DefaultCluster(16, protocol);
    const RunResult r =
        RunCluster(cluster, std::make_unique<YcsbWorkload>(DefaultYcsb(16)));
    std::printf("%-10s%16.1f%14llu\n", ToString(protocol).c_str(),
                r.throughput / 1000.0,
                static_cast<unsigned long long>(r.stats.total.txns_blocked));
    std::fflush(stdout);
  }

  std::printf("\nTakeaway: PC matches EC's message count on the commit path\n"
              "but stays blocking; EC is the only two-phase protocol here\n"
              "that is non-blocking.\n");
  return 0;
}
