// Wall-clock throughput benchmarks for the threaded runtime: real OS
// threads, real futexes, real time. Two layers are measured:
//
//   1. MessageChannel — mailbox burst drain, the per-message cost of the
//                       node event loop's input path.
//   2. End to end     — committed transactions per wall-clock second for
//                       2PC / 3PC / EC on 4- and 8-node YCSB clusters
//                       (one node thread per partition, as in the paper's
//                       partition-per-server deployment).
//
// The cluster benchmarks use manual timing: each iteration boots a
// cluster, lets it warm up, then measures the committed-transaction delta
// over a fixed window, so `items_per_second` is cluster throughput rather
// than 1/boot-time. `scripts/bench_to_json.py` runs this binary alongside
// bench_engine and appends both to BENCH_engine.json.
//
// The mailbox drain below compiles against both the batched mailbox
// (PopAll) and its one-at-a-time predecessor, so the same file can be
// dropped into the pre-change tree for an apples-to-apples baseline.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/thread_node.h"
#include "net/channel.h"
#include "workload/ycsb.h"

namespace {

using namespace ecdb;
using Clock = std::chrono::steady_clock;

// --------------------------------------------------------------------------
// 1. Mailbox
// --------------------------------------------------------------------------

// Drains everything currently queued in `ch`. Templated so the branch the
// current tree lacks is discarded, not type-checked.
template <typename Channel>
size_t Drain(Channel& ch, std::vector<Message>& buf) {
  if constexpr (requires { ch.PopAll(&buf, std::chrono::microseconds(0)); }) {
    ch.PopAll(&buf, std::chrono::microseconds(0));
    return buf.size();
  } else {
    size_t n = 0;
    Message msg;
    while (ch.TryPop(&msg)) ++n;
    return n;
  }
}

// Push a burst of `range(0)` messages, then drain the mailbox — the shape
// of one event-loop turn under load. The batched mailbox pays one lock and
// one swap for the whole drain; the one-at-a-time path pays a lock (and a
// front-erase) per message.
void BM_MailboxBurst(benchmark::State& state) {
  const size_t burst = static_cast<size_t>(state.range(0));
  MessageChannel ch;
  std::vector<Message> buf;
  Message msg;
  msg.type = MsgType::kRemoteExecOk;
  msg.src = 1;
  msg.dst = 0;
  size_t drained = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < burst; ++i) {
      msg.txn = static_cast<TxnId>(i);
      ch.Push(msg);
    }
    drained += Drain(ch, buf);
  }
  state.SetItemsProcessed(static_cast<int64_t>(drained));
}
BENCHMARK(BM_MailboxBurst)->Arg(16)->Arg(256);

// --------------------------------------------------------------------------
// 2. End-to-end cluster throughput
// --------------------------------------------------------------------------

void ThreadedYcsb(benchmark::State& state, CommitProtocol protocol) {
  const uint32_t nodes = static_cast<uint32_t>(state.range(0));

  ThreadClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.clients_per_node = 16;
  cfg.protocol = protocol;
  cfg.seed = 7;
  // Failure-free run: protocol timeouts exist to detect crashes, so set
  // them far above worst-case scheduling delay (node threads outnumber
  // cores). A spuriously expired timeout would measure the termination
  // path, not throughput.
  cfg.commit.timeout_us = 1'000'000;
  cfg.commit.termination_window_us = 200'000;
  // Measure the coalesced transport: one SendBatch per destination per
  // event-loop iteration, WAL group-flushed at the same boundary.
  cfg.coalesce_transport = true;

  YcsbConfig ycsb;
  ycsb.num_partitions = nodes;
  ycsb.rows_per_partition = 16384;  // modest: keeps bootstrap fast
  ycsb.partitions_per_txn = 2;
  ycsb.theta = 0.6;

  uint64_t committed = 0;
  uint64_t termination_rounds = 0;
  uint64_t dropped_at_crashed = 0;
  uint64_t frames_sent = 0;
  uint64_t messages_coalesced = 0;
  uint64_t duplicate_decisions = 0;
  uint64_t wal_group_flushes = 0;
  for (auto _ : state) {
    ThreadCluster cluster(cfg, std::make_unique<YcsbWorkload>(ycsb));
    cluster.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(300));  // warm-up
    const uint64_t before = cluster.TotalCommitted();
    const auto t0 = Clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(1000));
    const uint64_t after = cluster.TotalCommitted();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();
    cluster.Stop();
    const ClusterStats stats = cluster.CollectStats(elapsed);
    termination_rounds += stats.total.termination_rounds;
    dropped_at_crashed += stats.net_messages_to_crashed;
    frames_sent += stats.net_frames_sent;
    messages_coalesced += stats.net_messages_coalesced;
    duplicate_decisions += stats.duplicate_decisions_suppressed;
    wal_group_flushes += stats.wal_group_flushes;
    committed += after - before;
    state.SetIterationTime(elapsed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(committed));
  // Failure-free runs should keep both pinned at zero; nonzero values
  // mean the measurement window caught the termination path.
  state.counters["termination_rounds"] =
      static_cast<double>(termination_rounds);
  state.counters["dropped_at_crashed"] =
      static_cast<double>(dropped_at_crashed);
  // Coalescing yield for the run: frames on the wire, messages that rode
  // behind another in the same frame, redundant Global-* receipts
  // short-circuited, and WAL flushes covering grouped appends.
  state.counters["frames_sent"] = static_cast<double>(frames_sent);
  state.counters["messages_coalesced"] =
      static_cast<double>(messages_coalesced);
  state.counters["duplicate_decisions_suppressed"] =
      static_cast<double>(duplicate_decisions);
  state.counters["wal_group_flushes"] =
      static_cast<double>(wal_group_flushes);
}

void BM_ThreadedYcsb2PC(benchmark::State& state) {
  ThreadedYcsb(state, CommitProtocol::kTwoPhase);
}
void BM_ThreadedYcsb3PC(benchmark::State& state) {
  ThreadedYcsb(state, CommitProtocol::kThreePhase);
}
void BM_ThreadedYcsbEC(benchmark::State& state) {
  ThreadedYcsb(state, CommitProtocol::kEasyCommit);
}
BENCHMARK(BM_ThreadedYcsb2PC)
    ->Arg(4)->Arg(8)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ThreadedYcsb3PC)
    ->Arg(4)->Arg(8)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ThreadedYcsbEC)
    ->Arg(4)->Arg(8)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
