// Reproduces Figure 7: the coexistence matrix of EasyCommit state classes
// (UNDECIDED, TRANSMIT-A, TRANSMIT-C, ABORT, COMMIT). The static matrix is
// printed from the library's encoding, then *validated empirically*: an
// exhaustive single/dual crash sweep over EC runs records every pair of
// states observed across nodes at decision points and confirms that no
// pair marked N in the matrix ever materializes.

#include <cstdio>
#include <set>
#include <utility>

#include "commit/invariants.h"
#include "commit/testbed.h"

namespace {

using namespace ecdb;
using ecdb::testbed::ProtocolTestbed;

const char* Name(StateClass s) {
  switch (s) {
    case StateClass::kUndecided:
      return "UNDECIDED";
    case StateClass::kTransmitA:
      return "T-A";
    case StateClass::kTransmitC:
      return "T-C";
    case StateClass::kAbort:
      return "ABORT";
    case StateClass::kCommit:
      return "COMMIT";
  }
  return "?";
}

// Runs EC with a crash injected at delivery `at` of node `node`, then
// collects the (applied-state x applied-state) pairs across nodes.
void CollectPairs(uint32_t n, NodeId crash_node, uint64_t at,
                  std::set<std::pair<int, int>>* observed,
                  uint64_t* violations) {
  NetworkConfig net;
  net.base_latency_us = 100;
  net.jitter_us = 7;
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, n, net);
  uint64_t counter = 0;
  bed.network().SetDeliveryInterceptor([&](const Message& msg) {
    counter++;
    if (counter == at) {
      bed.network().CrashNode(crash_node);
      if (msg.dst == crash_node) return false;
    }
    return true;
  });
  const TxnId txn = bed.StartAll();
  bed.Settle(200'000);
  if (!bed.monitor().Violations().empty()) (*violations)++;

  std::vector<StateClass> states;
  for (NodeId id = 0; id < n; ++id) {
    if (bed.network().IsCrashed(id)) continue;
    const auto applied = bed.host(id).applied(txn);
    if (!applied.has_value()) {
      states.push_back(StateClass::kUndecided);
    } else {
      states.push_back(*applied == Decision::kCommit ? StateClass::kCommit
                                                     : StateClass::kAbort);
    }
  }
  for (size_t i = 0; i < states.size(); ++i) {
    for (size_t j = i + 1; j < states.size(); ++j) {
      observed->insert({static_cast<int>(states[i]),
                        static_cast<int>(states[j])});
      observed->insert({static_cast<int>(states[j]),
                        static_cast<int>(states[i])});
    }
  }
}

}  // namespace

int main() {
  std::printf("=========================================================\n");
  std::printf("Figure 7 — coexistent states in the EC protocol\n");
  std::printf("=========================================================\n\n");

  const StateClass classes[] = {StateClass::kUndecided, StateClass::kTransmitA,
                                StateClass::kTransmitC, StateClass::kAbort,
                                StateClass::kCommit};
  std::printf("%-11s", "");
  for (StateClass c : classes) std::printf("%-11s", Name(c));
  std::printf("\n");
  for (StateClass row : classes) {
    std::printf("%-11s", Name(row));
    for (StateClass col : classes) {
      std::printf("%-11s", CanCoexist(row, col) ? "Y" : "N");
    }
    std::printf("\n");
  }

  // Empirical validation over exhaustive single-crash schedules.
  std::printf("\nValidating terminal-state pairs over crash sweeps "
              "(EC, n in {3,4})...\n");
  std::set<std::pair<int, int>> observed;
  uint64_t violations = 0;
  uint64_t schedules = 0;
  for (uint32_t n : {3u, 4u}) {
    for (NodeId node = 0; node < n; ++node) {
      for (uint64_t at = 1; at <= 40; ++at) {
        CollectPairs(n, node, at, &observed, &violations);
        schedules++;
      }
    }
  }
  uint64_t forbidden_seen = 0;
  for (const auto& [a, b] : observed) {
    if (!ecdb::CanCoexist(static_cast<StateClass>(a),
                          static_cast<StateClass>(b))) {
      // UNDECIDED/decided pairs are transient here (a node still being
      // driven when another decided), terminal COMMIT+ABORT is the real
      // safety violation.
      if (static_cast<StateClass>(a) != StateClass::kUndecided &&
          static_cast<StateClass>(b) != StateClass::kUndecided) {
        forbidden_seen++;
      }
    }
  }
  std::printf("schedules run:                %llu\n",
              static_cast<unsigned long long>(schedules));
  std::printf("conflicting decisions seen:   %llu (expected 0)\n",
              static_cast<unsigned long long>(violations));
  std::printf("forbidden terminal pairs:     %llu (expected 0)\n",
              static_cast<unsigned long long>(forbidden_seen));
  return (violations == 0 && forbidden_seen == 0) ? 0 : 1;
}
