// Determinism regression test for the simulator hot path.
//
// The scheduler contract — events fire in exact (time, insertion-order)
// order — is what makes every seeded experiment in this repo replayable.
// The allocation-free scheduler, the shared-payload message changes and
// the network fast path all preserve that contract bit-for-bit; this test
// pins it with a golden trace: a fixed-seed EasyCommit scenario whose
// complete delivery sequence was recorded when the trace was established.
// Any change that reorders events, consumes RNG draws differently, or
// alters message counts/sizes fails loudly here instead of silently
// shifting every simulation result.
//
// If a deliberate semantic change invalidates the trace (e.g. a protocol
// fix that changes the message pattern), regenerate the constants by
// printing the quantities asserted below from a scratch run of the same
// scenario — and say so in the commit message, because every seeded
// result in docs/ shifts with it.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "commit/testbed.h"
#include "trace/trace_export.h"

namespace ecdb {
namespace {

using testbed::ProtocolTestbed;

// One observed message delivery: simulated time plus routing fields.
struct Delivery {
  Micros at = 0;
  MsgType type = MsgType::kPrepare;
  NodeId src = 0;
  NodeId dst = 0;

  bool operator==(const Delivery&) const = default;
};

struct TraceResult {
  std::vector<Delivery> deliveries;
  uint64_t hash = 0;
  NetworkStats stats;
  Micros final_now = 0;
};

// Three back-to-back EasyCommit rounds on a 5-node cluster with jittered
// latency, seed fixed. Returns the full delivery trace, an FNV-1a hash
// over (time, type, src, dst, txn) per delivery, and the network totals.
// With `coalesce`, the same scenario runs over the coalescing transport:
// loss/jitter are drawn once per frame, in frame-creation order (see the
// coalesced golden below for why that makes this scenario's trace coincide
// with the uncoalesced one).
TraceResult RunGoldenScenario(bool coalesce = false,
                              SchedulerBackend backend =
                                  SchedulerBackend::kHeap) {
  NetworkConfig net;
  net.base_latency_us = 400;
  net.jitter_us = 100;
  CommitEngineConfig commit;
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 5, net, commit, 20180326,
                      backend);
  if (coalesce) bed.network().EnableCoalescing(true);

  TraceResult r;
  r.hash = 1469598103934665603ULL;  // FNV-1a offset basis
  auto mix = [&r](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      r.hash ^= (v >> (8 * i)) & 0xff;
      r.hash *= 1099511628211ULL;  // FNV-1a prime
    }
  };
  bed.network().SetDeliveryInterceptor([&](const Message& m) {
    const Micros at = bed.scheduler().Now();
    r.deliveries.push_back(Delivery{at, m.type, m.src, m.dst});
    mix(at);
    mix(static_cast<uint64_t>(m.type));
    mix(m.src);
    mix(m.dst);
    mix(m.txn);
    return true;
  });

  for (int round = 0; round < 3; ++round) {
    bed.StartAll();
    bed.Settle();
  }
  r.stats = bed.network().stats();
  r.final_now = bed.scheduler().Now();
  return r;
}

TEST(DeterminismTest, GoldenTracePrefixMatches) {
  const TraceResult r = RunGoldenScenario();

  // First round of the golden trace: the coordinator's Prepare fan-out,
  // the votes, and the start of the Global-Commit flood (direct sends and
  // the EC participant-to-participant forwards are indistinguishable on
  // the wire, so the trace sees 60 GlobalCommits for 3 rounds).
  const std::vector<Delivery> kGoldenPrefix = {
      {443u, MsgType::kPrepare, 0, 3},      {450u, MsgType::kPrepare, 0, 1},
      {470u, MsgType::kPrepare, 0, 4},      {482u, MsgType::kPrepare, 0, 2},
      {857u, MsgType::kVoteCommit, 1, 0},   {898u, MsgType::kVoteCommit, 4, 0},
      {904u, MsgType::kVoteCommit, 3, 0},   {921u, MsgType::kVoteCommit, 2, 0},
      {1333u, MsgType::kGlobalCommit, 0, 4}, {1361u, MsgType::kGlobalCommit, 0, 3},
      {1363u, MsgType::kGlobalCommit, 0, 2}, {1411u, MsgType::kGlobalCommit, 0, 1},
  };

  ASSERT_GE(r.deliveries.size(), kGoldenPrefix.size());
  for (size_t i = 0; i < kGoldenPrefix.size(); ++i) {
    EXPECT_EQ(r.deliveries[i], kGoldenPrefix[i]) << "delivery #" << i;
  }
}

TEST(DeterminismTest, GoldenTraceHashAndTotals) {
  const TraceResult r = RunGoldenScenario();

  EXPECT_EQ(r.deliveries.size(), 84u);
  EXPECT_EQ(r.hash, 3149154581355681350ULL);

  EXPECT_EQ(r.stats.messages_sent, 84u);
  EXPECT_EQ(r.stats.messages_delivered, 84u);
  EXPECT_EQ(r.stats.bytes_sent, 3696u);
  EXPECT_EQ(r.stats.per_type.at(MsgType::kPrepare), 12u);
  EXPECT_EQ(r.stats.per_type.at(MsgType::kVoteCommit), 12u);
  EXPECT_EQ(r.stats.per_type.at(MsgType::kGlobalCommit), 60u);

  EXPECT_EQ(r.final_now, 5769u);
}

// The golden scenario over the coalescing transport. In this scenario the
// coalesced trace coincides *exactly* with the uncoalesced golden: every
// scheduler step delivers one message, whose handler emits messages toward
// distinct destinations — so each frame carries a single message, and the
// per-frame jitter draws happen in the same RNG order as the per-message
// draws did. Pinning that equality is the strongest possible statement:
// the coalescing layer adds no observable perturbation until a step
// genuinely multi-sends to one destination. Message-level conservation
// must also hold exactly.
TEST(DeterminismTest, CoalescedGoldenTraceAndTotals) {
  const TraceResult r = RunGoldenScenario(/*coalesce=*/true);

  EXPECT_EQ(r.deliveries.size(), 84u);
  EXPECT_EQ(r.stats.messages_sent, 84u);
  EXPECT_EQ(r.stats.messages_delivered, 84u);
  EXPECT_EQ(r.stats.bytes_sent, 3696u);
  EXPECT_EQ(r.stats.messages_sent - r.stats.messages_coalesced,
            r.stats.frames_sent);
  EXPECT_EQ(r.stats.per_type.at(MsgType::kGlobalCommit), 60u);

  EXPECT_EQ(r.stats.frames_sent, 84u);  // one-message frames throughout
  EXPECT_EQ(r.stats.messages_coalesced, 0u);
  EXPECT_EQ(r.hash, 3149154581355681350ULL);  // == the uncoalesced golden
  EXPECT_EQ(r.final_now, 5769u);
}

// Same seed, fresh testbed, coalescing on: bit-stable replay — the whole
// point of drawing per-frame randomness in deterministic creation order.
TEST(DeterminismTest, CoalescedRunsReplayIdentically) {
  const TraceResult a = RunGoldenScenario(/*coalesce=*/true);
  const TraceResult b = RunGoldenScenario(/*coalesce=*/true);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.final_now, b.final_now);
  EXPECT_EQ(a.stats.frames_sent, b.stats.frames_sent);
  EXPECT_EQ(a.stats.messages_coalesced, b.stats.messages_coalesced);
}

// The same golden scenario under the timer-wheel scheduler backend: the
// complete delivery sequence, hash and clock must be *bit-identical* to
// the heap's. This is the acceptance gate for the wheel — selecting it may
// change no observable event order anywhere.
TEST(DeterminismTest, TimerWheelBackendMatchesGoldenExactly) {
  const TraceResult heap = RunGoldenScenario();
  const TraceResult wheel =
      RunGoldenScenario(/*coalesce=*/false, SchedulerBackend::kTimerWheel);
  EXPECT_EQ(wheel.deliveries.size(), 84u);
  EXPECT_EQ(wheel.hash, 3149154581355681350ULL);
  EXPECT_EQ(wheel.final_now, 5769u);
  EXPECT_EQ(heap.deliveries, wheel.deliveries);
  EXPECT_EQ(heap.hash, wheel.hash);
  EXPECT_EQ(heap.stats.messages_sent, wheel.stats.messages_sent);
  EXPECT_EQ(heap.stats.bytes_sent, wheel.stats.bytes_sent);
}

// Wheel + coalescing transport together (the configuration the large-n
// benchmarks run): still the golden trace.
TEST(DeterminismTest, TimerWheelCoalescedMatchesGoldenExactly) {
  const TraceResult wheel =
      RunGoldenScenario(/*coalesce=*/true, SchedulerBackend::kTimerWheel);
  EXPECT_EQ(wheel.deliveries.size(), 84u);
  EXPECT_EQ(wheel.hash, 3149154581355681350ULL);
  EXPECT_EQ(wheel.stats.frames_sent, 84u);
  EXPECT_EQ(wheel.stats.messages_coalesced, 0u);
  EXPECT_EQ(wheel.final_now, 5769u);
}

// Same seed, fresh testbed: the complete event sequence must be
// identical, not just the aggregate hash.
TEST(DeterminismTest, RepeatedRunsReplayIdentically) {
  const TraceResult a = RunGoldenScenario();
  const TraceResult b = RunGoldenScenario();

  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.final_now, b.final_now);
  EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
  EXPECT_EQ(a.stats.bytes_sent, b.stats.bytes_sent);
}

#if ECDB_TRACE_ENABLED

// The golden scenario with tracing enabled, exported to JSONL.
std::string RunGoldenScenarioTraced() {
  NetworkConfig net;
  net.base_latency_us = 400;
  net.jitter_us = 100;
  CommitEngineConfig commit;
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 5, net, commit, 20180326);
  bed.EnableTracing();
  for (int round = 0; round < 3; ++round) {
    bed.StartAll();
    bed.Settle();
  }
  TraceMeta meta;
  meta.runtime = "testbed";
  meta.protocol = ToString(CommitProtocol::kEasyCommit);
  meta.num_nodes = 5;
  std::ostringstream out;
  WriteJsonl(meta, CollectEvents(bed.recorders()), out);
  return out.str();
}

// The exported trace, not just the simulation, must be deterministic:
// fresh testbeds with the same seed produce byte-identical JSONL. This
// pins both the scheduler/RNG replay and the exporter's stable merge plus
// fixed key order.
TEST(DeterminismTest, ExportedJsonlIsByteIdentical) {
  const std::string a = RunGoldenScenarioTraced();
  const std::string b = RunGoldenScenarioTraced();
  EXPECT_FALSE(a.empty());
  EXPECT_GT(a.size(), 1000u);  // a real trace, not just the meta line
  EXPECT_EQ(a, b);
}

// Enabling tracing must not perturb the simulation itself: same golden
// hash and totals as the untraced run.
TEST(DeterminismTest, TracingDoesNotPerturbGoldenTrace) {
  NetworkConfig net;
  net.base_latency_us = 400;
  net.jitter_us = 100;
  CommitEngineConfig commit;
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 5, net, commit, 20180326);
  bed.EnableTracing();
  for (int round = 0; round < 3; ++round) {
    bed.StartAll();
    bed.Settle();
  }
  EXPECT_EQ(bed.network().stats().messages_delivered, 84u);
  EXPECT_EQ(bed.network().stats().bytes_sent, 3696u);
  EXPECT_EQ(bed.scheduler().Now(), 5769u);
}

#endif  // ECDB_TRACE_ENABLED

}  // namespace
}  // namespace ecdb
