// Unit and property tests for the record lock table (NO_WAIT / WAIT_DIE).

#include "cc/lock_table.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ecdb {
namespace {

constexpr TableId kTable = 0;

TEST(NoWaitTest, SharedLocksCoexist) {
  LockTable lt(CcPolicy::kNoWait);
  EXPECT_EQ(lt.Acquire(1, 1, kTable, 10, LockMode::kShared),
            AcquireResult::kGranted);
  EXPECT_EQ(lt.Acquire(2, 2, kTable, 10, LockMode::kShared),
            AcquireResult::kGranted);
  EXPECT_EQ(lt.HeldCount(1), 1u);
  EXPECT_EQ(lt.HeldCount(2), 1u);
}

TEST(NoWaitTest, ExclusiveConflictsWithShared) {
  LockTable lt(CcPolicy::kNoWait);
  ASSERT_EQ(lt.Acquire(1, 1, kTable, 10, LockMode::kShared),
            AcquireResult::kGranted);
  EXPECT_EQ(lt.Acquire(2, 2, kTable, 10, LockMode::kExclusive),
            AcquireResult::kAbort);
  EXPECT_EQ(lt.conflict_aborts(), 1u);
}

TEST(NoWaitTest, SharedConflictsWithExclusive) {
  LockTable lt(CcPolicy::kNoWait);
  ASSERT_EQ(lt.Acquire(1, 1, kTable, 10, LockMode::kExclusive),
            AcquireResult::kGranted);
  EXPECT_EQ(lt.Acquire(2, 2, kTable, 10, LockMode::kShared),
            AcquireResult::kAbort);
}

TEST(NoWaitTest, DistinctKeysDoNotConflict) {
  LockTable lt(CcPolicy::kNoWait);
  EXPECT_EQ(lt.Acquire(1, 1, kTable, 10, LockMode::kExclusive),
            AcquireResult::kGranted);
  EXPECT_EQ(lt.Acquire(2, 2, kTable, 11, LockMode::kExclusive),
            AcquireResult::kGranted);
  EXPECT_EQ(lt.Acquire(2, 2, 1, 10, LockMode::kExclusive),
            AcquireResult::kGranted);  // same key, different table
}

TEST(NoWaitTest, ReacquireIsIdempotent) {
  LockTable lt(CcPolicy::kNoWait);
  ASSERT_EQ(lt.Acquire(1, 1, kTable, 10, LockMode::kExclusive),
            AcquireResult::kGranted);
  EXPECT_EQ(lt.Acquire(1, 1, kTable, 10, LockMode::kExclusive),
            AcquireResult::kGranted);
  EXPECT_EQ(lt.Acquire(1, 1, kTable, 10, LockMode::kShared),
            AcquireResult::kGranted);
  EXPECT_EQ(lt.HeldCount(1), 1u);
}

TEST(NoWaitTest, SoleHolderUpgrades) {
  LockTable lt(CcPolicy::kNoWait);
  ASSERT_EQ(lt.Acquire(1, 1, kTable, 10, LockMode::kShared),
            AcquireResult::kGranted);
  EXPECT_EQ(lt.Acquire(1, 1, kTable, 10, LockMode::kExclusive),
            AcquireResult::kGranted);
  // Now exclusive: another shared must conflict.
  EXPECT_EQ(lt.Acquire(2, 2, kTable, 10, LockMode::kShared),
            AcquireResult::kAbort);
}

TEST(NoWaitTest, UpgradeWithOtherSharedHoldersAborts) {
  LockTable lt(CcPolicy::kNoWait);
  ASSERT_EQ(lt.Acquire(1, 1, kTable, 10, LockMode::kShared),
            AcquireResult::kGranted);
  ASSERT_EQ(lt.Acquire(2, 2, kTable, 10, LockMode::kShared),
            AcquireResult::kGranted);
  EXPECT_EQ(lt.Acquire(1, 1, kTable, 10, LockMode::kExclusive),
            AcquireResult::kAbort);
}

TEST(NoWaitTest, ReleaseAllFreesEverything) {
  LockTable lt(CcPolicy::kNoWait);
  ASSERT_EQ(lt.Acquire(1, 1, kTable, 10, LockMode::kExclusive),
            AcquireResult::kGranted);
  ASSERT_EQ(lt.Acquire(1, 1, kTable, 11, LockMode::kShared),
            AcquireResult::kGranted);
  lt.ReleaseAll(1);
  EXPECT_EQ(lt.HeldCount(1), 0u);
  EXPECT_EQ(lt.ActiveEntries(), 0u);
  EXPECT_EQ(lt.Acquire(2, 2, kTable, 10, LockMode::kExclusive),
            AcquireResult::kGranted);
}

TEST(NoWaitTest, ReleaseUnknownTxnIsNoop) {
  LockTable lt(CcPolicy::kNoWait);
  lt.ReleaseAll(42);  // must not crash
  EXPECT_EQ(lt.ActiveEntries(), 0u);
}

// ---------------------------------------------------------------------------
// WAIT_DIE
// ---------------------------------------------------------------------------

TEST(WaitDieTest, OlderRequesterWaits) {
  LockTable lt(CcPolicy::kWaitDie);
  ASSERT_EQ(lt.Acquire(2, /*ts=*/20, kTable, 10, LockMode::kExclusive),
            AcquireResult::kGranted);
  bool granted = false;
  // ts=10 < 20: older, so it waits.
  EXPECT_EQ(lt.Acquire(1, 10, kTable, 10, LockMode::kExclusive,
                       [&] { granted = true; }),
            AcquireResult::kWaiting);
  EXPECT_FALSE(granted);
  lt.ReleaseAll(2);
  EXPECT_TRUE(granted);
  EXPECT_EQ(lt.HeldCount(1), 1u);
}

TEST(WaitDieTest, YoungerRequesterDies) {
  LockTable lt(CcPolicy::kWaitDie);
  ASSERT_EQ(lt.Acquire(1, 10, kTable, 10, LockMode::kExclusive),
            AcquireResult::kGranted);
  EXPECT_EQ(lt.Acquire(2, 20, kTable, 10, LockMode::kExclusive),
            AcquireResult::kAbort);
  EXPECT_EQ(lt.conflict_aborts(), 1u);
}

TEST(WaitDieTest, QueuedSharedRequestsGrantTogether) {
  LockTable lt(CcPolicy::kWaitDie);
  ASSERT_EQ(lt.Acquire(9, 90, kTable, 10, LockMode::kExclusive),
            AcquireResult::kGranted);
  int granted = 0;
  EXPECT_EQ(lt.Acquire(1, 20, kTable, 10, LockMode::kShared,
                       [&] { granted++; }),
            AcquireResult::kWaiting);
  // Each later waiter is older than its predecessors (wait edges old->young).
  EXPECT_EQ(lt.Acquire(2, 10, kTable, 10, LockMode::kShared,
                       [&] { granted++; }),
            AcquireResult::kWaiting);
  lt.ReleaseAll(9);
  EXPECT_EQ(granted, 2);
}

TEST(WaitDieTest, CompatibleRequestQueuesBehindOlderWaiters) {
  // A shared request compatible with the holders still queues behind a
  // waiting exclusive — but only if it is older than that waiter; queueing
  // would otherwise create a young->old wait edge.
  LockTable lt(CcPolicy::kWaitDie);
  ASSERT_EQ(lt.Acquire(5, 50, kTable, 10, LockMode::kShared),
            AcquireResult::kGranted);
  bool x_granted = false;
  ASSERT_EQ(lt.Acquire(2, 20, kTable, 10, LockMode::kExclusive,
                       [&] { x_granted = true; }),
            AcquireResult::kWaiting);
  bool s_granted = false;
  EXPECT_EQ(lt.Acquire(1, 10, kTable, 10, LockMode::kShared,
                       [&] { s_granted = true; }),
            AcquireResult::kWaiting);
  lt.ReleaseAll(5);
  EXPECT_TRUE(x_granted);
  EXPECT_FALSE(s_granted);  // behind the exclusive
  lt.ReleaseAll(2);
  EXPECT_TRUE(s_granted);
}

TEST(WaitDieTest, YoungerCompatibleRequestDiesBehindWaiters) {
  LockTable lt(CcPolicy::kWaitDie);
  ASSERT_EQ(lt.Acquire(5, 50, kTable, 10, LockMode::kShared),
            AcquireResult::kGranted);
  ASSERT_EQ(lt.Acquire(1, 10, kTable, 10, LockMode::kExclusive, [] {}),
            AcquireResult::kWaiting);
  // ts 20 > 10: queueing behind the exclusive would invert the age order.
  EXPECT_EQ(lt.Acquire(2, 20, kTable, 10, LockMode::kShared),
            AcquireResult::kAbort);
}

TEST(WaitDieTest, AbortedWaiterIsRemovedFromQueue) {
  LockTable lt(CcPolicy::kWaitDie);
  ASSERT_EQ(lt.Acquire(9, 90, kTable, 10, LockMode::kExclusive),
            AcquireResult::kGranted);
  bool granted = false;
  ASSERT_EQ(lt.Acquire(1, 10, kTable, 10, LockMode::kExclusive,
                       [&] { granted = true; }),
            AcquireResult::kWaiting);
  lt.ReleaseAll(1);  // the waiter aborts before the grant
  lt.ReleaseAll(9);
  EXPECT_FALSE(granted);
  EXPECT_EQ(lt.ActiveEntries(), 0u);
}

TEST(WaitDieTest, QueuedUpgradeGrantsWhenOtherSharersLeave) {
  // Regression: a waiting shared->exclusive upgrade must not be blocked by
  // the requester's own shared holder entry.
  LockTable lt(CcPolicy::kWaitDie);
  ASSERT_EQ(lt.Acquire(1, 10, kTable, 10, LockMode::kShared),
            AcquireResult::kGranted);
  ASSERT_EQ(lt.Acquire(2, 20, kTable, 10, LockMode::kShared),
            AcquireResult::kGranted);
  bool granted = false;
  ASSERT_EQ(lt.Acquire(1, 10, kTable, 10, LockMode::kExclusive,
                       [&] { granted = true; }),
            AcquireResult::kWaiting);
  lt.ReleaseAll(2);
  EXPECT_TRUE(granted);
  EXPECT_EQ(lt.HeldCount(1), 1u);
  // The upgrade must be effective: another shared request conflicts.
  EXPECT_EQ(lt.Acquire(3, 30, kTable, 10, LockMode::kShared),
            AcquireResult::kAbort);
}

// Property: under WAIT_DIE a waits-for edge always points from an older
// transaction to a younger holder, so randomized workloads can never
// deadlock — every request eventually resolves to granted or aborted.
TEST(WaitDiePropertyTest, RandomizedAcquisitionsAlwaysResolve) {
  Rng rng(123);
  for (int round = 0; round < 50; ++round) {
    LockTable lt(CcPolicy::kWaitDie);
    constexpr int kTxns = 16;
    struct TxnState {
      bool waiting = false;
      bool dead = false;
    };
    std::vector<TxnState> txns(kTxns);
    int resolved = 0;

    for (int step = 0; step < 400; ++step) {
      const TxnId txn = rng.NextBounded(kTxns);
      TxnState& t = txns[txn];
      // A real transaction issues one request at a time and none after it
      // finished.
      if (t.dead || t.waiting) continue;
      const Key key = rng.NextBounded(8);
      const LockMode mode = rng.NextBernoulli(0.5) ? LockMode::kExclusive
                                                   : LockMode::kShared;
      const AcquireResult r = lt.Acquire(txn, /*ts=*/txn, kTable, key, mode,
                                         [&t] { t.waiting = false; });
      if (r == AcquireResult::kAbort) {
        lt.ReleaseAll(txn);
        t.dead = true;
        resolved++;
      } else if (r == AcquireResult::kWaiting) {
        t.waiting = true;
      } else {
        resolved++;
        if (rng.NextBernoulli(0.15)) {  // commit and finish
          lt.ReleaseAll(txn);
          t.dead = true;
        }
      }
    }

    // Drain: wait-die guarantees the youngest live transaction is never
    // waiting (it would have died instead), so repeatedly finishing a
    // non-waiting live transaction must terminate with everyone resolved.
    for (int guard = 0; guard < kTxns * kTxns; ++guard) {
      TxnId victim = kTxns;
      for (TxnId txn = kTxns; txn-- > 0;) {
        if (!txns[txn].dead && !txns[txn].waiting) {
          victim = txn;
          break;
        }
      }
      if (victim == kTxns) break;
      lt.ReleaseAll(victim);  // grants may un-wait older transactions
      txns[victim].dead = true;
    }

    for (TxnId txn = 0; txn < kTxns; ++txn) {
      EXPECT_TRUE(txns[txn].dead) << "round " << round << " txn " << txn;
      EXPECT_FALSE(txns[txn].waiting) << "round " << round << " txn " << txn;
    }
    EXPECT_EQ(lt.ActiveEntries(), 0u) << "round " << round;
    EXPECT_GT(resolved, 0);
  }
}

// Property: NO_WAIT never reports kWaiting.
TEST(NoWaitPropertyTest, NeverWaits) {
  Rng rng(321);
  LockTable lt(CcPolicy::kNoWait);
  for (int step = 0; step < 2000; ++step) {
    const TxnId txn = rng.NextBounded(8);
    const Key key = rng.NextBounded(4);
    const LockMode mode =
        rng.NextBernoulli(0.5) ? LockMode::kExclusive : LockMode::kShared;
    const AcquireResult r = lt.Acquire(txn, txn, kTable, key, mode);
    EXPECT_NE(r, AcquireResult::kWaiting);
    if (r == AcquireResult::kAbort) lt.ReleaseAll(txn);
    if (rng.NextBernoulli(0.2)) lt.ReleaseAll(txn);
  }
}

}  // namespace
}  // namespace ecdb
