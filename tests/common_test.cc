// Unit tests for common utilities: Status/Result, Rng, Zipfian, Histogram.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace ecdb {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  const Status s = Status::Conflict("lock held");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsConflict());
  EXPECT_EQ(s.code(), Code::kConflict);
  EXPECT_EQ(s.message(), "lock held");
  EXPECT_EQ(s.ToString(), "Conflict: lock held");
}

TEST(StatusTest, PredicatesAreExclusive) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_FALSE(Status::NotFound().IsConflict());
  EXPECT_TRUE(Status::Blocked().IsBlocked());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
}

TEST(StatusTest, ToStringWithoutMessage) {
  EXPECT_EQ(Status::IOError().ToString(), "IOError");
  EXPECT_EQ(Status::Internal("x").ToString(), "Internal: x");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

TEST(TypesTest, TxnIdRoundTrips) {
  const TxnId txn = MakeTxnId(37, 123456789);
  EXPECT_EQ(TxnCoordinator(txn), 37u);
  EXPECT_EQ(TxnSequence(txn), 123456789u);
}

TEST(TypesTest, TxnIdsAreDistinctAcrossCoordinators) {
  EXPECT_NE(MakeTxnId(1, 7), MakeTxnId(2, 7));
  EXPECT_NE(MakeTxnId(1, 7), MakeTxnId(1, 8));
}

TEST(TypesTest, ProtocolNames) {
  EXPECT_EQ(ToString(CommitProtocol::kTwoPhase), "2PC");
  EXPECT_EQ(ToString(CommitProtocol::kThreePhase), "3PC");
  EXPECT_EQ(ToString(CommitProtocol::kEasyCommit), "EC");
  EXPECT_EQ(ToString(CommitProtocol::kEasyCommitNoForward), "EC-noforward");
  EXPECT_EQ(ToString(Decision::kCommit), "commit");
  EXPECT_EQ(ToString(Decision::kAbort), "abort");
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) same++;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(6);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8000; ++i) seen[rng.NextBounded(8)]++;
  for (int v : seen) EXPECT_GT(v, 800);  // roughly uniform
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.NextBernoulli(0.3)) hits++;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(10);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  EXPECT_FALSE(rng.NextBernoulli(-1.0));
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng a(11);
  Rng child = a.Fork();
  // Child must not replay the parent's stream.
  Rng parent_copy(11);
  parent_copy.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.Next() == a.Next()) same++;
  }
  EXPECT_LT(same, 2);
}

// ---------------------------------------------------------------------------
// Zipfian
// ---------------------------------------------------------------------------

TEST(ZipfianTest, StaysInRange) {
  ZipfianGenerator zipf(1000, 0.9);
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(rng), 1000u);
}

TEST(ZipfianTest, LowThetaIsNearlyUniform) {
  ZipfianGenerator zipf(100, 0.01);
  Rng rng(13);
  std::vector<int> counts(100, 0);
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) counts[zipf.Next(rng)]++;
  // Hottest item should be close to 1% of samples.
  const int max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_LT(max_count, kSamples * 0.025);
}

TEST(ZipfianTest, HighThetaConcentratesOnHotKeys) {
  ZipfianGenerator zipf(100000, 0.9);
  Rng rng(14);
  int hot = 0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Next(rng) < 100) hot++;  // top 0.1% of keys
  }
  // With theta=0.9 the top 0.1% draws a large share of accesses.
  EXPECT_GT(hot, kSamples / 4);
}

TEST(ZipfianTest, SkewIncreasesWithTheta) {
  Rng rng(15);
  auto hot_fraction = [&](double theta) {
    ZipfianGenerator zipf(10000, theta);
    int hot = 0;
    for (int i = 0; i < 50000; ++i) {
      if (zipf.Next(rng) < 10) hot++;
    }
    return hot;
  };
  const int h1 = hot_fraction(0.1);
  const int h5 = hot_fraction(0.5);
  const int h9 = hot_fraction(0.9);
  EXPECT_LT(h1, h5);
  EXPECT_LT(h5, h9);
}

TEST(ZipfianTest, ItemZeroIsHottest) {
  ZipfianGenerator zipf(1000, 0.8);
  Rng rng(16);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) counts[zipf.Next(rng)]++;
  const int max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_EQ(counts[0], max_count);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (uint64_t v = 0; v < 64; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 63u);
  EXPECT_EQ(h.Percentile(0.5), 31u);
  EXPECT_EQ(h.Percentile(1.0), 63u);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
}

TEST(HistogramTest, LargeValueRelativeErrorIsBounded) {
  Histogram h;
  const uint64_t value = 123456789;
  h.Record(value);
  const uint64_t p = h.Percentile(0.5);
  EXPECT_GE(p, value);  // upper bound of the bucket, capped at max
  EXPECT_LE(p, value + value / 10);
}

TEST(HistogramTest, PercentileOrdering) {
  Histogram h;
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) h.Record(rng.NextBounded(1'000'000));
  EXPECT_LE(h.Percentile(0.5), h.Percentile(0.9));
  EXPECT_LE(h.Percentile(0.9), h.Percentile(0.99));
  EXPECT_LE(h.Percentile(0.99), h.max());
}

TEST(HistogramTest, PercentileApproximatesUniform) {
  Histogram h;
  for (uint64_t v = 1; v <= 100000; ++v) h.Record(v);
  const uint64_t p50 = h.Percentile(0.5);
  EXPECT_NEAR(static_cast<double>(p50), 50000.0, 5000.0);
  const uint64_t p99 = h.Percentile(0.99);
  EXPECT_NEAR(static_cast<double>(p99), 99000.0, 5000.0);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  a.Record(5);
  b.Record(500);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 500u);
}

TEST(HistogramTest, MergeIntoEmpty) {
  Histogram a, b;
  b.Record(7);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 7u);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Record(123);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
}

TEST(HistogramTest, QuantileClamping) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.Percentile(-1.0), 42u);
  EXPECT_EQ(h.Percentile(2.0), 42u);
}

}  // namespace
}  // namespace ecdb
