// Unit tests for the TPC-C (Payment + NewOrder) workload.

#include "workload/tpcc.h"

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

namespace ecdb {
namespace {

TpccConfig SmallConfig() {
  TpccConfig cfg;
  cfg.num_partitions = 4;
  cfg.warehouses_per_partition = 2;
  cfg.districts_per_warehouse = 4;
  cfg.customers_per_district = 8;
  cfg.items = 64;
  return cfg;
}

TEST(TpccKeysTest, WarehouseKeysRouteToOwningPartition) {
  TpccWorkload tpcc(SmallConfig());
  KeyPartitioner part(4);
  for (uint32_t w = 0; w < tpcc.total_warehouses(); ++w) {
    EXPECT_EQ(part.PartitionOf(tpcc.WarehouseKey(w)),
              tpcc.PartitionOfWarehouse(w));
  }
}

TEST(TpccKeysTest, AllKeyKindsRouteConsistently) {
  TpccWorkload tpcc(SmallConfig());
  KeyPartitioner part(4);
  for (uint32_t w = 0; w < tpcc.total_warehouses(); ++w) {
    const PartitionId p = tpcc.PartitionOfWarehouse(w);
    EXPECT_EQ(part.PartitionOf(tpcc.DistrictKey(w, 3)), p);
    EXPECT_EQ(part.PartitionOf(tpcc.CustomerKey(w, 2, 5)), p);
    EXPECT_EQ(part.PartitionOf(tpcc.StockKey(w, 17)), p);
  }
}

TEST(TpccKeysTest, KeysAreCollisionFreeWithinTables) {
  TpccWorkload tpcc(SmallConfig());
  const TpccConfig& cfg = tpcc.config();
  std::unordered_set<Key> district_keys;
  std::unordered_set<Key> customer_keys;
  std::unordered_set<Key> stock_keys;
  for (uint32_t w = 0; w < tpcc.total_warehouses(); ++w) {
    for (uint32_t d = 0; d < cfg.districts_per_warehouse; ++d) {
      EXPECT_TRUE(district_keys.insert(tpcc.DistrictKey(w, d)).second);
      for (uint32_t c = 0; c < cfg.customers_per_district; ++c) {
        EXPECT_TRUE(customer_keys.insert(tpcc.CustomerKey(w, d, c)).second);
      }
    }
    for (uint32_t i = 0; i < cfg.items; ++i) {
      EXPECT_TRUE(stock_keys.insert(tpcc.StockKey(w, i)).second);
    }
  }
}

TEST(TpccLoadTest, PartitionHoldsItsWarehousesOnly) {
  TpccWorkload tpcc(SmallConfig());
  PartitionStore store(1);
  KeyPartitioner part(4);
  tpcc.LoadPartition(&store, part);
  // 2 warehouses on partition 1.
  EXPECT_EQ(store.GetTable(TpccWorkload::kWarehouse)->size(), 2u);
  EXPECT_EQ(store.GetTable(TpccWorkload::kDistrict)->size(), 2u * 4);
  EXPECT_EQ(store.GetTable(TpccWorkload::kCustomer)->size(), 2u * 4 * 8);
  EXPECT_EQ(store.GetTable(TpccWorkload::kStock)->size(), 2u * 64);
  // Replicated ITEM table: full copy.
  EXPECT_EQ(store.GetTable(TpccWorkload::kItem)->size(), 64u);
}

TEST(TpccLoadTest, GeneratedKeysExistInStore) {
  TpccWorkload tpcc(SmallConfig());
  KeyPartitioner part(4);
  std::vector<PartitionStore> stores;
  for (PartitionId p = 0; p < 4; ++p) {
    stores.emplace_back(p);
    tpcc.LoadPartition(&stores.back(), part);
  }
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const TxnRequest req = tpcc.NextTxn(i % 4, rng);
    for (const Operation& op : req.ops) {
      const PartitionId p = part.PartitionOf(op.key);
      const Table* table = stores[p].GetTable(op.table);
      ASSERT_NE(table, nullptr);
      EXPECT_TRUE(table->Get(op.key).ok())
          << "table " << op.table << " key " << op.key;
    }
  }
}

TEST(TpccTxnTest, PaymentShape) {
  TpccConfig cfg = SmallConfig();
  cfg.payment_fraction = 1.0;
  TpccWorkload tpcc(cfg);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const TxnRequest req = tpcc.NextTxn(0, rng);
    ASSERT_EQ(req.ops.size(), 3u);
    EXPECT_EQ(req.ops[0].table, TpccWorkload::kWarehouse);
    EXPECT_TRUE(req.ops[0].is_write());
    EXPECT_EQ(req.ops[1].table, TpccWorkload::kDistrict);
    EXPECT_TRUE(req.ops[1].is_write());
    EXPECT_EQ(req.ops[2].table, TpccWorkload::kCustomer);
    EXPECT_TRUE(req.ops[2].is_write());
  }
}

TEST(TpccTxnTest, PaymentRemoteFractionApproximatesConfig) {
  TpccConfig cfg = SmallConfig();
  cfg.payment_fraction = 1.0;
  cfg.payment_remote_probability = 0.15;
  TpccWorkload tpcc(cfg);
  KeyPartitioner part(4);
  Rng rng(3);
  int multi = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const TxnRequest req = tpcc.NextTxn(0, rng);
    std::set<PartitionId> parts;
    for (const Operation& op : req.ops) parts.insert(part.PartitionOf(op.key));
    if (parts.size() > 1) multi++;
  }
  // A remote customer is on another partition 6/7 of the time (the other
  // warehouse may share the partition): expect ~0.15 * 6/7 ~ 0.129.
  EXPECT_NEAR(multi / static_cast<double>(kSamples), 0.129, 0.02);
}

TEST(TpccTxnTest, NewOrderShape) {
  TpccConfig cfg = SmallConfig();
  cfg.payment_fraction = 0.0;
  TpccWorkload tpcc(cfg);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const TxnRequest req = tpcc.NextTxn(0, rng);
    // warehouse read + district write + per line (item read + stock write,
    // stock dedup may drop a few).
    ASSERT_GE(req.ops.size(), 2u + 5u + 1u);
    EXPECT_EQ(req.ops[0].table, TpccWorkload::kWarehouse);
    EXPECT_FALSE(req.ops[0].is_write());
    EXPECT_EQ(req.ops[1].table, TpccWorkload::kDistrict);
    EXPECT_TRUE(req.ops[1].is_write());
    int items = 0, stocks = 0;
    for (const Operation& op : req.ops) {
      if (op.table == TpccWorkload::kItem) {
        items++;
        EXPECT_FALSE(op.is_write());
      }
      if (op.table == TpccWorkload::kStock) {
        stocks++;
        EXPECT_TRUE(op.is_write());
      }
    }
    EXPECT_GE(items, 5);
    EXPECT_LE(items, 15);
    EXPECT_LE(stocks, items);
  }
}

TEST(TpccTxnTest, ItemReadsAreAlwaysLocal) {
  TpccConfig cfg = SmallConfig();
  cfg.payment_fraction = 0.0;
  TpccWorkload tpcc(cfg);
  KeyPartitioner part(4);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const PartitionId home = i % 4;
    for (const Operation& op : tpcc.NextTxn(home, rng).ops) {
      if (op.table == TpccWorkload::kItem) {
        EXPECT_EQ(part.PartitionOf(op.key), home);
      }
    }
  }
}

TEST(TpccTxnTest, MostNewOrdersAreSinglePartition) {
  TpccConfig cfg = SmallConfig();
  cfg.payment_fraction = 0.0;
  TpccWorkload tpcc(cfg);
  KeyPartitioner part(4);
  Rng rng(6);
  int multi = 0;
  const int kSamples = 5000;
  for (int i = 0; i < kSamples; ++i) {
    const TxnRequest req = tpcc.NextTxn(0, rng);
    std::set<PartitionId> parts;
    for (const Operation& op : req.ops) parts.insert(part.PartitionOf(op.key));
    if (parts.size() > 1) multi++;
  }
  const double frac = multi / static_cast<double>(kSamples);
  // ~1% remote per line, ~10 lines -> ~8-10% multi-partition (paper: ~10%).
  EXPECT_GT(frac, 0.03);
  EXPECT_LT(frac, 0.18);
}

TEST(TpccTxnTest, MixFollowsPaymentFraction) {
  TpccConfig cfg = SmallConfig();
  cfg.payment_fraction = 0.5;
  TpccWorkload tpcc(cfg);
  Rng rng(7);
  int payments = 0;
  for (int i = 0; i < 10000; ++i) {
    // Payments have exactly 3 operations; NewOrders have >= 7.
    if (tpcc.NextTxn(0, rng).ops.size() == 3) payments++;
  }
  EXPECT_NEAR(payments / 10000.0, 0.5, 0.03);
}

}  // namespace
}  // namespace ecdb
