// Unit tests for the discrete-event scheduler.

#include "sim/scheduler.h"

#include <vector>

#include <gtest/gtest.h>

namespace ecdb {
namespace {

TEST(SchedulerTest, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.Now(), 0u);
  EXPECT_TRUE(s.Empty());
}

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.ScheduleAt(30, [&] { order.push_back(3); });
  s.ScheduleAt(10, [&] { order.push_back(1); });
  s.ScheduleAt(20, [&] { order.push_back(2); });
  s.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 30u);
}

TEST(SchedulerTest, SameTimeEventsRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  s.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, ClockAdvancesToEventTime) {
  Scheduler s;
  Micros seen = 0;
  s.ScheduleAfter(100, [&] { seen = s.Now(); });
  s.RunOne();
  EXPECT_EQ(seen, 100u);
}

TEST(SchedulerTest, ScheduleAfterIsRelative) {
  Scheduler s;
  s.ScheduleAt(50, [] {});
  s.RunOne();
  Micros seen = 0;
  s.ScheduleAfter(25, [&] { seen = s.Now(); });
  s.RunOne();
  EXPECT_EQ(seen, 75u);
}

TEST(SchedulerTest, PastTimesClampToNow) {
  Scheduler s;
  s.ScheduleAt(100, [] {});
  s.RunOne();
  Micros seen = 0;
  s.ScheduleAt(10, [&] { seen = s.Now(); });  // in the past
  s.RunOne();
  EXPECT_EQ(seen, 100u);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const auto id = s.ScheduleAfter(10, [&] { ran = true; });
  EXPECT_TRUE(s.Cancel(id));
  s.RunAll();
  EXPECT_FALSE(ran);
}

TEST(SchedulerTest, CancelReturnsFalseTwice) {
  Scheduler s;
  const auto id = s.ScheduleAfter(10, [] {});
  EXPECT_TRUE(s.Cancel(id));
  EXPECT_FALSE(s.Cancel(id));
}

TEST(SchedulerTest, CancelAfterRunReturnsFalse) {
  Scheduler s;
  const auto id = s.ScheduleAfter(10, [] {});
  s.RunAll();
  EXPECT_FALSE(s.Cancel(id));
}

TEST(SchedulerTest, RunUntilExecutesOnlyDueEvents) {
  Scheduler s;
  int ran = 0;
  s.ScheduleAt(10, [&] { ran++; });
  s.ScheduleAt(20, [&] { ran++; });
  s.ScheduleAt(30, [&] { ran++; });
  EXPECT_EQ(s.RunUntil(20), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(s.Now(), 20u);
  EXPECT_EQ(s.PendingCount(), 1u);
}

TEST(SchedulerTest, RunUntilAdvancesClockWhenIdle) {
  Scheduler s;
  s.RunUntil(500);
  EXPECT_EQ(s.Now(), 500u);
}

TEST(SchedulerTest, RunUntilSkipsCancelledHead) {
  Scheduler s;
  bool ran = false;
  const auto id = s.ScheduleAt(10, [] {});
  s.ScheduleAt(20, [&] { ran = true; });
  s.Cancel(id);
  EXPECT_EQ(s.RunUntil(25), 1u);
  EXPECT_TRUE(ran);
}

TEST(SchedulerTest, EventsMayScheduleMoreEvents) {
  Scheduler s;
  std::vector<Micros> times;
  std::function<void()> chain = [&] {
    times.push_back(s.Now());
    if (times.size() < 5) s.ScheduleAfter(10, chain);
  };
  s.ScheduleAfter(10, chain);
  s.RunAll();
  EXPECT_EQ(times, (std::vector<Micros>{10, 20, 30, 40, 50}));
}

TEST(SchedulerTest, RunAllHonorsEventCap) {
  Scheduler s;
  std::function<void()> forever = [&] { s.ScheduleAfter(1, forever); };
  s.ScheduleAfter(1, forever);
  EXPECT_EQ(s.RunAll(100), 100u);
}

TEST(SchedulerTest, RunOneReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.RunOne());
}

TEST(SchedulerTest, PendingCountExcludesCancelled) {
  Scheduler s;
  const auto a = s.ScheduleAfter(1, [] {});
  s.ScheduleAfter(2, [] {});
  EXPECT_EQ(s.PendingCount(), 2u);
  s.Cancel(a);
  EXPECT_EQ(s.PendingCount(), 1u);
}

}  // namespace
}  // namespace ecdb
