// Unit tests for the discrete-event scheduler.

#include "sim/scheduler.h"

#include <algorithm>
#include <array>
#include <memory>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace ecdb {
namespace {

TEST(SchedulerTest, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.Now(), 0u);
  EXPECT_TRUE(s.Empty());
}

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.ScheduleAt(30, [&] { order.push_back(3); });
  s.ScheduleAt(10, [&] { order.push_back(1); });
  s.ScheduleAt(20, [&] { order.push_back(2); });
  s.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 30u);
}

TEST(SchedulerTest, SameTimeEventsRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  s.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, ClockAdvancesToEventTime) {
  Scheduler s;
  Micros seen = 0;
  s.ScheduleAfter(100, [&] { seen = s.Now(); });
  s.RunOne();
  EXPECT_EQ(seen, 100u);
}

TEST(SchedulerTest, ScheduleAfterIsRelative) {
  Scheduler s;
  s.ScheduleAt(50, [] {});
  s.RunOne();
  Micros seen = 0;
  s.ScheduleAfter(25, [&] { seen = s.Now(); });
  s.RunOne();
  EXPECT_EQ(seen, 75u);
}

TEST(SchedulerTest, PastTimesClampToNow) {
  Scheduler s;
  s.ScheduleAt(100, [] {});
  s.RunOne();
  Micros seen = 0;
  s.ScheduleAt(10, [&] { seen = s.Now(); });  // in the past
  s.RunOne();
  EXPECT_EQ(seen, 100u);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const auto id = s.ScheduleAfter(10, [&] { ran = true; });
  EXPECT_TRUE(s.Cancel(id));
  s.RunAll();
  EXPECT_FALSE(ran);
}

TEST(SchedulerTest, CancelReturnsFalseTwice) {
  Scheduler s;
  const auto id = s.ScheduleAfter(10, [] {});
  EXPECT_TRUE(s.Cancel(id));
  EXPECT_FALSE(s.Cancel(id));
}

TEST(SchedulerTest, CancelAfterRunReturnsFalse) {
  Scheduler s;
  const auto id = s.ScheduleAfter(10, [] {});
  s.RunAll();
  EXPECT_FALSE(s.Cancel(id));
}

TEST(SchedulerTest, RunUntilExecutesOnlyDueEvents) {
  Scheduler s;
  int ran = 0;
  s.ScheduleAt(10, [&] { ran++; });
  s.ScheduleAt(20, [&] { ran++; });
  s.ScheduleAt(30, [&] { ran++; });
  EXPECT_EQ(s.RunUntil(20), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(s.Now(), 20u);
  EXPECT_EQ(s.PendingCount(), 1u);
}

TEST(SchedulerTest, RunUntilAdvancesClockWhenIdle) {
  Scheduler s;
  s.RunUntil(500);
  EXPECT_EQ(s.Now(), 500u);
}

TEST(SchedulerTest, RunUntilSkipsCancelledHead) {
  Scheduler s;
  bool ran = false;
  const auto id = s.ScheduleAt(10, [] {});
  s.ScheduleAt(20, [&] { ran = true; });
  s.Cancel(id);
  EXPECT_EQ(s.RunUntil(25), 1u);
  EXPECT_TRUE(ran);
}

TEST(SchedulerTest, EventsMayScheduleMoreEvents) {
  Scheduler s;
  std::vector<Micros> times;
  std::function<void()> chain = [&] {
    times.push_back(s.Now());
    if (times.size() < 5) s.ScheduleAfter(10, chain);
  };
  s.ScheduleAfter(10, chain);
  s.RunAll();
  EXPECT_EQ(times, (std::vector<Micros>{10, 20, 30, 40, 50}));
}

TEST(SchedulerTest, RunAllHonorsEventCap) {
  Scheduler s;
  std::function<void()> forever = [&] { s.ScheduleAfter(1, forever); };
  s.ScheduleAfter(1, forever);
  EXPECT_EQ(s.RunAll(100), 100u);
}

TEST(SchedulerTest, RunOneReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.RunOne());
}

TEST(SchedulerTest, PendingCountExcludesCancelled) {
  Scheduler s;
  const auto a = s.ScheduleAfter(1, [] {});
  s.ScheduleAfter(2, [] {});
  EXPECT_EQ(s.PendingCount(), 2u);
  s.Cancel(a);
  EXPECT_EQ(s.PendingCount(), 1u);
}

TEST(SchedulerTest, RunOneSkipsCancelledHead) {
  // The cancelled entry sits at the top of the heap; RunOne must discard
  // it and execute the next live event in the same call.
  Scheduler s;
  int ran = 0;
  const auto head = s.ScheduleAt(5, [&] { ran = 1; });
  s.ScheduleAt(10, [&] { ran = 2; });
  s.Cancel(head);
  EXPECT_TRUE(s.RunOne());
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(s.Now(), 10u);
}

TEST(SchedulerTest, RunUntilPastDrainedQueueReturnsZero) {
  Scheduler s;
  s.ScheduleAt(10, [] {});
  EXPECT_EQ(s.RunUntil(50), 1u);
  EXPECT_EQ(s.RunUntil(200), 0u);  // nothing left: just advance the clock
  EXPECT_EQ(s.Now(), 200u);
}

TEST(SchedulerTest, StaleIdOfRecycledSlotIsNotCancellable) {
  // After an event runs, its storage slot is recycled for the next
  // schedule. The old TaskId must stay dead: cancelling it may not
  // return true and — critically — may not kill the slot's new tenant.
  Scheduler s;
  const auto old_id = s.ScheduleAfter(1, [] {});
  s.RunAll();
  bool ran = false;
  const auto new_id = s.ScheduleAfter(1, [&] { ran = true; });
  EXPECT_NE(old_id, new_id);  // same slot, different generation
  EXPECT_FALSE(s.Cancel(old_id));
  s.RunAll();
  EXPECT_TRUE(ran);
}

TEST(SchedulerTest, CancelReleasesCapturedStateImmediately) {
  // Cancel destroys the captured state right away (matching the old
  // map-erase semantics) even though the heap entry is reclaimed lazily.
  Scheduler s;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  const auto id = s.ScheduleAfter(10, [t = std::move(token)] { (void)*t; });
  EXPECT_FALSE(watch.expired());
  EXPECT_TRUE(s.Cancel(id));
  EXPECT_TRUE(watch.expired());
}

TEST(SchedulerTest, LargeCallablesFallBackToHeap) {
  // Captures beyond TaskFn's inline buffer take the heap path; behavior
  // must be identical.
  Scheduler s;
  std::array<uint64_t, 32> payload{};  // 256 bytes > inline capacity
  payload[0] = 11;
  payload[31] = 22;
  uint64_t sum = 0;
  s.ScheduleAfter(1, [payload, &sum] { sum = payload[0] + payload[31]; });
  s.RunAll();
  EXPECT_EQ(sum, 33u);
}

TEST(SchedulerTest, MoveOnlyCallablesAreSupported) {
  Scheduler s;
  auto box = std::make_unique<int>(41);
  int seen = 0;
  s.ScheduleAfter(1, [b = std::move(box), &seen] { seen = *b + 1; });
  s.RunAll();
  EXPECT_EQ(seen, 42);
}

TEST(SchedulerTest, RandomizedOrderMatchesReferenceSort) {
  // Adversarial mix of times, FIFO ties and cancellations: execution
  // order must equal a stable sort of the surviving events by time.
  Scheduler s;
  std::mt19937_64 rng(12345);
  struct Ref {
    Micros when;
    int tag;
  };
  std::vector<Ref> expected;
  std::vector<Scheduler::TaskId> ids;
  std::vector<int> ran;
  for (int i = 0; i < 1000; ++i) {
    const Micros when = rng() % 64;  // dense times force FIFO tie-breaks
    ids.push_back(s.ScheduleAt(when, [&ran, i] { ran.push_back(i); }));
    expected.push_back(Ref{when, i});
  }
  // Cancel every seventh event.
  for (size_t i = 0; i < ids.size(); i += 7) {
    ASSERT_TRUE(s.Cancel(ids[i]));
  }
  std::erase_if(expected, [&](const Ref& r) { return r.tag % 7 == 0; });
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Ref& a, const Ref& b) { return a.when < b.when; });
  s.RunAll();
  ASSERT_EQ(ran.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(ran[i], expected[i].tag) << "position " << i;
  }
}

}  // namespace
}  // namespace ecdb
