// Unit tests for the discrete-event scheduler.
//
// Every behavioral test runs under both event-queue backends (4-ary heap
// and hierarchical timer wheel): the backends must be observationally
// identical — same (time, insertion-order) execution order, same Cancel
// semantics — so the whole suite is parameterized. The stress tests at the
// bottom additionally run the *same* randomized scenario against both
// backends and require the exact event sequences to match.

#include "sim/scheduler.h"

#include <algorithm>
#include <array>
#include <functional>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace ecdb {
namespace {

class SchedulerBackendTest : public ::testing::TestWithParam<SchedulerBackend> {
 protected:
  SchedulerBackendTest() { s.SetBackend(GetParam()); }
  Scheduler s;
};

TEST_P(SchedulerBackendTest, StartsAtZero) {
  EXPECT_EQ(s.Now(), 0u);
  EXPECT_TRUE(s.Empty());
}

TEST_P(SchedulerBackendTest, RunsEventsInTimeOrder) {
  std::vector<int> order;
  s.ScheduleAt(30, [&] { order.push_back(3); });
  s.ScheduleAt(10, [&] { order.push_back(1); });
  s.ScheduleAt(20, [&] { order.push_back(2); });
  s.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 30u);
}

TEST_P(SchedulerBackendTest, SameTimeEventsRunFifo) {
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  s.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST_P(SchedulerBackendTest, ClockAdvancesToEventTime) {
  Micros seen = 0;
  s.ScheduleAfter(100, [&] { seen = s.Now(); });
  s.RunOne();
  EXPECT_EQ(seen, 100u);
}

TEST_P(SchedulerBackendTest, ScheduleAfterIsRelative) {
  s.ScheduleAt(50, [] {});
  s.RunOne();
  Micros seen = 0;
  s.ScheduleAfter(25, [&] { seen = s.Now(); });
  s.RunOne();
  EXPECT_EQ(seen, 75u);
}

TEST_P(SchedulerBackendTest, PastTimesClampToNow) {
  s.ScheduleAt(100, [] {});
  s.RunOne();
  Micros seen = 0;
  s.ScheduleAt(10, [&] { seen = s.Now(); });  // in the past
  s.RunOne();
  EXPECT_EQ(seen, 100u);
}

TEST_P(SchedulerBackendTest, CancelPreventsExecution) {
  bool ran = false;
  const auto id = s.ScheduleAfter(10, [&] { ran = true; });
  EXPECT_TRUE(s.Cancel(id));
  s.RunAll();
  EXPECT_FALSE(ran);
}

TEST_P(SchedulerBackendTest, CancelReturnsFalseTwice) {
  const auto id = s.ScheduleAfter(10, [] {});
  EXPECT_TRUE(s.Cancel(id));
  EXPECT_FALSE(s.Cancel(id));
}

TEST_P(SchedulerBackendTest, CancelAfterRunReturnsFalse) {
  const auto id = s.ScheduleAfter(10, [] {});
  s.RunAll();
  EXPECT_FALSE(s.Cancel(id));
}

TEST_P(SchedulerBackendTest, RunUntilExecutesOnlyDueEvents) {
  int ran = 0;
  s.ScheduleAt(10, [&] { ran++; });
  s.ScheduleAt(20, [&] { ran++; });
  s.ScheduleAt(30, [&] { ran++; });
  EXPECT_EQ(s.RunUntil(20), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(s.Now(), 20u);
  EXPECT_EQ(s.PendingCount(), 1u);
}

TEST_P(SchedulerBackendTest, RunUntilAdvancesClockWhenIdle) {
  s.RunUntil(500);
  EXPECT_EQ(s.Now(), 500u);
}

TEST_P(SchedulerBackendTest, RunUntilSkipsCancelledHead) {
  bool ran = false;
  const auto id = s.ScheduleAt(10, [] {});
  s.ScheduleAt(20, [&] { ran = true; });
  s.Cancel(id);
  EXPECT_EQ(s.RunUntil(25), 1u);
  EXPECT_TRUE(ran);
}

TEST_P(SchedulerBackendTest, EventsMayScheduleMoreEvents) {
  std::vector<Micros> times;
  std::function<void()> chain = [&] {
    times.push_back(s.Now());
    if (times.size() < 5) s.ScheduleAfter(10, chain);
  };
  s.ScheduleAfter(10, chain);
  s.RunAll();
  EXPECT_EQ(times, (std::vector<Micros>{10, 20, 30, 40, 50}));
}

TEST_P(SchedulerBackendTest, RunAllHonorsEventCap) {
  std::function<void()> forever = [&] { s.ScheduleAfter(1, forever); };
  s.ScheduleAfter(1, forever);
  EXPECT_EQ(s.RunAll(100), 100u);
}

TEST_P(SchedulerBackendTest, RunOneReturnsFalseWhenEmpty) {
  EXPECT_FALSE(s.RunOne());
}

TEST_P(SchedulerBackendTest, PendingCountExcludesCancelled) {
  const auto a = s.ScheduleAfter(1, [] {});
  s.ScheduleAfter(2, [] {});
  EXPECT_EQ(s.PendingCount(), 2u);
  s.Cancel(a);
  EXPECT_EQ(s.PendingCount(), 1u);
}

TEST_P(SchedulerBackendTest, RunOneSkipsCancelledHead) {
  // The cancelled entry sits at the front of the queue; RunOne must
  // discard it and execute the next live event in the same call.
  int ran = 0;
  const auto head = s.ScheduleAt(5, [&] { ran = 1; });
  s.ScheduleAt(10, [&] { ran = 2; });
  s.Cancel(head);
  EXPECT_TRUE(s.RunOne());
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(s.Now(), 10u);
}

TEST_P(SchedulerBackendTest, RunUntilPastDrainedQueueReturnsZero) {
  s.ScheduleAt(10, [] {});
  EXPECT_EQ(s.RunUntil(50), 1u);
  EXPECT_EQ(s.RunUntil(200), 0u);  // nothing left: just advance the clock
  EXPECT_EQ(s.Now(), 200u);
}

TEST_P(SchedulerBackendTest, StaleIdOfRecycledSlotIsNotCancellable) {
  // After an event runs, its storage slot is recycled for the next
  // schedule. The old TaskId must stay dead: cancelling it may not
  // return true and — critically — may not kill the slot's new tenant.
  const auto old_id = s.ScheduleAfter(1, [] {});
  s.RunAll();
  bool ran = false;
  const auto new_id = s.ScheduleAfter(1, [&] { ran = true; });
  EXPECT_NE(old_id, new_id);  // same slot, different generation
  EXPECT_FALSE(s.Cancel(old_id));
  s.RunAll();
  EXPECT_TRUE(ran);
}

TEST_P(SchedulerBackendTest, CancelReleasesCapturedStateImmediately) {
  // Cancel destroys the captured state right away (matching the old
  // map-erase semantics) even though the queue entry is reclaimed lazily.
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  const auto id = s.ScheduleAfter(10, [t = std::move(token)] { (void)*t; });
  EXPECT_FALSE(watch.expired());
  EXPECT_TRUE(s.Cancel(id));
  EXPECT_TRUE(watch.expired());
}

TEST_P(SchedulerBackendTest, LargeCallablesFallBackToHeap) {
  // Captures beyond TaskFn's inline buffer take the heap path; behavior
  // must be identical.
  std::array<uint64_t, 32> payload{};  // 256 bytes > inline capacity
  payload[0] = 11;
  payload[31] = 22;
  uint64_t sum = 0;
  s.ScheduleAfter(1, [payload, &sum] { sum = payload[0] + payload[31]; });
  s.RunAll();
  EXPECT_EQ(sum, 33u);
}

TEST_P(SchedulerBackendTest, MoveOnlyCallablesAreSupported) {
  auto box = std::make_unique<int>(41);
  int seen = 0;
  s.ScheduleAfter(1, [b = std::move(box), &seen] { seen = *b + 1; });
  s.RunAll();
  EXPECT_EQ(seen, 42);
}

TEST_P(SchedulerBackendTest, RandomizedOrderMatchesReferenceSort) {
  // Adversarial mix of times, FIFO ties and cancellations: execution
  // order must equal a stable sort of the surviving events by time.
  std::mt19937_64 rng(12345);
  struct Ref {
    Micros when;
    int tag;
  };
  std::vector<Ref> expected;
  std::vector<Scheduler::TaskId> ids;
  std::vector<int> ran;
  for (int i = 0; i < 1000; ++i) {
    const Micros when = rng() % 64;  // dense times force FIFO tie-breaks
    ids.push_back(s.ScheduleAt(when, [&ran, i] { ran.push_back(i); }));
    expected.push_back(Ref{when, i});
  }
  // Cancel every seventh event.
  for (size_t i = 0; i < ids.size(); i += 7) {
    ASSERT_TRUE(s.Cancel(ids[i]));
  }
  std::erase_if(expected, [&](const Ref& r) { return r.tag % 7 == 0; });
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Ref& a, const Ref& b) { return a.when < b.when; });
  s.RunAll();
  ASSERT_EQ(ran.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(ran[i], expected[i].tag) << "position " << i;
  }
}

TEST_P(SchedulerBackendTest, FarFutureTimesRunInOrder) {
  // Timestamps beyond the wheel's 2^36us top window (overflow territory)
  // interleaved with near ones.
  std::vector<int> order;
  s.ScheduleAt(Micros{1} << 40, [&] { order.push_back(4); });
  s.ScheduleAt(100, [&] { order.push_back(1); });
  s.ScheduleAt((Micros{1} << 40) + 1, [&] { order.push_back(5); });
  s.ScheduleAt(Micros{1} << 37, [&] { order.push_back(3); });
  s.ScheduleAt(Micros{1} << 20, [&] { order.push_back(2); });
  s.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(s.Now(), (Micros{1} << 40) + 1);
}

TEST_P(SchedulerBackendTest, InsertEarlierThanPendingHeadBetweenRuns) {
  // RunUntil stops the clock short of the earliest pending event (which
  // the wheel has already staged); a later insert lands *before* it. The
  // wheel must rewind its anchor; both backends must run 600 before 1000.
  std::vector<Micros> fired;
  s.ScheduleAt(1000, [&] { fired.push_back(s.Now()); });
  EXPECT_EQ(s.RunUntil(500), 0u);
  EXPECT_EQ(s.Now(), 500u);
  s.ScheduleAt(600, [&] { fired.push_back(s.Now()); });
  s.RunAll();
  EXPECT_EQ(fired, (std::vector<Micros>{600, 1000}));
}

INSTANTIATE_TEST_SUITE_P(
    Backends, SchedulerBackendTest,
    ::testing::Values(SchedulerBackend::kHeap, SchedulerBackend::kTimerWheel),
    [](const ::testing::TestParamInfo<SchedulerBackend>& info) {
      return info.param == SchedulerBackend::kHeap ? "Heap" : "TimerWheel";
    });

// ---------------------------------------------------------------------------
// Heap-vs-wheel identity: the same scripted scenario must produce the exact
// same (tag, time) execution sequence under both backends. This is the
// strongest statement of the wheel's correctness — bit-identical order, not
// just sortedness — and what lets the determinism goldens hold under either.
// ---------------------------------------------------------------------------

using Firing = std::pair<int, Micros>;

// Static mix: dense ties, multi-level spreads, overflow times, cancels.
std::vector<Firing> RunStaticMix(SchedulerBackend backend, uint64_t seed) {
  Scheduler s;
  s.SetBackend(backend);
  std::mt19937_64 rng(seed);
  std::vector<Firing> fired;
  std::vector<Scheduler::TaskId> ids;
  for (int i = 0; i < 5000; ++i) {
    Micros when;
    switch (rng() % 4) {
      case 0:
        when = rng() % 64;  // one wheel window: FIFO ties
        break;
      case 1:
        when = rng() % 200000;  // spans wheel levels 0-2
        break;
      case 2:
        when = rng() % (Micros{1} << 30);  // levels 3-5
        break;
      default:
        when = (Micros{1} << 36) + rng() % (Micros{1} << 37);  // overflow
        break;
    }
    ids.push_back(s.ScheduleAt(when, [&fired, i, &s] {
      fired.push_back({i, s.Now()});
    }));
  }
  for (size_t i = 0; i < ids.size(); i += 5) s.Cancel(ids[i]);
  s.RunAll();
  return fired;
}

TEST(SchedulerWheelIdentityTest, StaticMixMatchesHeap) {
  for (uint64_t seed : {1u, 7u, 99u}) {
    const auto heap = RunStaticMix(SchedulerBackend::kHeap, seed);
    const auto wheel = RunStaticMix(SchedulerBackend::kTimerWheel, seed);
    ASSERT_EQ(heap.size(), wheel.size()) << "seed " << seed;
    for (size_t i = 0; i < heap.size(); ++i) {
      ASSERT_EQ(heap[i], wheel[i]) << "seed " << seed << " position " << i;
    }
  }
}

// Dynamic mix: events schedule further events (cascade + same-time append
// paths), interleaved with RunUntil slices and between-slice inserts that
// can land earlier than the staged head (rewind path).
std::vector<Firing> RunDynamicMix(SchedulerBackend backend, uint64_t seed) {
  Scheduler s;
  s.SetBackend(backend);
  std::mt19937_64 rng(seed);
  std::vector<Firing> fired;
  int next_tag = 0;
  std::function<void(int, int)> spawn = [&](int tag, int depth) {
    fired.push_back({tag, s.Now()});
    if (depth <= 0) return;
    const int kids = 1 + static_cast<int>(rng() % 2);
    for (int k = 0; k < kids; ++k) {
      const Micros gap = rng() % (Micros{1} << (6 + rng() % 15));
      const int child = next_tag++;
      s.ScheduleAfter(gap, [&spawn, child, depth] { spawn(child, depth - 1); });
    }
  };
  for (int i = 0; i < 200; ++i) {
    const int root = next_tag++;
    s.ScheduleAt(rng() % 100000,
                 [&spawn, root] { spawn(root, 3); });
  }
  // Advance in slices; occasionally insert an event earlier than anything
  // pending fired so far (relative to the stopped clock).
  Micros until = 0;
  while (!s.Empty()) {
    until += 1 + rng() % 50000;
    s.RunUntil(until);
    if (rng() % 3 == 0) {
      const int tag = next_tag++;
      const Micros when = s.Now() + rng() % 200;
      s.ScheduleAt(when, [&fired, tag, &s] { fired.push_back({tag, s.Now()}); });
    }
  }
  return fired;
}

TEST(SchedulerWheelIdentityTest, DynamicMixMatchesHeap) {
  for (uint64_t seed : {3u, 2024u}) {
    const auto heap = RunDynamicMix(SchedulerBackend::kHeap, seed);
    const auto wheel = RunDynamicMix(SchedulerBackend::kTimerWheel, seed);
    ASSERT_EQ(heap.size(), wheel.size()) << "seed " << seed;
    for (size_t i = 0; i < heap.size(); ++i) {
      ASSERT_EQ(heap[i], wheel[i]) << "seed " << seed << " position " << i;
    }
  }
}

}  // namespace
}  // namespace ecdb
