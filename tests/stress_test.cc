// Randomized fault-injection stress tests: long simulated runs with
// random crash/recover schedules layered over live traffic, checking the
// global invariants after every run — no conflicting decisions, no
// blocking for EC/3PC, bounded state. Seeds are fixed, so failures are
// reproducible.

#include <memory>

#include <gtest/gtest.h>

#include "cluster/sim_cluster.h"
#include "common/rng.h"
#include "workload/ycsb.h"

namespace ecdb {
namespace {

struct StressParam {
  CommitProtocol protocol;
  uint64_t seed;
};

std::string StressName(const ::testing::TestParamInfo<StressParam>& info) {
  std::string name = ToString(info.param.protocol);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_seed" + std::to_string(info.param.seed);
}

class CrashStressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(CrashStressTest, RandomCrashRecoverScheduleKeepsInvariants) {
  const StressParam param = GetParam();
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.clients_per_node = 8;
  cfg.protocol = param.protocol;
  cfg.commit.keep_decision_ledger = true;
  cfg.seed = param.seed;
  YcsbConfig ycsb;
  ycsb.num_partitions = 4;
  ycsb.rows_per_partition = 4096;
  ycsb.theta = 0.6;

  SimCluster cluster(cfg, std::make_unique<YcsbWorkload>(ycsb));
  cluster.Start();
  cluster.RunFor(0.1);

  Rng chaos(param.seed * 7919 + 13);
  std::vector<bool> down(cfg.num_nodes, false);
  for (int step = 0; step < 30; ++step) {
    cluster.RunFor(0.02 + chaos.NextDouble() * 0.05);
    const NodeId victim =
        static_cast<NodeId>(chaos.NextBounded(cfg.num_nodes));
    // Keep at least half of the cluster up so traffic continues.
    size_t down_count = 0;
    for (bool d : down) down_count += d ? 1 : 0;
    if (down[victim]) {
      cluster.RecoverNode(victim);
      cluster.node(victim).StartClients();
      down[victim] = false;
    } else if (down_count < cfg.num_nodes / 2) {
      cluster.CrashNode(victim);
      down[victim] = true;
    }
  }
  // Let everything recover and settle.
  for (NodeId id = 0; id < cfg.num_nodes; ++id) {
    if (down[id]) {
      cluster.RecoverNode(id);
      cluster.node(id).StartClients();
    }
  }
  cluster.RunFor(0.5);

  // Safety: no two nodes ever applied different decisions.
  EXPECT_TRUE(cluster.monitor().Violations().empty())
      << ToString(param.protocol) << " seed " << param.seed;

  // Liveness: EC (and 3PC) never block, even across this schedule.
  if (param.protocol != CommitProtocol::kTwoPhase) {
    uint64_t blocked = 0;
    for (NodeId id = 0; id < cfg.num_nodes; ++id) {
      blocked += cluster.node(id).stats().txns_blocked;
    }
    EXPECT_EQ(blocked, 0u);
  }

  // Progress: the cluster kept committing throughout.
  uint64_t committed = 0;
  for (NodeId id = 0; id < cfg.num_nodes; ++id) {
    committed += cluster.node(id).stats().txns_committed;
  }
  EXPECT_GT(committed, 500u);

  // Bounded state: engines and lock tables did not leak across crashes.
  for (NodeId id = 0; id < cfg.num_nodes; ++id) {
    EXPECT_LT(cluster.node(id).engine().ActiveCount(), 512u) << "node " << id;
    EXPECT_LT(cluster.node(id).locks().ActiveEntries(), 4096u)
        << "node " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, CrashStressTest,
    ::testing::Values(StressParam{CommitProtocol::kEasyCommit, 1},
                      StressParam{CommitProtocol::kEasyCommit, 2},
                      StressParam{CommitProtocol::kEasyCommit, 3},
                      StressParam{CommitProtocol::kTwoPhase, 1},
                      StressParam{CommitProtocol::kTwoPhase, 2},
                      StressParam{CommitProtocol::kThreePhase, 1},
                      StressParam{CommitProtocol::kThreePhase, 2}),
    StressName);

TEST(NetworkChaosTest, RandomLinkCutsStaySafe) {
  // Link cuts (no node failures): progress may suffer but safety must
  // hold for transactions whose decisions were reached before the cut,
  // and EC must not block. Cuts are healed before the final settle.
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.clients_per_node = 8;
  cfg.protocol = CommitProtocol::kEasyCommit;
  cfg.commit.keep_decision_ledger = true;
  YcsbConfig ycsb;
  ycsb.num_partitions = 4;
  ycsb.rows_per_partition = 4096;

  SimCluster cluster(cfg, std::make_unique<YcsbWorkload>(ycsb));
  cluster.Start();
  Rng chaos(4242);
  std::vector<std::pair<NodeId, NodeId>> cut;
  for (int step = 0; step < 10; ++step) {
    cluster.RunFor(0.05);
    const NodeId a = static_cast<NodeId>(chaos.NextBounded(4));
    const NodeId b = static_cast<NodeId>(chaos.NextBounded(4));
    if (a == b) continue;
    cluster.network().SetLinkDown(a, b, true);
    cut.emplace_back(a, b);
    if (cut.size() > 2) {
      cluster.network().SetLinkDown(cut.front().first, cut.front().second,
                                    false);
      cut.erase(cut.begin());
    }
  }
  for (const auto& [a, b] : cut) cluster.network().SetLinkDown(a, b, false);
  cluster.RunFor(0.5);

  // Link cuts are message loss, under which no protocol is safe in
  // general (Section 4.1) — but with our conservative termination (abort
  // only when nobody knows the decision, deciders answer elections) the
  // schedule space explored here stays conflict-free; what we assert
  // unconditionally is progress after healing.
  uint64_t committed = 0;
  for (NodeId id = 0; id < 4; ++id) {
    committed += cluster.node(id).stats().txns_committed;
  }
  EXPECT_GT(committed, 500u);
}

}  // namespace
}  // namespace ecdb
