// Tests for the presumed-abort (2PC-PA) and presumed-commit (2PC-PC)
// variants: log-write and ack elisions, the no-record-means-abort
// presumption, and safety under the same failure sweeps as plain 2PC.

#include <algorithm>

#include <gtest/gtest.h>

#include "protocol_harness.h"

namespace ecdb {
namespace testing {
namespace {

NetworkConfig QuietNet() {
  NetworkConfig net;
  net.base_latency_us = 100;
  net.jitter_us = 0;
  return net;
}

// ---------------------------------------------------------------------------
// Presumed abort
// ---------------------------------------------------------------------------

TEST(PresumedAbortTest, CommitPathMatchesTwoPc) {
  ProtocolTestbed bed(CommitProtocol::kTwoPhasePresumedAbort, 3, QuietNet());
  const TxnId txn = bed.StartAll();
  bed.Settle();
  for (NodeId id = 0; id < 3; ++id) {
    EXPECT_EQ(*bed.host(id).applied(txn), Decision::kCommit);
  }
  // Commits are acked (that is what makes the presumption sound).
  EXPECT_EQ(bed.network().stats().per_type.at(MsgType::kAck), 2u);
}

TEST(PresumedAbortTest, AbortPathWritesNoLogRecords) {
  ProtocolTestbed bed(CommitProtocol::kTwoPhasePresumedAbort, 3, QuietNet());
  bed.host(1).set_vote(Decision::kAbort);
  const TxnId txn = bed.StartAll();
  bed.Settle();
  for (NodeId id = 0; id < 3; ++id) {
    EXPECT_EQ(*bed.host(id).applied(txn), Decision::kAbort) << "node " << id;
  }
  // The whole point of PA: aborts leave no trace in any log.
  EXPECT_TRUE(bed.host(0).LogTypes(txn).empty());
  EXPECT_TRUE(bed.host(1).LogTypes(txn).empty());
  // Cohort 2 voted commit (logged ready) before learning the abort; the
  // ready record stays but no abort records follow.
  const auto log2 = bed.host(2).LogTypes(txn);
  EXPECT_EQ(log2, (std::vector<LogRecordType>{LogRecordType::kReady}));
  // And nobody acks an abort under PA.
  EXPECT_EQ(bed.network().stats().per_type.count(MsgType::kAck), 0u);
}

TEST(PresumedAbortTest, CommitStillLogsEverywhere) {
  ProtocolTestbed bed(CommitProtocol::kTwoPhasePresumedAbort, 3, QuietNet());
  const TxnId txn = bed.StartAll();
  bed.Settle();
  EXPECT_EQ(bed.host(0).LogTypes(txn),
            (std::vector<LogRecordType>{LogRecordType::kCommitDecision,
                                        LogRecordType::kTransactionCommit}));
  EXPECT_EQ(bed.host(1).LogTypes(txn),
            (std::vector<LogRecordType>{LogRecordType::kReady,
                                        LogRecordType::kTransactionCommit}));
}

TEST(PresumedAbortTest, UnknownTxnQueriesAreAnsweredAbort) {
  // A cohort stuck in READY asks about a transaction nobody has a record
  // of: under PA the *absence* of a record is the answer (abort), so the
  // cohort unblocks — plain 2PC would block on the same schedule.
  ProtocolTestbed bed(CommitProtocol::kTwoPhasePresumedAbort, 3, QuietNet());
  const TxnId txn = MakeTxnId(0, 424242);  // no coordinator state exists
  bed.host(1).engine().ExpectPrepare(txn, 0, {0, 1, 2});
  Message prepare;
  prepare.type = MsgType::kPrepare;
  prepare.src = 0;
  prepare.dst = 1;
  prepare.txn = txn;
  prepare.participants = {0, 1, 2};
  bed.host(1).engine().OnMessage(prepare);  // votes, enters READY
  bed.Settle(200'000);
  ASSERT_TRUE(bed.host(1).applied(txn).has_value());
  EXPECT_EQ(*bed.host(1).applied(txn), Decision::kAbort);
  EXPECT_EQ(bed.host(1).blocked_count(), 0u);

  // Contrast: plain 2PC blocks on the identical schedule.
  ProtocolTestbed bed2(CommitProtocol::kTwoPhase, 3, QuietNet());
  bed2.host(1).engine().ExpectPrepare(txn, 0, {0, 1, 2});
  prepare.participants = {0, 1, 2};
  bed2.host(1).engine().OnMessage(prepare);
  bed2.Settle(200'000);
  EXPECT_FALSE(bed2.host(1).applied(txn).has_value());
  EXPECT_GT(bed2.host(1).blocked_count(), 0u);
}

TEST(PresumedAbortTest, SafeUnderSingleCrashSweep) {
  // Same sweep the plain protocols get: crash each node at each delivery.
  for (NodeId node = 0; node < 3; ++node) {
    for (uint64_t at = 1; at <= 20; ++at) {
      ProtocolTestbed bed(CommitProtocol::kTwoPhasePresumedAbort, 3,
                          QuietNet());
      uint64_t counter = 0;
      bed.network().SetDeliveryInterceptor([&](const Message& msg) {
        counter++;
        if (counter == at) {
          bed.network().CrashNode(node);
          if (msg.dst == node) return false;
        }
        return true;
      });
      bed.StartAll();
      bed.Settle(200'000);
      EXPECT_TRUE(bed.monitor().Violations().empty())
          << "crash " << node << " at " << at;
    }
  }
}

// ---------------------------------------------------------------------------
// Presumed commit
// ---------------------------------------------------------------------------

TEST(PresumedCommitTest, CommitPathSkipsAcks) {
  ProtocolTestbed bed(CommitProtocol::kTwoPhasePresumedCommit, 4, QuietNet());
  const TxnId txn = bed.StartAll();
  bed.Settle();
  for (NodeId id = 0; id < 4; ++id) {
    EXPECT_EQ(*bed.host(id).applied(txn), Decision::kCommit);
    EXPECT_TRUE(bed.host(id).cleaned(txn));
  }
  // Commits are presumed: no acknowledgment round at all.
  EXPECT_EQ(bed.network().stats().per_type.count(MsgType::kAck), 0u);
}

TEST(PresumedCommitTest, AbortPathStillAcks) {
  ProtocolTestbed bed(CommitProtocol::kTwoPhasePresumedCommit, 3, QuietNet());
  bed.host(2).set_vote(Decision::kAbort);
  const TxnId txn = bed.StartAll();
  bed.Settle();
  for (NodeId id = 0; id < 3; ++id) {
    EXPECT_EQ(*bed.host(id).applied(txn), Decision::kAbort);
  }
  // Cohort 1 (which voted commit and was told to abort) must ack.
  EXPECT_EQ(bed.network().stats().per_type.at(MsgType::kAck), 1u);
}

TEST(PresumedCommitTest, CoordinatorLogsCollectingRecord) {
  // PC soundness requires the coordinator to persist the participant set
  // *before* preparing (the begin_commit record).
  ProtocolTestbed bed(CommitProtocol::kTwoPhasePresumedCommit, 3, QuietNet());
  const TxnId txn = bed.StartAll();
  bed.Settle();
  const auto log = bed.host(0).LogTypes(txn);
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.front(), LogRecordType::kBeginCommit);
}

TEST(PresumedCommitTest, SafeUnderSingleCrashSweep) {
  for (NodeId node = 0; node < 3; ++node) {
    for (uint64_t at = 1; at <= 20; ++at) {
      ProtocolTestbed bed(CommitProtocol::kTwoPhasePresumedCommit, 3,
                          QuietNet());
      uint64_t counter = 0;
      bed.network().SetDeliveryInterceptor([&](const Message& msg) {
        counter++;
        if (counter == at) {
          bed.network().CrashNode(node);
          if (msg.dst == node) return false;
        }
        return true;
      });
      bed.StartAll();
      bed.Settle(200'000);
      EXPECT_TRUE(bed.monitor().Violations().empty())
          << "crash " << node << " at " << at;
    }
  }
}

TEST(PresumedVariantsTest, BothStillBlockLikeTwoPc) {
  // PA/PC optimize logging and acknowledgments; they do NOT fix 2PC's
  // blocking problem — the paper's motivation stands against them too.
  for (CommitProtocol protocol : {CommitProtocol::kTwoPhasePresumedAbort,
                                  CommitProtocol::kTwoPhasePresumedCommit}) {
    ProtocolTestbed bed(protocol, 4, QuietNet());
    const TxnId txn = MakeTxnId(0, 1);
    std::vector<NodeId> participants{0, 1, 2, 3};
    for (NodeId id = 1; id < 4; ++id) {
      bed.host(id).engine().ExpectPrepare(txn, 0, participants);
    }
    bed.network().SetSendFilter([&bed](const Message& msg) {
      const bool decision = msg.type == MsgType::kGlobalCommit ||
                            msg.type == MsgType::kGlobalAbort;
      if (decision && msg.src == 0 && msg.dst != 1) {
        bed.network().CrashNode(0);
        return false;
      }
      return true;
    });
    bed.network().SetDeliveryInterceptor([&bed](const Message& msg) {
      const bool decision = msg.type == MsgType::kGlobalCommit ||
                            msg.type == MsgType::kGlobalAbort;
      if (decision && msg.src == 0 && msg.dst == 1) {
        bed.network().CrashNode(1);
        return false;
      }
      return true;
    });
    bed.host(0).engine().StartCommit(txn, participants, Decision::kCommit);
    bed.Settle(200'000);
    EXPECT_GT(bed.monitor().blocked_reports(), 0u)
        << ToString(protocol) << " should block like plain 2PC";
    EXPECT_TRUE(bed.monitor().Violations().empty());
  }
}

}  // namespace
}  // namespace testing
}  // namespace ecdb
