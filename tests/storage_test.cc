// Unit tests for the in-memory partitioned row store.

#include "storage/table.h"

#include <gtest/gtest.h>

namespace ecdb {
namespace {

TEST(TableTest, InsertAndGet) {
  Table t(0, "t", 4);
  ASSERT_TRUE(t.Insert(10).ok());
  auto row = t.Get(10);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value()->key, 10u);
  EXPECT_EQ(row.value()->columns.size(), 4u);
  EXPECT_EQ(row.value()->version, 0u);
}

TEST(TableTest, DuplicateInsertFails) {
  Table t(0, "t", 2);
  ASSERT_TRUE(t.Insert(1).ok());
  EXPECT_EQ(t.Insert(1).code(), Code::kAlreadyExists);
  EXPECT_EQ(t.size(), 1u);
}

TEST(TableTest, GetMissingIsNotFound) {
  Table t(0, "t", 2);
  EXPECT_TRUE(t.Get(99).status().IsNotFound());
}

TEST(TableTest, InsertWithValuesPadsToSchema) {
  Table t(0, "t", 4);
  ASSERT_TRUE(t.InsertWith(5, {7, 8}).ok());
  auto row = t.Get(5);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value()->columns, (std::vector<uint64_t>{7, 8, 0, 0}));
}

TEST(TableTest, InsertWithValuesTruncatesToSchema) {
  Table t(0, "t", 2);
  ASSERT_TRUE(t.InsertWith(5, {1, 2, 3, 4}).ok());
  EXPECT_EQ(t.Get(5).value()->columns.size(), 2u);
}

TEST(TableTest, MutableUpdatePersists) {
  Table t(0, "t", 2);
  ASSERT_TRUE(t.Insert(3).ok());
  auto row = t.GetMutable(3);
  ASSERT_TRUE(row.ok());
  row.value()->columns[0] = 42;
  row.value()->version++;
  EXPECT_EQ(t.Get(3).value()->columns[0], 42u);
  EXPECT_EQ(t.Get(3).value()->version, 1u);
}

TEST(TableTest, EraseRemovesRow) {
  Table t(0, "t", 2);
  ASSERT_TRUE(t.Insert(3).ok());
  EXPECT_TRUE(t.Erase(3).ok());
  EXPECT_TRUE(t.Get(3).status().IsNotFound());
  EXPECT_TRUE(t.Erase(3).IsNotFound());
}

TEST(TableTest, Metadata) {
  Table t(9, "usertable", 10);
  EXPECT_EQ(t.id(), 9u);
  EXPECT_EQ(t.name(), "usertable");
  EXPECT_EQ(t.num_columns(), 10u);
}

TEST(PartitionStoreTest, CreateAndGetTable) {
  PartitionStore store(3);
  ASSERT_TRUE(store.CreateTable(0, "a", 2).ok());
  ASSERT_TRUE(store.CreateTable(1, "b", 3).ok());
  EXPECT_EQ(store.id(), 3u);
  EXPECT_EQ(store.num_tables(), 2u);
  ASSERT_NE(store.GetTable(1), nullptr);
  EXPECT_EQ(store.GetTable(1)->name(), "b");
  EXPECT_EQ(store.GetTable(7), nullptr);
}

TEST(PartitionStoreTest, DuplicateTableIdFails) {
  PartitionStore store(0);
  ASSERT_TRUE(store.CreateTable(0, "a", 2).ok());
  EXPECT_EQ(store.CreateTable(0, "b", 2).code(), Code::kAlreadyExists);
}

TEST(PartitionStoreTest, ConstAccess) {
  PartitionStore store(0);
  ASSERT_TRUE(store.CreateTable(0, "a", 2).ok());
  const PartitionStore& cref = store;
  EXPECT_NE(cref.GetTable(0), nullptr);
  EXPECT_EQ(cref.GetTable(1), nullptr);
}

TEST(KeyPartitionerTest, ModuloRouting) {
  KeyPartitioner p(8);
  EXPECT_EQ(p.num_partitions(), 8u);
  EXPECT_EQ(p.PartitionOf(0), 0u);
  EXPECT_EQ(p.PartitionOf(7), 7u);
  EXPECT_EQ(p.PartitionOf(8), 0u);
  EXPECT_EQ(p.PartitionOf(8001), 1u);
}

TEST(KeyPartitionerTest, SinglePartition) {
  KeyPartitioner p(1);
  for (Key k = 0; k < 100; ++k) EXPECT_EQ(p.PartitionOf(k), 0u);
}

}  // namespace
}  // namespace ecdb
