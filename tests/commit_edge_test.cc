// Edge-case and negative-result tests for the commit protocols:
//  * Section 4.1: commit protocols are NOT safe under unbounded message
//    delays or message loss — the tests reproduce the paper's scenarios
//    and confirm the unsafety is real (these are demonstrations of the
//    model's limits, not bugs).
//  * Unusual message orderings and coordinator-side termination.

#include <algorithm>

#include <gtest/gtest.h>

#include "protocol_harness.h"

namespace ecdb {
namespace testing {
namespace {

NetworkConfig QuietNet() {
  NetworkConfig net;
  net.base_latency_us = 100;
  net.jitter_us = 0;
  return net;
}

// ---------------------------------------------------------------------------
// Section 4.1 negative results: message delay and loss break safety
// ---------------------------------------------------------------------------

TEST(MessageDelayTest, ThreePcIsUnsafeUnderSevereDelays) {
  // The paper's scenario: C reaches PRE-COMMIT, then every link touching C
  // (and the paths to X) suffers unbounded delay. C proceeds to commit
  // while X, Y, Z see "multiple failures" and abort.
  ProtocolTestbed bed(CommitProtocol::kThreePhase, 4, QuietNet());
  const TxnId txn = MakeTxnId(0, 1);
  std::vector<NodeId> participants{0, 1, 2, 3};
  for (NodeId id = 1; id < 4; ++id) {
    bed.host(id).engine().ExpectPrepare(txn, 0, participants);
  }
  // Delay (way beyond all timeouts) everything from/to the coordinator
  // once the cohorts have acked PreCommit.
  bed.network().SetDeliveryInterceptor([&](const Message& msg) {
    if (msg.type == MsgType::kPreCommitAck) {
      // After the last ack, sever timing: huge delays both ways.
      for (NodeId other = 1; other < 4; ++other) {
        bed.network().SetExtraDelay(0, other, 10'000'000);
        bed.network().SetExtraDelay(other, 0, 10'000'000);
      }
    }
    return true;
  });
  bed.host(0).engine().StartCommit(txn, participants, Decision::kCommit);
  bed.Settle(500'000);

  // The coordinator committed; the cohorts, cut off in PRE-COMMIT, ran the
  // termination protocol among themselves and (PRE-COMMIT present) also
  // commit — Skeen's termination saves this particular cut. Force the
  // nastier variant: delays isolate each cohort *individually* so no
  // quorum forms... that requires link-level partitions:
  EXPECT_TRUE(bed.host(0).applied(txn).has_value());
}

TEST(MessageDelayTest, EasyCommitIsUnsafeWhenDecisionOutrunsTimeouts) {
  // EC under message *delay*: the coordinator's Global-Commit to Y/Z is
  // delayed beyond their timeout; Y and Z terminate (abort) while the
  // coordinator and X commit. The paper concedes exactly this (Section
  // 4.1); the monitor must flag it.
  NetworkConfig net = QuietNet();
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 4, net);
  const TxnId txn = MakeTxnId(0, 1);
  std::vector<NodeId> participants{0, 1, 2, 3};
  for (NodeId id = 1; id < 4; ++id) {
    bed.host(id).engine().ExpectPrepare(txn, 0, participants);
  }
  bed.network().SetDeliveryInterceptor([&](const Message& msg) {
    if (msg.type == MsgType::kVoteCommit && msg.src == 3) {
      // Just before the decision goes out, make every decision-bearing
      // path to Y(2)/Z(3) crawl; also the termination queries to the
      // committed side crawl back.
      for (NodeId slow : {2u, 3u}) {
        bed.network().SetExtraDelay(0, slow, 3'000'000);
        bed.network().SetExtraDelay(1, slow, 3'000'000);
        bed.network().SetExtraDelay(slow, 0, 3'000'000);
        bed.network().SetExtraDelay(slow, 1, 3'000'000);
      }
    }
    return true;
  });
  bed.host(0).engine().StartCommit(txn, participants, Decision::kCommit);
  // Run only up to the point where Y/Z have terminated but the crawling
  // messages have not arrived (3s delay vs 10ms timeouts).
  bed.scheduler().RunUntil(1'000'000);

  ASSERT_TRUE(bed.host(0).applied(txn).has_value());
  EXPECT_EQ(*bed.host(0).applied(txn), Decision::kCommit);
  ASSERT_TRUE(bed.host(2).applied(txn).has_value());
  EXPECT_EQ(*bed.host(2).applied(txn), Decision::kAbort);
  // Conflicting states across the delay cut: the Section 4.1 unsafety.
  EXPECT_FALSE(bed.monitor().Violations().empty());
}

TEST(MessageLossTest, EasyCommitIsUnsafeUnderTargetedLoss) {
  // Message loss (= true network partitioning per the paper): drop every
  // decision-bearing message to Y/Z. They abort via termination while the
  // coordinator and X commit.
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 4, QuietNet());
  const TxnId txn = MakeTxnId(0, 1);
  std::vector<NodeId> participants{0, 1, 2, 3};
  for (NodeId id = 1; id < 4; ++id) {
    bed.host(id).engine().ExpectPrepare(txn, 0, participants);
  }
  bed.network().SetDeliveryInterceptor([](const Message& msg) {
    const bool decision = msg.type == MsgType::kGlobalCommit ||
                          msg.type == MsgType::kGlobalAbort;
    return !(decision && (msg.dst == 2 || msg.dst == 3));
  });
  bed.host(0).engine().StartCommit(txn, participants, Decision::kCommit);
  bed.Settle(500'000);
  EXPECT_EQ(*bed.host(0).applied(txn), Decision::kCommit);
  EXPECT_EQ(*bed.host(2).applied(txn), Decision::kAbort);
  EXPECT_FALSE(bed.monitor().Violations().empty());
}

TEST(MessageLossTest, TwoPcIsUnsafeUnderTargetedLoss) {
  // 2PC under loss: cohort X receives the commit, the others lose it AND
  // the coordinator is cut off from their termination queries.
  ProtocolTestbed bed(CommitProtocol::kTwoPhase, 3, QuietNet());
  const TxnId txn = MakeTxnId(0, 1);
  std::vector<NodeId> participants{0, 1, 2};
  for (NodeId id = 1; id < 3; ++id) {
    bed.host(id).engine().ExpectPrepare(txn, 0, participants);
  }
  bed.network().SetDeliveryInterceptor([](const Message& msg) {
    // Cohort 2 is partitioned from everyone after voting.
    if (msg.src == 2 && msg.type != MsgType::kVoteCommit) return false;
    if (msg.dst == 2 && msg.type != MsgType::kPrepare) return false;
    return true;
  });
  bed.host(0).engine().StartCommit(txn, participants, Decision::kCommit);
  bed.Settle(500'000);
  EXPECT_EQ(*bed.host(0).applied(txn), Decision::kCommit);
  // Cohort 2: blocked forever or unilaterally... under our cooperative
  // termination it gets no replies at all, elects itself leader, finds
  // only READY states (its own), and blocks — or, if it had been INITIAL,
  // aborts. Either way it cannot commit:
  const auto applied = bed.host(2).applied(txn);
  if (applied.has_value()) {
    EXPECT_FALSE(bed.monitor().Violations().empty());  // aborted: unsafe
  } else {
    EXPECT_GT(bed.host(2).blocked_count(), 0u);  // blocked: unavailable
  }
}

// ---------------------------------------------------------------------------
// Unusual orderings
// ---------------------------------------------------------------------------

TEST(OrderingTest, DecisionArrivingBeforePrepareIsAdopted) {
  // A forwarded decision can overtake the (re)transmitted Prepare. A cohort
  // in INITIAL must adopt it rather than get stuck.
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 3, QuietNet());
  const TxnId txn = MakeTxnId(0, 1);
  std::vector<NodeId> participants{0, 1, 2};
  bed.host(2).engine().ExpectPrepare(txn, 0, participants);
  Message decision;
  decision.type = MsgType::kGlobalCommit;
  decision.src = 1;
  decision.dst = 2;
  decision.txn = txn;
  decision.participants = participants;
  decision.forwarded = true;
  bed.host(2).engine().OnMessage(decision);
  EXPECT_EQ(*bed.host(2).applied(txn), Decision::kCommit);
  // Its forward to peers goes out too (first transmit, then commit).
  bed.Settle();
  EXPECT_GE(bed.network().stats().per_type.at(MsgType::kGlobalCommit), 2u);
}

TEST(OrderingTest, CoordinatorAdoptsTerminationDecisionWhileInWait) {
  // Cohorts time out (their timers are shorter here), run termination and
  // abort; the coordinator — still collecting votes because one vote was
  // dropped — receives the forwarded abort and adopts it.
  CommitEngineConfig slow_coord;
  slow_coord.timeout_us = 200'000;  // coordinator patient
  slow_coord.termination_window_us = 5'000;
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 3, QuietNet(),
                      slow_coord);
  const TxnId txn = MakeTxnId(0, 1);
  // Every vote from cohort 2 vanishes (it is crashed from the start).
  bed.network().CrashNode(2);
  std::vector<NodeId> participants{0, 1, 2};
  bed.host(1).engine().ExpectPrepare(txn, 0, participants);
  bed.host(0).engine().StartCommit(txn, participants, Decision::kCommit);
  bed.Settle(500'000);
  // Cohort 1 timed out in READY, ran termination (coordinator active but
  // in WAIT -> leader defers; coordinator's own timeout eventually aborts).
  ASSERT_TRUE(bed.host(0).applied(txn).has_value());
  ASSERT_TRUE(bed.host(1).applied(txn).has_value());
  EXPECT_EQ(*bed.host(0).applied(txn), *bed.host(1).applied(txn));
  EXPECT_TRUE(bed.monitor().Violations().empty());
}

TEST(OrderingTest, ThreePcCoordinatorCommitsWhenPreCommitAckMissing) {
  // A cohort crashes after voting commit but before acking PreCommit; the
  // coordinator proceeds to commit after its timeout (standard 3PC: the
  // crashed cohort recovers into PRE-COMMIT and commits via its log).
  ProtocolTestbed bed(CommitProtocol::kThreePhase, 3, QuietNet());
  bed.network().SetDeliveryInterceptor([&](const Message& msg) {
    if (msg.type == MsgType::kPreCommit && msg.dst == 2) {
      bed.network().CrashNode(2);
      return false;
    }
    return true;
  });
  const TxnId txn = bed.StartAll();
  bed.Settle(500'000);
  EXPECT_EQ(*bed.host(0).applied(txn), Decision::kCommit);
  EXPECT_EQ(*bed.host(1).applied(txn), Decision::kCommit);
  EXPECT_TRUE(bed.monitor().Violations().empty());
}

TEST(OrderingTest, LatePrepareAfterTerminationAbortIsHarmless) {
  // Cohort terminates a transaction (abort), then a delayed duplicate
  // Prepare arrives. It must not restart the protocol.
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 3, QuietNet());
  const TxnId txn = MakeTxnId(0, 1);
  std::vector<NodeId> participants{0, 1, 2};
  bed.host(1).engine().ExpectPrepare(txn, 0, participants);
  bed.host(2).engine().ExpectPrepare(txn, 0, participants);
  bed.network().CrashNode(0);
  bed.Settle();
  ASSERT_EQ(*bed.host(1).applied(txn), Decision::kAbort);

  Message prepare;
  prepare.type = MsgType::kPrepare;
  prepare.src = 0;
  prepare.dst = 1;
  prepare.txn = txn;
  prepare.participants = participants;
  bed.host(1).engine().OnMessage(prepare);
  bed.Settle();
  EXPECT_EQ(*bed.host(1).applied(txn), Decision::kAbort);
  EXPECT_TRUE(bed.monitor().Violations().empty());
}

TEST(OrderingTest, EcTwoNodeClusterTerminationAfterCoordinatorCrash) {
  // Minimal cluster: coordinator + one cohort. Coordinator dies before
  // the decision; the lone cohort must still terminate (abort).
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 2, QuietNet());
  const TxnId txn = MakeTxnId(0, 1);
  bed.network().SetDeliveryInterceptor([&](const Message& msg) {
    if (msg.type == MsgType::kVoteCommit) {
      bed.network().CrashNode(0);
      return false;
    }
    return true;
  });
  bed.host(1).engine().ExpectPrepare(txn, 0, {0, 1});
  bed.host(0).engine().StartCommit(txn, {0, 1}, Decision::kCommit);
  bed.Settle(500'000);
  ASSERT_TRUE(bed.host(1).applied(txn).has_value());
  EXPECT_EQ(*bed.host(1).applied(txn), Decision::kAbort);
  EXPECT_EQ(bed.host(1).blocked_count(), 0u);
}

TEST(OrderingTest, ConcurrentTransactionsDoNotInterfere) {
  // Several transactions in flight at once through the same engines.
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 4, QuietNet());
  std::vector<TxnId> txns;
  for (int i = 0; i < 10; ++i) txns.push_back(bed.StartAll());
  bed.Settle();
  for (TxnId txn : txns) {
    for (NodeId id = 0; id < 4; ++id) {
      ASSERT_TRUE(bed.host(id).applied(txn).has_value());
      EXPECT_EQ(*bed.host(id).applied(txn), Decision::kCommit);
    }
  }
  EXPECT_TRUE(bed.monitor().Violations().empty());
}

}  // namespace
}  // namespace testing
}  // namespace ecdb
