// Tests for the threaded-runtime message channel and router.

#include "net/channel.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

namespace ecdb {
namespace {

using namespace std::chrono_literals;

Message Make(NodeId src, NodeId dst) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.txn = MakeTxnId(src, 1);
  return m;
}

TEST(MessageChannelTest, PushPop) {
  MessageChannel ch;
  ch.Push(Make(0, 1));
  Message out;
  ASSERT_TRUE(ch.Pop(&out, 100ms));
  EXPECT_EQ(out.src, 0u);
  EXPECT_EQ(ch.Size(), 0u);
}

TEST(MessageChannelTest, PopTimesOutWhenEmpty) {
  MessageChannel ch;
  Message out;
  EXPECT_FALSE(ch.Pop(&out, 10ms));
}

TEST(MessageChannelTest, TryPop) {
  MessageChannel ch;
  Message out;
  EXPECT_FALSE(ch.TryPop(&out));
  ch.Push(Make(0, 1));
  EXPECT_TRUE(ch.TryPop(&out));
  EXPECT_FALSE(ch.TryPop(&out));
}

TEST(MessageChannelTest, FifoOrder) {
  MessageChannel ch;
  for (uint32_t i = 0; i < 10; ++i) {
    Message m = Make(i, 0);
    ch.Push(std::move(m));
  }
  Message out;
  for (uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(ch.TryPop(&out));
    EXPECT_EQ(out.src, i);
  }
}

TEST(MessageChannelTest, CloseWakesBlockedConsumer) {
  MessageChannel ch;
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    Message out;
    ch.Pop(&out, 5000ms);
    returned = true;
  });
  std::this_thread::sleep_for(20ms);
  ch.Close();
  consumer.join();
  EXPECT_TRUE(returned);
}

TEST(MessageChannelTest, PushAfterCloseIsDropped) {
  MessageChannel ch;
  ch.Close();
  ch.Push(Make(0, 1));
  EXPECT_EQ(ch.Size(), 0u);
}

TEST(MessageChannelTest, ConcurrentProducersDeliverEverything) {
  MessageChannel ch;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 1000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ch.Push(Make(static_cast<NodeId>(p), 0));
      }
    });
  }
  int received = 0;
  Message out;
  while (received < kProducers * kPerProducer) {
    if (ch.Pop(&out, 1000ms)) received++;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(received, kProducers * kPerProducer);
}

TEST(ThreadNetworkTest, RoutesByDestination) {
  ThreadNetwork net(3);
  net.Send(Make(0, 2));
  Message out;
  ASSERT_TRUE(net.channel(2).Pop(&out, 100ms));
  EXPECT_EQ(out.src, 0u);
  EXPECT_EQ(net.channel(1).Size(), 0u);
}

TEST(ThreadNetworkTest, CrashedNodesDropTraffic) {
  ThreadNetwork net(3);
  net.CrashNode(1);
  net.Send(Make(0, 1));  // to crashed
  net.Send(Make(1, 2));  // from crashed
  EXPECT_EQ(net.channel(1).Size(), 0u);
  EXPECT_EQ(net.channel(2).Size(), 0u);
  EXPECT_TRUE(net.IsCrashed(1));
}

TEST(ThreadNetworkTest, RecoverRestoresDelivery) {
  ThreadNetwork net(2);
  net.CrashNode(1);
  net.RecoverNode(1);
  net.Send(Make(0, 1));
  EXPECT_EQ(net.channel(1).Size(), 1u);
}

TEST(ThreadNetworkTest, OutOfRangeDestinationIsDropped) {
  ThreadNetwork net(2);
  net.Send(Make(0, 9));  // must not crash
}

TEST(ThreadNetworkTest, ShutdownClosesAllChannels) {
  ThreadNetwork net(2);
  net.Shutdown();
  Message out;
  EXPECT_FALSE(net.channel(0).Pop(&out, 10ms));
  EXPECT_FALSE(net.channel(1).Pop(&out, 10ms));
}

}  // namespace
}  // namespace ecdb
