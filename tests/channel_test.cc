// Tests for the threaded-runtime message channel and router.

#include "net/channel.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

namespace ecdb {
namespace {

using namespace std::chrono_literals;

Message Make(NodeId src, NodeId dst) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.txn = MakeTxnId(src, 1);
  return m;
}

TEST(MessageChannelTest, PushPop) {
  MessageChannel ch;
  ch.Push(Make(0, 1));
  Message out;
  ASSERT_TRUE(ch.Pop(&out, 100ms));
  EXPECT_EQ(out.src, 0u);
  EXPECT_EQ(ch.Size(), 0u);
}

TEST(MessageChannelTest, PopTimesOutWhenEmpty) {
  MessageChannel ch;
  Message out;
  EXPECT_FALSE(ch.Pop(&out, 10ms));
}

TEST(MessageChannelTest, TryPop) {
  MessageChannel ch;
  Message out;
  EXPECT_FALSE(ch.TryPop(&out));
  ch.Push(Make(0, 1));
  EXPECT_TRUE(ch.TryPop(&out));
  EXPECT_FALSE(ch.TryPop(&out));
}

TEST(MessageChannelTest, FifoOrder) {
  MessageChannel ch;
  for (uint32_t i = 0; i < 10; ++i) {
    Message m = Make(i, 0);
    ch.Push(std::move(m));
  }
  Message out;
  for (uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(ch.TryPop(&out));
    EXPECT_EQ(out.src, i);
  }
}

TEST(MessageChannelTest, CloseWakesBlockedConsumer) {
  MessageChannel ch;
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    Message out;
    ch.Pop(&out, 5000ms);
    returned = true;
  });
  std::this_thread::sleep_for(20ms);
  ch.Close();
  consumer.join();
  EXPECT_TRUE(returned);
}

TEST(MessageChannelTest, PushAfterCloseIsDropped) {
  MessageChannel ch;
  ch.Close();
  ch.Push(Make(0, 1));
  EXPECT_EQ(ch.Size(), 0u);
}

TEST(MessageChannelTest, ConcurrentProducersDeliverEverything) {
  MessageChannel ch;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 1000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ch.Push(Make(static_cast<NodeId>(p), 0));
      }
    });
  }
  int received = 0;
  Message out;
  while (received < kProducers * kPerProducer) {
    if (ch.Pop(&out, 1000ms)) received++;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(received, kProducers * kPerProducer);
}

TEST(MessageChannelTest, PopAllDrainsWholeBurstInOrder) {
  MessageChannel ch;
  for (uint32_t i = 0; i < 10; ++i) ch.Push(Make(i, 0));
  std::vector<Message> batch;
  ASSERT_TRUE(ch.PopAll(&batch, 1000us));
  ASSERT_EQ(batch.size(), 10u);
  for (uint32_t i = 0; i < 10; ++i) EXPECT_EQ(batch[i].src, i);
  EXPECT_EQ(ch.Size(), 0u);
  EXPECT_FALSE(ch.PopAll(&batch, 1000us));
  EXPECT_TRUE(batch.empty());  // a failed PopAll leaves the buffer cleared
}

TEST(MessageChannelTest, PopAllTimesOutWhenEmpty) {
  MessageChannel ch;
  std::vector<Message> batch;
  batch.push_back(Make(7, 7));  // stale content must be cleared
  EXPECT_FALSE(ch.PopAll(&batch, 5000us));
  EXPECT_TRUE(batch.empty());
}

TEST(MessageChannelTest, PopAllReturnsRemainderAfterClose) {
  MessageChannel ch;
  ch.Push(Make(0, 1));
  ch.Push(Make(1, 1));
  ch.Close();
  std::vector<Message> batch;
  ASSERT_TRUE(ch.PopAll(&batch, 1000us));
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_FALSE(ch.PopAll(&batch, 1000us));  // closed and drained
}

TEST(MessageChannelTest, CloseWakesBlockedPopAll) {
  MessageChannel ch;
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    std::vector<Message> batch;
    ch.PopAll(&batch, std::chrono::microseconds(5'000'000));
    returned = true;
  });
  std::this_thread::sleep_for(20ms);
  ch.Close();
  consumer.join();
  EXPECT_TRUE(returned);
}

// Multi-producer push/drain/close race. Run under ECDB_SANITIZE=thread this
// pins the mailbox's synchronization: every message pushed before Close
// must be observed exactly once by the draining consumer, with no data
// race between producers appending, the consumer swapping, and the closer.
TEST(MessageChannelTest, StressedProducersDrainAndCloseRace) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  MessageChannel ch;
  std::atomic<int> produced{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, &produced, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Message m = Make(static_cast<NodeId>(p), 0);
        m.priority_ts = static_cast<uint64_t>(i);
        ch.Push(std::move(m));
        produced.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<uint64_t> next_expected(kProducers, 0);
  std::vector<Message> batch;
  int received = 0;
  while (ch.PopAll(&batch, std::chrono::microseconds(500'000))) {
    for (const Message& m : batch) {
      // Per-producer FIFO must survive the batched drain.
      ASSERT_EQ(m.priority_ts, next_expected[m.src]++);
      received++;
    }
    if (received == kProducers * kPerProducer) break;
  }
  for (auto& t : producers) t.join();
  ch.Close();  // race Close against the final (empty) drains
  EXPECT_FALSE(ch.PopAll(&batch, 1000us));
  EXPECT_EQ(received, kProducers * kPerProducer);
  EXPECT_EQ(produced.load(), received);
}

TEST(ThreadNetworkTest, RoutesByDestination) {
  ThreadNetwork net(3);
  net.Send(Make(0, 2));
  Message out;
  ASSERT_TRUE(net.channel(2).Pop(&out, 100ms));
  EXPECT_EQ(out.src, 0u);
  EXPECT_EQ(net.channel(1).Size(), 0u);
}

TEST(ThreadNetworkTest, CrashedNodesDropTraffic) {
  ThreadNetwork net(3);
  net.CrashNode(1);
  net.Send(Make(0, 1));  // to crashed
  net.Send(Make(1, 2));  // from crashed
  EXPECT_EQ(net.channel(1).Size(), 0u);
  EXPECT_EQ(net.channel(2).Size(), 0u);
  EXPECT_TRUE(net.IsCrashed(1));
}

TEST(ThreadNetworkTest, CountsMessagesDroppedAtCrashedNodes) {
  ThreadNetwork net(3);
  EXPECT_EQ(net.messages_from_crashed(), 0u);
  EXPECT_EQ(net.messages_to_crashed(), 0u);
  net.CrashNode(1);
  net.Send(Make(0, 1));  // to crashed
  net.Send(Make(2, 1));  // to crashed
  net.Send(Make(1, 2));  // from crashed
  EXPECT_EQ(net.messages_to_crashed(), 2u);
  EXPECT_EQ(net.messages_from_crashed(), 1u);
  net.RecoverNode(1);
  net.Send(Make(0, 1));  // delivered, not counted
  EXPECT_EQ(net.messages_to_crashed(), 2u);
  EXPECT_EQ(net.channel(1).Size(), 1u);
}

TEST(ThreadNetworkTest, RecoverRestoresDelivery) {
  ThreadNetwork net(2);
  net.CrashNode(1);
  net.RecoverNode(1);
  net.Send(Make(0, 1));
  EXPECT_EQ(net.channel(1).Size(), 1u);
}

TEST(ThreadNetworkTest, OutOfRangeDestinationIsDropped) {
  ThreadNetwork net(2);
  net.Send(Make(0, 9));  // must not crash
}

TEST(ThreadNetworkTest, ShutdownClosesAllChannels) {
  ThreadNetwork net(2);
  net.Shutdown();
  Message out;
  EXPECT_FALSE(net.channel(0).Pop(&out, 10ms));
  EXPECT_FALSE(net.channel(1).Pop(&out, 10ms));
}

}  // namespace
}  // namespace ecdb
