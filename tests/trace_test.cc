// Tests for the tracing subsystem: recorder ring semantics, JSONL
// export/read round-trip, event decoding and the offline EC
// transmit-before-apply checker.

#include <sstream>

#include <gtest/gtest.h>

#include "commit/testbed.h"
#include "trace/trace_check.h"
#include "trace/trace_event.h"
#include "trace/trace_export.h"
#include "trace/trace_reader.h"
#include "trace/trace_recorder.h"

namespace ecdb {
namespace {

TraceEvent MakeEvent(TraceEventType type, Micros at, NodeId node,
                     TxnId txn = kInvalidTxn, uint64_t arg = 0,
                     NodeId peer = kInvalidNode, uint8_t a = 0,
                     uint8_t b = 0) {
  TraceEvent ev;
  ev.type = type;
  ev.at = at;
  ev.node = node;
  ev.txn = txn;
  ev.arg = arg;
  ev.peer = peer;
  ev.a = a;
  ev.b = b;
  return ev;
}

TEST(TraceRecorderTest, DisabledByDefault) {
  TraceRecorder rec(3);
  EXPECT_FALSE(rec.enabled());
  rec.Record(TraceEventType::kCleanup, 1, MakeTxnId(0, 1));
  EXPECT_EQ(rec.total(), 0u);
  EXPECT_TRUE(rec.Events().empty());
}

#if ECDB_TRACE_ENABLED

TEST(TraceRecorderTest, RecordsInOrderAndStampsNode) {
  TraceRecorder rec(7);
  rec.Enable(64);
  ASSERT_TRUE(rec.enabled());
  const TxnId txn = MakeTxnId(0, 1);
  rec.Record(TraceEventType::kMsgSend, 10, txn, /*arg=*/1, /*peer=*/2);
  rec.Record(TraceEventType::kDecisionApply, 20, txn);
  const std::vector<TraceEvent> evs = rec.Events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].type, TraceEventType::kMsgSend);
  EXPECT_EQ(evs[0].at, 10u);
  EXPECT_EQ(evs[0].node, 7u);
  EXPECT_EQ(evs[0].peer, 2u);
  EXPECT_EQ(evs[1].type, TraceEventType::kDecisionApply);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorderTest, RingWrapsKeepingNewestWindow) {
  TraceRecorder rec(0);
  rec.Enable(4);  // already a power of two
  for (uint64_t i = 0; i < 10; ++i) {
    rec.Record(TraceEventType::kTimerFire, i, MakeTxnId(0, i));
  }
  EXPECT_EQ(rec.total(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  const std::vector<TraceEvent> evs = rec.Events();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest-first window of the newest 4 events.
  EXPECT_EQ(evs.front().at, 6u);
  EXPECT_EQ(evs.back().at, 9u);
}

TEST(TraceRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  TraceRecorder rec(0);
  rec.Enable(5);  // rounds to 8
  for (uint64_t i = 0; i < 8; ++i) {
    rec.Record(TraceEventType::kCleanup, i, MakeTxnId(0, i));
  }
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.Events().size(), 8u);
}

TEST(TraceRecorderTest, DisableStopsRecording) {
  TraceRecorder rec(0);
  rec.Enable(8);
  rec.Record(TraceEventType::kCleanup, 1, MakeTxnId(0, 1));
  rec.Disable();
  rec.Record(TraceEventType::kCleanup, 2, MakeTxnId(0, 2));
  EXPECT_EQ(rec.total(), 1u);
}

TEST(TraceRecorderTest, SeqIsMonotonic) {
  TraceRecorder rec(0);
  rec.Enable(8);
  EXPECT_EQ(rec.NextSeq(), 1u);
  EXPECT_EQ(rec.NextSeq(), 2u);
  rec.Enable(8);  // re-enable resets
  EXPECT_EQ(rec.NextSeq(), 1u);
}

#endif  // ECDB_TRACE_ENABLED

TEST(CollectEventsTest, StableMergeByTimestamp) {
  // Two hand-built recorders would need Enable(); build the merged stream
  // through the exporter contract instead: same-timestamp events keep
  // per-recorder order (recorder 0's events before recorder 1's).
#if ECDB_TRACE_ENABLED
  TraceRecorder r0(0), r1(1);
  r0.Enable(8);
  r1.Enable(8);
  const TxnId txn = MakeTxnId(0, 1);
  r0.Record(TraceEventType::kDecisionTransmit, 100, txn, 2);
  r0.Record(TraceEventType::kDecisionApply, 100, txn);
  r1.Record(TraceEventType::kMsgRecv, 50, txn, 1, 0);
  const std::vector<TraceEvent> all = CollectEvents({&r0, &r1});
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].at, 50u);
  EXPECT_EQ(all[1].type, TraceEventType::kDecisionTransmit);
  EXPECT_EQ(all[2].type, TraceEventType::kDecisionApply);
#else
  GTEST_SKIP() << "tracing compiled out (ECDB_TRACE=OFF)";
#endif
}

TEST(DescribeEventTest, DecodesPerTypePayloads) {
  const TxnId txn = MakeTxnId(0, 1);
  EXPECT_EQ(DescribeEvent(MakeEvent(TraceEventType::kMsgSend, 0, 0, txn,
                                    /*arg=*/12, /*peer=*/3,
                                    static_cast<uint8_t>(MsgType::kPrepare))),
            "send Prepare to 3 seq 12");
  EXPECT_EQ(DescribeEvent(MakeEvent(
                TraceEventType::kTxnState, 0, 0, txn, 0, kInvalidNode,
                static_cast<uint8_t>(CohortState::kTransmitC),
                static_cast<uint8_t>(CohortState::kReady))),
            ToString(CohortState::kReady) + " -> " +
                ToString(CohortState::kTransmitC));
  EXPECT_EQ(DescribeEvent(MakeEvent(TraceEventType::kDecisionTransmit, 0, 0,
                                    txn, /*arg=*/4, kInvalidNode,
                                    static_cast<uint8_t>(Decision::kCommit))),
            "transmit " + ToString(Decision::kCommit) + " to 4 peers");
  EXPECT_EQ(DescribeEvent(
                MakeEvent(TraceEventType::kTimerArm, 0, 0, txn, 500)),
            "arm timer +500us");
  EXPECT_EQ(DescribeEvent(MakeEvent(TraceEventType::kTermRoundStart, 0, 0,
                                    txn, 2)),
            "termination round 2");
}

TEST(TraceExportTest, JsonlRoundTrip) {
  TraceMeta meta;
  meta.runtime = "testbed";
  meta.protocol = "EC";
  meta.num_nodes = 2;
  const TxnId txn = MakeTxnId(0, 1);
  std::vector<TraceEvent> events;
  events.push_back(MakeEvent(TraceEventType::kMsgSend, 10, 0, txn, 1, 1,
                             static_cast<uint8_t>(MsgType::kPrepare)));
  events.push_back(MakeEvent(TraceEventType::kDecisionTransmit, 20, 1, txn,
                             1, kInvalidNode,
                             static_cast<uint8_t>(Decision::kCommit)));
  events.push_back(MakeEvent(TraceEventType::kDecisionApply, 21, 1, txn, 0,
                             kInvalidNode,
                             static_cast<uint8_t>(Decision::kCommit)));

  std::ostringstream out;
  WriteJsonl(meta, events, out);

  std::istringstream in(out.str());
  ParsedTrace parsed;
  std::string error;
  ASSERT_TRUE(ReadJsonlTrace(in, &parsed, &error)) << error;
  EXPECT_EQ(parsed.meta.runtime, "testbed");
  EXPECT_EQ(parsed.meta.protocol, "EC");
  EXPECT_EQ(parsed.meta.num_nodes, 2u);
  ASSERT_EQ(parsed.events.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed.events[i], events[i]) << "event " << i;
  }
}

TEST(TraceReaderTest, RejectsMalformedInput) {
  ParsedTrace parsed;
  std::string error;
  std::istringstream missing_meta("{\"at\":1,\"node\":0}\n");
  EXPECT_FALSE(ReadJsonlTrace(missing_meta, &parsed, &error));
  EXPECT_FALSE(error.empty());

  std::istringstream bad_type(
      "{\"meta\":{\"runtime\":\"sim\",\"protocol\":\"EC\",\"num_nodes\":1}}\n"
      "{\"at\":1,\"node\":0,\"type\":\"NotAnEvent\",\"txn\":0}\n");
  EXPECT_FALSE(ReadJsonlTrace(bad_type, &parsed, &error));
  EXPECT_NE(error.find("2"), std::string::npos) << error;  // line number
}

TEST(TraceCheckTest, PassesWhenEveryApplyFollowsTransmit) {
  ParsedTrace trace;
  trace.meta.runtime = "testbed";
  trace.meta.protocol = "EC";
  trace.meta.num_nodes = 2;
  const TxnId txn = MakeTxnId(0, 1);
  trace.events.push_back(MakeEvent(TraceEventType::kDecisionTransmit, 10, 0,
                                   txn, 1));
  trace.events.push_back(
      MakeEvent(TraceEventType::kDecisionApply, 11, 0, txn));
  trace.events.push_back(MakeEvent(TraceEventType::kDecisionTransmit, 12, 1,
                                   txn, 1));
  trace.events.push_back(
      MakeEvent(TraceEventType::kDecisionApply, 12, 1, txn));
  const TraceCheckResult result = CheckTransmitBeforeApply(trace);
  EXPECT_TRUE(result.strict);
  EXPECT_TRUE(result.ok) << (result.violations.empty()
                                 ? ""
                                 : result.violations.front());
  EXPECT_EQ(result.applies_checked, 2u);
}

TEST(TraceCheckTest, FlagsApplyWithoutOwnTransmit) {
  ParsedTrace trace;
  trace.meta.protocol = "EC";
  const TxnId txn = MakeTxnId(0, 1);
  // Node 0 transmitted, but node 1 applied without its own transmit —
  // another node's transmit must not satisfy the invariant.
  trace.events.push_back(MakeEvent(TraceEventType::kDecisionTransmit, 10, 0,
                                   txn, 1));
  trace.events.push_back(
      MakeEvent(TraceEventType::kDecisionApply, 11, 1, txn));
  const TraceCheckResult result = CheckTransmitBeforeApply(trace);
  EXPECT_TRUE(result.strict);
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_NE(result.violations[0].find("node 1"), std::string::npos);
}

TEST(TraceCheckTest, NonEcProtocolIsNotStrict) {
  ParsedTrace trace;
  trace.meta.protocol = "2PC";
  const TxnId txn = MakeTxnId(0, 1);
  trace.events.push_back(
      MakeEvent(TraceEventType::kDecisionApply, 11, 1, txn));
  const TraceCheckResult result = CheckTransmitBeforeApply(trace);
  EXPECT_FALSE(result.strict);
  EXPECT_TRUE(result.ok);
}

// End-to-end: trace a scripted EC commit through the protocol testbed and
// verify the exported trace satisfies the paper's ordering invariant.
TEST(TraceEndToEndTest, TestbedEcCommitTraceChecksOut) {
#if ECDB_TRACE_ENABLED
  testbed::ProtocolTestbed bed(CommitProtocol::kEasyCommit, 3);
  bed.EnableTracing(1 << 10);
  const TxnId txn = bed.StartAll();
  bed.Settle();
  ASSERT_TRUE(bed.AllActiveDecided(txn));

  const std::vector<TraceEvent> events = CollectEvents(bed.recorders());
  ASSERT_FALSE(events.empty());

  // Every node traced something, and the hidden TRANSMIT-C state shows up.
  bool saw_transmit_state = false;
  for (const TraceEvent& ev : events) {
    if (ev.type == TraceEventType::kTxnState &&
        static_cast<CohortState>(ev.a) == CohortState::kTransmitC) {
      saw_transmit_state = true;
    }
  }
  EXPECT_TRUE(saw_transmit_state);

  TraceMeta meta;
  meta.runtime = "testbed";
  meta.protocol = ToString(CommitProtocol::kEasyCommit);
  meta.num_nodes = 3;

  std::ostringstream jsonl;
  WriteJsonl(meta, events, jsonl);
  std::istringstream in(jsonl.str());
  ParsedTrace parsed;
  std::string error;
  ASSERT_TRUE(ReadJsonlTrace(in, &parsed, &error)) << error;
  ASSERT_EQ(parsed.events.size(), events.size());

  const TraceCheckResult result = CheckTransmitBeforeApply(parsed);
  EXPECT_TRUE(result.strict);
  EXPECT_TRUE(result.ok) << (result.violations.empty()
                                 ? ""
                                 : result.violations.front());
  EXPECT_GE(result.applies_checked, 3u);

  // The Chrome export at least forms and mentions every node's track.
  std::ostringstream chrome;
  WriteChromeTrace(meta, events, chrome);
  const std::string c = chrome.str();
  EXPECT_NE(c.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(c.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(c.find("\"ph\":\"e\""), std::string::npos);
#else
  GTEST_SKIP() << "tracing compiled out (ECDB_TRACE=OFF)";
#endif
}

}  // namespace
}  // namespace ecdb
