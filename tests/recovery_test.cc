// Tests for the Section 4.2 independent-recovery analysis.

#include "commit/recovery.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace ecdb {
namespace {

TEST(RecoveryRulesTest, NoEntryAborts) {
  // Rule (i): failed before voting -> abort on recovery.
  EXPECT_EQ(RecoveryManager::AnalyzeRecord(std::nullopt),
            RecoveryAction::kAbort);
}

TEST(RecoveryRulesTest, BeginCommitAborts) {
  // Rule (ii): coordinator failed before reaching a decision.
  LogRecord r{1, 7, LogRecordType::kBeginCommit, {}};
  EXPECT_EQ(RecoveryManager::AnalyzeRecord(r), RecoveryAction::kAbort);
}

TEST(RecoveryRulesTest, ReadyConsultsPeers) {
  // Voted commit, outcome unknown: the case where no protocol has
  // independent recovery.
  LogRecord r{1, 7, LogRecordType::kReady, {0, 1, 2}};
  EXPECT_EQ(RecoveryManager::AnalyzeRecord(r),
            RecoveryAction::kConsultPeers);
}

TEST(RecoveryRulesTest, PreCommitConsultsPeers) {
  LogRecord r{1, 7, LogRecordType::kPreCommit, {}};
  EXPECT_EQ(RecoveryManager::AnalyzeRecord(r),
            RecoveryAction::kConsultPeers);
}

TEST(RecoveryRulesTest, DecisionEntriesFollowDecision) {
  // Rule (iii): the logged decision drives recovery.
  EXPECT_EQ(RecoveryManager::AnalyzeRecord(
                LogRecord{1, 7, LogRecordType::kCommitDecision, {}}),
            RecoveryAction::kCommit);
  EXPECT_EQ(RecoveryManager::AnalyzeRecord(
                LogRecord{1, 7, LogRecordType::kAbortDecision, {}}),
            RecoveryAction::kAbort);
  EXPECT_EQ(RecoveryManager::AnalyzeRecord(
                LogRecord{1, 7, LogRecordType::kCommitReceived, {}}),
            RecoveryAction::kCommit);
  EXPECT_EQ(RecoveryManager::AnalyzeRecord(
                LogRecord{1, 7, LogRecordType::kAbortReceived, {}}),
            RecoveryAction::kAbort);
}

TEST(RecoveryRulesTest, TerminalEntriesAreIdempotent) {
  EXPECT_EQ(RecoveryManager::AnalyzeRecord(
                LogRecord{1, 7, LogRecordType::kTransactionCommit, {}}),
            RecoveryAction::kCommit);
  EXPECT_EQ(RecoveryManager::AnalyzeRecord(
                LogRecord{1, 7, LogRecordType::kTransactionAbort, {}}),
            RecoveryAction::kAbort);
}

TEST(RecoveryScanTest, InFlightExcludesTerminated) {
  MemoryWal wal;
  // txn 1: fully committed. txn 2: stuck in READY. txn 3: decision logged
  // but not applied. txn 4: aborted.
  wal.Append({0, 1, LogRecordType::kReady, {}});
  wal.Append({0, 1, LogRecordType::kCommitReceived, {}});
  wal.Append({0, 1, LogRecordType::kTransactionCommit, {}});
  wal.Append({0, 2, LogRecordType::kReady, {}});
  wal.Append({0, 3, LogRecordType::kBeginCommit, {}});
  wal.Append({0, 3, LogRecordType::kCommitDecision, {}});
  wal.Append({0, 4, LogRecordType::kTransactionAbort, {}});

  auto in_flight = RecoveryManager::InFlightTxns(wal);
  std::sort(in_flight.begin(), in_flight.end());
  EXPECT_EQ(in_flight, (std::vector<TxnId>{2, 3}));
}

TEST(RecoveryScanTest, EmptyWalHasNoInFlight) {
  MemoryWal wal;
  EXPECT_TRUE(RecoveryManager::InFlightTxns(wal).empty());
}

TEST(RecoveryScanTest, AnalyzeUsesLastEntry) {
  MemoryWal wal;
  wal.Append({0, 7, LogRecordType::kReady, {}});
  EXPECT_EQ(RecoveryManager::Analyze(wal, 7),
            RecoveryAction::kConsultPeers);
  wal.Append({0, 7, LogRecordType::kCommitReceived, {}});
  EXPECT_EQ(RecoveryManager::Analyze(wal, 7), RecoveryAction::kCommit);
  EXPECT_EQ(RecoveryManager::Analyze(wal, 99), RecoveryAction::kAbort);
}

}  // namespace
}  // namespace ecdb
