#ifndef ECDB_TESTS_PROTOCOL_HARNESS_H_
#define ECDB_TESTS_PROTOCOL_HARNESS_H_

// The protocol harness lives in the library (commit/testbed.h) so that
// benchmarks and downstream users can script failure scenarios too; tests
// keep their historical include path and namespace alias.

#include "commit/testbed.h"

namespace ecdb {
namespace testing {
using ecdb::testbed::ProtocolHost;
using ecdb::testbed::ProtocolTestbed;
}  // namespace testing
}  // namespace ecdb

#endif  // ECDB_TESTS_PROTOCOL_HARNESS_H_
