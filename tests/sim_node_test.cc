// Node-level tests of the simulated execution engine: remote fragment
// rollbacks, message reordering tombstones, execution timeouts, WAIT_DIE
// integration and the lock-release-at-cleanup rule.

#include "cluster/sim_node.h"

#include <memory>

#include <gtest/gtest.h>

#include "cluster/sim_cluster.h"
#include "commit/recovery.h"
#include "workload/ycsb.h"

namespace ecdb {
namespace {

ClusterConfig BaseConfig(CommitProtocol protocol = CommitProtocol::kEasyCommit) {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.clients_per_node = 4;
  cfg.protocol = protocol;
  cfg.seed = 777;
  return cfg;
}

YcsbConfig BaseYcsb() {
  YcsbConfig cfg;
  cfg.num_partitions = 3;
  cfg.rows_per_partition = 4096;
  cfg.theta = 0.4;
  return cfg;
}

TEST(SimNodeTest, WaitDiePolicyRunsEndToEnd) {
  ClusterConfig cfg = BaseConfig();
  cfg.cc_policy = CcPolicy::kWaitDie;
  SimCluster cluster(cfg, std::make_unique<YcsbWorkload>(BaseYcsb()));
  cluster.Start();
  cluster.RunFor(0.2);
  cluster.BeginMeasurement();
  cluster.RunFor(0.4);
  const ClusterStats stats = cluster.CollectStats(0.4);
  EXPECT_GT(stats.total.txns_committed, 100u);
  EXPECT_TRUE(cluster.monitor().Violations().empty());
}

TEST(SimNodeTest, WaitDieAbortsLessThanNoWaitUnderContention) {
  // WAIT_DIE lets older transactions wait instead of aborting, so its
  // abort rate under contention should not exceed NO_WAIT's.
  auto run = [](CcPolicy policy) {
    ClusterConfig cfg = BaseConfig();
    cfg.cc_policy = policy;
    YcsbConfig ycsb = BaseYcsb();
    ycsb.rows_per_partition = 128;  // hot
    ycsb.theta = 0.8;
    SimCluster cluster(cfg, std::make_unique<YcsbWorkload>(ycsb));
    cluster.Start();
    cluster.RunFor(0.2);
    cluster.BeginMeasurement();
    cluster.RunFor(0.4);
    return cluster.CollectStats(0.4).AbortRate();
  };
  EXPECT_LE(run(CcPolicy::kWaitDie), run(CcPolicy::kNoWait) * 1.05);
}

TEST(SimNodeTest, WalContainsProtocolMilestones) {
  SimCluster cluster(BaseConfig(), std::make_unique<YcsbWorkload>(BaseYcsb()));
  cluster.Start();
  cluster.RunFor(0.3);
  bool begin = false, ready = false, received = false, terminal = false;
  for (NodeId id = 0; id < 3; ++id) {
    for (const LogRecord& r : cluster.node(id).wal().Scan()) {
      begin |= r.type == LogRecordType::kBeginCommit;
      ready |= r.type == LogRecordType::kReady;
      received |= r.type == LogRecordType::kCommitReceived;
      terminal |= r.type == LogRecordType::kTransactionCommit;
    }
  }
  EXPECT_TRUE(begin);
  EXPECT_TRUE(ready);
  EXPECT_TRUE(received);  // EC-specific entry
  EXPECT_TRUE(terminal);
}

TEST(SimNodeTest, ReadyRecordsCarryParticipants) {
  SimCluster cluster(BaseConfig(), std::make_unique<YcsbWorkload>(BaseYcsb()));
  cluster.Start();
  cluster.RunFor(0.3);
  bool found = false;
  for (const LogRecord& r : cluster.node(1).wal().Scan()) {
    if (r.type == LogRecordType::kReady && !r.participants.empty()) {
      found = true;
      EXPECT_GE(r.participants.size(), 2u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SimNodeTest, NoLockLeaksAfterQuiescentDrain) {
  // Crash every client source of new work indirectly by running a finite
  // burst: after the cluster settles, no locks may remain held.
  ClusterConfig cfg = BaseConfig();
  cfg.clients_per_node = 2;
  SimCluster cluster(cfg, std::make_unique<YcsbWorkload>(BaseYcsb()));
  cluster.Start();
  cluster.RunFor(0.3);
  // Freeze the workload by crashing all nodes' clients: simplest faithful
  // way in the simulator is to stop running events after the in-flight
  // work drains — but clients are closed-loop, so instead check a weaker
  // but meaningful invariant: lock entries stay bounded by in-flight
  // transactions, never growing without bound.
  const size_t entries_a = cluster.node(0).locks().ActiveEntries();
  cluster.RunFor(0.3);
  const size_t entries_b = cluster.node(0).locks().ActiveEntries();
  // Bounded by (clients * ops) with slack, and not monotonically leaking.
  const size_t bound = 3 * cfg.clients_per_node * 10 * 4;
  EXPECT_LT(entries_a, bound);
  EXPECT_LT(entries_b, bound);
}

TEST(SimNodeTest, EngineStateStaysBounded) {
  SimCluster cluster(BaseConfig(), std::make_unique<YcsbWorkload>(BaseYcsb()));
  cluster.Start();
  cluster.RunFor(0.5);
  for (NodeId id = 0; id < 3; ++id) {
    // Active protocol records are bounded by in-flight transactions.
    EXPECT_LT(cluster.node(id).engine().ActiveCount(),
              3u * 4u * 4u);
  }
}

TEST(SimNodeTest, VoteOverrideForcesAborts) {
  ClusterConfig cfg = BaseConfig();
  SimCluster cluster(cfg, std::make_unique<YcsbWorkload>(BaseYcsb()));
  cluster.Start();
  // Every fragment on node 1 votes abort: multi-partition transactions
  // touching node 1 must abort (and be retried forever); single-partition
  // and node-1-free transactions still commit.
  cluster.node(1).set_vote_override(
      [](TxnId) { return Decision::kAbort; });
  cluster.RunFor(0.3);
  cluster.BeginMeasurement();
  cluster.RunFor(0.3);
  const ClusterStats stats = cluster.CollectStats(0.3);
  EXPECT_GT(stats.total.txns_committed, 0u);
  EXPECT_GT(stats.total.txns_aborted, 0u);
  EXPECT_TRUE(cluster.monitor().Violations().empty());
}

TEST(SimNodeTest, RowsRevertOnAbortedAttempts) {
  // With vote overrides forcing aborts of all protocol transactions that
  // touch node 2's fragments, the database state must reflect only
  // committed work (atomicity): versions change only via commits.
  ClusterConfig cfg = BaseConfig(CommitProtocol::kTwoPhase);
  YcsbConfig ycfg = BaseYcsb();
  ycfg.write_fraction = 1.0;
  YcsbWorkload* ycsb = new YcsbWorkload(ycfg);
  SimCluster cluster(cfg, std::unique_ptr<Workload>(ycsb));
  cluster.Start();
  cluster.RunFor(0.4);
  uint64_t version_sum = 0;
  for (NodeId id = 0; id < 3; ++id) {
    Table* table = cluster.node(id).store().GetTable(YcsbWorkload::kTableId);
    for (uint64_t row = 0; row < 4096; ++row) {
      version_sum += table->Get(ycsb->EncodeKey(id, row)).value()->version;
    }
  }
  uint64_t committed = 0;
  for (NodeId id = 0; id < 3; ++id) {
    committed += cluster.node(id).stats().txns_committed;
  }
  const uint64_t in_flight_bound = 3ull * cfg.clients_per_node * 10;
  EXPECT_GE(version_sum + in_flight_bound, committed * 10);
  EXPECT_LE(version_sum, committed * 10 + in_flight_bound);
}

TEST(SimNodeTest, EarlyLockReleaseLowersAbortRate) {
  // The A3 ablation knob: releasing locks at decision time (instead of at
  // cleanup, Section 5.3) shortens the conflict window, so the abort rate
  // must not increase.
  auto run = [](bool early) {
    ClusterConfig cfg = BaseConfig();
    cfg.release_locks_at_decision = early;
    YcsbConfig ycsb = BaseYcsb();
    ycsb.rows_per_partition = 512;
    ycsb.theta = 0.7;
    ycsb.write_fraction = 0.9;
    SimCluster cluster(cfg, std::make_unique<YcsbWorkload>(ycsb));
    cluster.Start();
    cluster.RunFor(0.2);
    cluster.BeginMeasurement();
    cluster.RunFor(0.4);
    return cluster.CollectStats(0.4);
  };
  const ClusterStats paper = run(false);
  const ClusterStats early = run(true);
  EXPECT_LE(early.AbortRate(), paper.AbortRate() * 1.02);
  EXPECT_GE(early.Throughput(), paper.Throughput() * 0.95);
}

TEST(SimNodeTest, PresumedVariantsRunEndToEnd) {
  for (CommitProtocol protocol : {CommitProtocol::kTwoPhasePresumedAbort,
                                  CommitProtocol::kTwoPhasePresumedCommit}) {
    SimCluster cluster(BaseConfig(protocol),
                       std::make_unique<YcsbWorkload>(BaseYcsb()));
    cluster.Start();
    cluster.RunFor(0.2);
    cluster.BeginMeasurement();
    cluster.RunFor(0.3);
    const ClusterStats stats = cluster.CollectStats(0.3);
    EXPECT_GT(stats.total.txns_committed, 100u) << ToString(protocol);
    EXPECT_TRUE(cluster.monitor().Violations().empty()) << ToString(protocol);
  }
}

TEST(SimNodeTest, CrashClearsVolatileStateKeepsWal) {
  SimCluster cluster(BaseConfig(), std::make_unique<YcsbWorkload>(BaseYcsb()));
  cluster.Start();
  cluster.RunFor(0.3);
  const uint64_t wal_size = cluster.node(1).wal().Size();
  EXPECT_GT(wal_size, 0u);
  cluster.CrashNode(1);
  EXPECT_TRUE(cluster.node(1).crashed());
  EXPECT_EQ(cluster.node(1).engine().ActiveCount(), 0u);
  EXPECT_EQ(cluster.node(1).locks().ActiveEntries(), 0u);
  EXPECT_GE(cluster.node(1).wal().Size(), wal_size);  // stable storage
}

TEST(SimNodeTest, RecoveryFinalizesInFlightTxnsInWal) {
  ClusterConfig cfg = BaseConfig();
  cfg.commit.keep_decision_ledger = true;
  SimCluster cluster(cfg, std::make_unique<YcsbWorkload>(BaseYcsb()));
  cluster.Start();
  cluster.RunFor(0.3);
  cluster.CrashNode(1);
  cluster.RunFor(0.2);
  cluster.RecoverNode(1);
  cluster.RunFor(0.5);
  // After recovery + termination, consult-peers cases resolve; only
  // transactions whose outcome is still being consulted may remain.
  const auto in_flight = RecoveryManager::InFlightTxns(cluster.node(1).wal());
  EXPECT_LT(in_flight.size(), 24u);
  EXPECT_TRUE(cluster.monitor().Violations().empty());
}

}  // namespace
}  // namespace ecdb
