// Message-loss soak: every protocol family must stay safe when the
// network silently drops a few percent of all messages — no conflicting
// applied decisions, and every commit acked to a client durable at its
// coordinator. Loss stays ON through the drain: the point is that the
// protocols (with the decision ledger + bounded fruitless-retry
// hardening) resolve every transaction *through* the lossy network, not
// after it heals.

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "cluster/sim_cluster.h"
#include "wal/log_record.h"
#include "workload/ycsb.h"

namespace ecdb {
namespace {

struct SoakCase {
  CommitProtocol protocol;
  double drop_probability;
};

class LossSoakTest : public ::testing::TestWithParam<SoakCase> {};

TEST_P(LossSoakTest, AckedCommitsSurviveSustainedLoss) {
  const SoakCase& param = GetParam();

  ClusterConfig config;
  config.num_nodes = 4;
  config.workers_per_node = 2;
  config.clients_per_node = 4;
  config.protocol = param.protocol;
  config.seed = 20180326;
  config.network.drop_probability = param.drop_probability;
  // Loss hardening (see CommitEngineConfig): keep decisions answerable
  // forever and re-run elections whose replies were all lost instead of
  // deciding from silence.
  config.commit.keep_decision_ledger = true;
  config.commit.term_fruitless_retries = 8;

  YcsbConfig ycsb;
  ycsb.num_partitions = config.num_nodes;
  ycsb.rows_per_partition = 1024;
  ycsb.partitions_per_txn = 2;

  SimCluster cluster(config, std::make_unique<YcsbWorkload>(ycsb));
  cluster.Start();
  for (NodeId id = 0; id < cluster.num_nodes(); ++id) {
    cluster.node(id).TrackAckedCommits(true);
  }
  cluster.RunFor(0.4);

  // Quiesce and drain with loss still active.
  cluster.Quiesce();
  const size_t kBudget = 20'000'000;
  const size_t executed = cluster.RunToQuiescence(kBudget);
  EXPECT_LT(executed, kBudget) << "drain did not quiesce under loss";

  EXPECT_GT(cluster.network().stats().messages_dropped, 0u)
      << "soak must actually drop messages";
  EXPECT_TRUE(cluster.monitor().Violations().empty());

  // Durability: every commit acked to a client has a commit record in its
  // coordinator's WAL and no abort record anywhere.
  uint64_t acked = 0;
  for (NodeId id = 0; id < cluster.num_nodes(); ++id) {
    for (TxnId txn : cluster.node(id).acked_commits()) {
      acked++;
      const NodeId coordinator = TxnCoordinator(txn);
      bool commit_logged = false;
      for (const LogRecord& r : cluster.node(coordinator).wal().Scan()) {
        if (r.txn == txn && (r.type == LogRecordType::kCommitDecision ||
                             r.type == LogRecordType::kTransactionCommit)) {
          commit_logged = true;
          break;
        }
      }
      EXPECT_TRUE(commit_logged)
          << "acked commit " << txn << " missing from coordinator WAL";
      for (NodeId other = 0; other < cluster.num_nodes(); ++other) {
        for (const LogRecord& r : cluster.node(other).wal().Scan()) {
          if (r.txn == txn && (r.type == LogRecordType::kAbortDecision ||
                               r.type == LogRecordType::kAbortReceived ||
                               r.type == LogRecordType::kTransactionAbort)) {
            ADD_FAILURE() << "acked commit " << txn << " aborted at node "
                          << other;
          }
        }
      }
    }
  }
  EXPECT_GT(acked, 100u) << "soak should commit real work";
}

std::string SoakName(const ::testing::TestParamInfo<SoakCase>& info) {
  std::string name = ToString(info.param.protocol);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + (info.param.drop_probability < 0.03 ? "_p01" : "_p05");
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, LossSoakTest,
    ::testing::Values(SoakCase{CommitProtocol::kEasyCommit, 0.01},
                      SoakCase{CommitProtocol::kEasyCommit, 0.05},
                      SoakCase{CommitProtocol::kTwoPhase, 0.01},
                      SoakCase{CommitProtocol::kTwoPhase, 0.05},
                      SoakCase{CommitProtocol::kThreePhase, 0.01},
                      SoakCase{CommitProtocol::kThreePhase, 0.05}),
    SoakName);

}  // namespace
}  // namespace ecdb
