// Integration tests for the threaded (real OS threads) runtime: the same
// protocol engines under wall-clock time and real concurrency.

#include "cluster/thread_node.h"

#include <memory>

#include <gtest/gtest.h>

#include "workload/ycsb.h"

namespace ecdb {
namespace {

ThreadClusterConfig SmallConfig(CommitProtocol protocol) {
  ThreadClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.clients_per_node = 2;
  cfg.protocol = protocol;
  cfg.seed = 99;
  // Wall-clock timeouts must stay well above worst-case scheduling delays
  // on a loaded CI machine: a spuriously expired timeout acts like the
  // Section 4.1 message-delay scenario and can (legitimately!) break
  // safety. Generous values keep the tests deterministic.
  cfg.commit.timeout_us = 250'000;
  cfg.commit.termination_window_us = 80'000;
  return cfg;
}

YcsbConfig SmallYcsb() {
  YcsbConfig cfg;
  cfg.num_partitions = 3;
  cfg.rows_per_partition = 2048;
  cfg.theta = 0.3;
  cfg.partitions_per_txn = 2;
  return cfg;
}

class ThreadClusterProtocolTest
    : public ::testing::TestWithParam<CommitProtocol> {};

TEST_P(ThreadClusterProtocolTest, CommitsUnderRealThreads) {
  ThreadCluster cluster(SmallConfig(GetParam()),
                        std::make_unique<YcsbWorkload>(SmallYcsb()));
  cluster.Start();
  cluster.RunFor(0.8);
  cluster.Stop();
  EXPECT_GT(cluster.TotalCommitted(), 20u);
  EXPECT_TRUE(cluster.monitor().Violations().empty());
  uint64_t blocked = 0;
  for (NodeId id = 0; id < 3; ++id) {
    blocked += cluster.node(id).stats().txns_blocked;
  }
  EXPECT_EQ(blocked, 0u);
}

TEST_P(ThreadClusterProtocolTest, LatenciesAreRecorded) {
  ThreadCluster cluster(SmallConfig(GetParam()),
                        std::make_unique<YcsbWorkload>(SmallYcsb()));
  cluster.Start();
  cluster.RunFor(0.5);
  cluster.Stop();
  uint64_t samples = 0;
  for (NodeId id = 0; id < 3; ++id) {
    samples += cluster.node(id).stats().latency.count();
  }
  EXPECT_GT(samples, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ThreadClusterProtocolTest,
                         ::testing::Values(CommitProtocol::kTwoPhase,
                                           CommitProtocol::kThreePhase,
                                           CommitProtocol::kEasyCommit),
                         [](const auto& info) { return ToString(info.param); });

TEST(ThreadClusterTest, WalRecordsProtocolMilestones) {
  ThreadCluster cluster(SmallConfig(CommitProtocol::kEasyCommit),
                        std::make_unique<YcsbWorkload>(SmallYcsb()));
  cluster.Start();
  cluster.RunFor(0.5);
  cluster.Stop();
  bool saw_begin = false, saw_received = false, saw_terminal = false;
  for (NodeId id = 0; id < 3; ++id) {
    for (const LogRecord& r : cluster.node(id).wal().Scan()) {
      saw_begin |= r.type == LogRecordType::kBeginCommit;
      saw_received |= r.type == LogRecordType::kCommitReceived;
      saw_terminal |= r.type == LogRecordType::kTransactionCommit;
    }
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_received);
  EXPECT_TRUE(saw_terminal);
}

TEST(ThreadClusterTest, FileWalPersistsAcrossRun) {
  ThreadClusterConfig cfg = SmallConfig(CommitProtocol::kEasyCommit);
  cfg.wal_dir = ::testing::TempDir();
  {
    ThreadCluster cluster(cfg, std::make_unique<YcsbWorkload>(SmallYcsb()));
    cluster.Start();
    cluster.RunFor(0.4);
    cluster.Stop();
    EXPECT_GT(cluster.node(0).wal().Size(), 0u);
  }
  // Reopen the WAL file directly and confirm the records survived.
  auto wal = FileWal::Open(cfg.wal_dir + "/node0.wal");
  ASSERT_TRUE(wal.ok());
  EXPECT_GT(wal.value()->Size(), 0u);
  std::remove((cfg.wal_dir + "/node0.wal").c_str());
  std::remove((cfg.wal_dir + "/node1.wal").c_str());
  std::remove((cfg.wal_dir + "/node2.wal").c_str());
}

TEST(ThreadClusterTest, SurvivesNodeCrashWithoutBlocking) {
  ThreadCluster cluster(SmallConfig(CommitProtocol::kEasyCommit),
                        std::make_unique<YcsbWorkload>(SmallYcsb()));
  cluster.Start();
  cluster.RunFor(0.3);
  cluster.node(2).Crash();
  const uint64_t at_crash = cluster.TotalCommitted();
  // Survivors keep committing (their single-partition and 0-1 spanning
  // transactions at least). The window is wall-clock, so under CPU
  // oversubscription (ctest -j) a single fixed interval can elapse before
  // the worker threads are ever scheduled — poll with a generous deadline.
  uint64_t after = at_crash;
  // Budget ~36 s: every failed attempt burns a 250 ms commit timeout plus
  // backoff before the client redraws, and co-scheduled wall-clock tests
  // can time-slice this cluster down to a fraction of the core.
  for (int i = 0; i < 120 && after <= at_crash; ++i) {
    cluster.RunFor(0.3);
    after = cluster.TotalCommitted();
  }
  cluster.Stop();
  EXPECT_GT(after, at_crash);
  EXPECT_TRUE(cluster.monitor().Violations().empty());
  uint64_t blocked = 0;
  for (NodeId id = 0; id < 2; ++id) {
    blocked += cluster.node(id).stats().txns_blocked;
  }
  EXPECT_EQ(blocked, 0u);
}

TEST(ThreadClusterTest, CrashedNodeRecoversConsistently) {
  ThreadCluster cluster(SmallConfig(CommitProtocol::kEasyCommit),
                        std::make_unique<YcsbWorkload>(SmallYcsb()));
  cluster.Start();
  cluster.RunFor(0.3);
  cluster.node(1).Crash();
  cluster.RunFor(0.3);
  cluster.node(1).Recover();
  cluster.RunFor(1.0);
  cluster.Stop();
  EXPECT_TRUE(cluster.monitor().Violations().empty());
}

TEST(ThreadClusterTest, OpenLoopGeneratesLoadAndConserves) {
  ThreadClusterConfig cfg = SmallConfig(CommitProtocol::kEasyCommit);
  cfg.open_loop.enabled = true;
  cfg.open_loop.arrivals_per_sec_per_node = 500.0;
  cfg.open_loop.max_in_flight_per_node = 8;
  ThreadCluster cluster(cfg, std::make_unique<YcsbWorkload>(SmallYcsb()));
  cluster.Start();
  // Poll rather than a fixed window: on a loaded CI machine the node
  // threads can be starved for long stretches.
  uint64_t committed = 0;
  for (int i = 0; i < 40 && committed == 0; ++i) {
    cluster.RunFor(0.2);
    committed = cluster.TotalCommitted();
  }
  cluster.Quiesce();
  cluster.Stop();
  EXPECT_GT(committed, 0u);

  uint64_t offered = 0, accounted = cluster.TotalCommitted();
  for (NodeId id = 0; id < cfg.num_nodes; ++id) {
    const NodeStats& s = cluster.node(id).stats();
    offered += s.open_loop_offered;
    accounted += s.open_loop_rejected + s.open_loop_aborted;
  }
  EXPECT_GT(offered, 0u);
  // Conservation, with slack for transactions still in flight when the
  // drain window closed: nothing is ever counted twice, so accounted can
  // trail offered by at most the cluster-wide admission cap.
  EXPECT_LE(accounted, offered);
  EXPECT_GE(accounted + static_cast<uint64_t>(cfg.num_nodes) *
                            cfg.open_loop.max_in_flight_per_node,
            offered);
  EXPECT_TRUE(cluster.monitor().Violations().empty());
}

TEST(ThreadClusterTest, StopIsIdempotent) {
  ThreadCluster cluster(SmallConfig(CommitProtocol::kTwoPhase),
                        std::make_unique<YcsbWorkload>(SmallYcsb()));
  cluster.Start();
  cluster.RunFor(0.1);
  cluster.Stop();
  cluster.Stop();  // must not crash or hang
}

}  // namespace
}  // namespace ecdb
