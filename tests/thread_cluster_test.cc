// Integration tests for the threaded (real OS threads) runtime: the same
// protocol engines under wall-clock time and real concurrency.

#include "cluster/thread_node.h"

#include <memory>

#include <gtest/gtest.h>

#include "workload/ycsb.h"

namespace ecdb {
namespace {

ThreadClusterConfig SmallConfig(CommitProtocol protocol) {
  ThreadClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.clients_per_node = 2;
  cfg.protocol = protocol;
  cfg.seed = 99;
  // Wall-clock timeouts must stay well above worst-case scheduling delays
  // on a loaded CI machine: a spuriously expired timeout acts like the
  // Section 4.1 message-delay scenario and can (legitimately!) break
  // safety. Generous values keep the tests deterministic.
  cfg.commit.timeout_us = 250'000;
  cfg.commit.termination_window_us = 80'000;
  return cfg;
}

YcsbConfig SmallYcsb() {
  YcsbConfig cfg;
  cfg.num_partitions = 3;
  cfg.rows_per_partition = 2048;
  cfg.theta = 0.3;
  cfg.partitions_per_txn = 2;
  return cfg;
}

class ThreadClusterProtocolTest
    : public ::testing::TestWithParam<CommitProtocol> {};

TEST_P(ThreadClusterProtocolTest, CommitsUnderRealThreads) {
  ThreadCluster cluster(SmallConfig(GetParam()),
                        std::make_unique<YcsbWorkload>(SmallYcsb()));
  cluster.Start();
  cluster.RunFor(0.8);
  cluster.Stop();
  EXPECT_GT(cluster.TotalCommitted(), 20u);
  EXPECT_TRUE(cluster.monitor().Violations().empty());
  uint64_t blocked = 0;
  for (NodeId id = 0; id < 3; ++id) {
    blocked += cluster.node(id).stats().txns_blocked;
  }
  EXPECT_EQ(blocked, 0u);
}

TEST_P(ThreadClusterProtocolTest, LatenciesAreRecorded) {
  ThreadCluster cluster(SmallConfig(GetParam()),
                        std::make_unique<YcsbWorkload>(SmallYcsb()));
  cluster.Start();
  cluster.RunFor(0.5);
  cluster.Stop();
  uint64_t samples = 0;
  for (NodeId id = 0; id < 3; ++id) {
    samples += cluster.node(id).stats().latency.count();
  }
  EXPECT_GT(samples, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ThreadClusterProtocolTest,
                         ::testing::Values(CommitProtocol::kTwoPhase,
                                           CommitProtocol::kThreePhase,
                                           CommitProtocol::kEasyCommit),
                         [](const auto& info) { return ToString(info.param); });

TEST(ThreadClusterTest, WalRecordsProtocolMilestones) {
  ThreadCluster cluster(SmallConfig(CommitProtocol::kEasyCommit),
                        std::make_unique<YcsbWorkload>(SmallYcsb()));
  cluster.Start();
  cluster.RunFor(0.5);
  cluster.Stop();
  bool saw_begin = false, saw_received = false, saw_terminal = false;
  for (NodeId id = 0; id < 3; ++id) {
    for (const LogRecord& r : cluster.node(id).wal().Scan()) {
      saw_begin |= r.type == LogRecordType::kBeginCommit;
      saw_received |= r.type == LogRecordType::kCommitReceived;
      saw_terminal |= r.type == LogRecordType::kTransactionCommit;
    }
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_received);
  EXPECT_TRUE(saw_terminal);
}

TEST(ThreadClusterTest, FileWalPersistsAcrossRun) {
  ThreadClusterConfig cfg = SmallConfig(CommitProtocol::kEasyCommit);
  cfg.wal_dir = ::testing::TempDir();
  {
    ThreadCluster cluster(cfg, std::make_unique<YcsbWorkload>(SmallYcsb()));
    cluster.Start();
    cluster.RunFor(0.4);
    cluster.Stop();
    EXPECT_GT(cluster.node(0).wal().Size(), 0u);
  }
  // Reopen the WAL file directly and confirm the records survived.
  auto wal = FileWal::Open(cfg.wal_dir + "/node0.wal");
  ASSERT_TRUE(wal.ok());
  EXPECT_GT(wal.value()->Size(), 0u);
  std::remove((cfg.wal_dir + "/node0.wal").c_str());
  std::remove((cfg.wal_dir + "/node1.wal").c_str());
  std::remove((cfg.wal_dir + "/node2.wal").c_str());
}

TEST(ThreadClusterTest, SurvivesNodeCrashWithoutBlocking) {
  ThreadCluster cluster(SmallConfig(CommitProtocol::kEasyCommit),
                        std::make_unique<YcsbWorkload>(SmallYcsb()));
  cluster.Start();
  cluster.RunFor(0.3);
  cluster.node(2).Crash();
  const uint64_t at_crash = cluster.TotalCommitted();
  cluster.RunFor(1.2);
  cluster.Stop();
  // Survivors kept committing (their single-partition and 0-1 spanning
  // transactions at least) and nothing blocked or conflicted.
  EXPECT_GT(cluster.TotalCommitted(), at_crash);
  EXPECT_TRUE(cluster.monitor().Violations().empty());
  uint64_t blocked = 0;
  for (NodeId id = 0; id < 2; ++id) {
    blocked += cluster.node(id).stats().txns_blocked;
  }
  EXPECT_EQ(blocked, 0u);
}

TEST(ThreadClusterTest, CrashedNodeRecoversConsistently) {
  ThreadCluster cluster(SmallConfig(CommitProtocol::kEasyCommit),
                        std::make_unique<YcsbWorkload>(SmallYcsb()));
  cluster.Start();
  cluster.RunFor(0.3);
  cluster.node(1).Crash();
  cluster.RunFor(0.3);
  cluster.node(1).Recover();
  cluster.RunFor(1.0);
  cluster.Stop();
  EXPECT_TRUE(cluster.monitor().Violations().empty());
}

TEST(ThreadClusterTest, StopIsIdempotent) {
  ThreadCluster cluster(SmallConfig(CommitProtocol::kTwoPhase),
                        std::make_unique<YcsbWorkload>(SmallYcsb()));
  cluster.Start();
  cluster.RunFor(0.1);
  cluster.Stop();
  cluster.Stop();  // must not crash or hang
}

}  // namespace
}  // namespace ecdb
