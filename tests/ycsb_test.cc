// Unit tests for the YCSB workload generator.

#include "workload/ycsb.h"

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

namespace ecdb {
namespace {

YcsbConfig SmallConfig() {
  YcsbConfig cfg;
  cfg.num_partitions = 4;
  cfg.rows_per_partition = 1024;
  cfg.ops_per_txn = 10;
  cfg.partitions_per_txn = 2;
  cfg.theta = 0.5;
  return cfg;
}

TEST(YcsbTest, LoadPopulatesPartition) {
  YcsbWorkload ycsb(SmallConfig());
  PartitionStore store(2);
  KeyPartitioner part(4);
  ycsb.LoadPartition(&store, part);
  const Table* table = store.GetTable(YcsbWorkload::kTableId);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->size(), 1024u);
  EXPECT_EQ(table->num_columns(), 10u);
}

TEST(YcsbTest, LoadedKeysBelongToPartition) {
  YcsbWorkload ycsb(SmallConfig());
  PartitionStore store(3);
  KeyPartitioner part(4);
  ycsb.LoadPartition(&store, part);
  for (uint64_t row = 0; row < 1024; ++row) {
    const Key key = ycsb.EncodeKey(3, row);
    EXPECT_EQ(part.PartitionOf(key), 3u);
    EXPECT_TRUE(store.GetTable(YcsbWorkload::kTableId)->Get(key).ok());
  }
}

TEST(YcsbTest, TxnHasConfiguredOpCount) {
  YcsbWorkload ycsb(SmallConfig());
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ycsb.NextTxn(0, rng).ops.size(), 10u);
  }
}

TEST(YcsbTest, TxnTouchesExactlyConfiguredPartitions) {
  YcsbConfig cfg = SmallConfig();
  cfg.partitions_per_txn = 3;
  YcsbWorkload ycsb(cfg);
  KeyPartitioner part(4);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const TxnRequest req = ycsb.NextTxn(1, rng);
    std::set<PartitionId> parts;
    for (const Operation& op : req.ops) parts.insert(part.PartitionOf(op.key));
    EXPECT_EQ(parts.size(), 3u);
    EXPECT_TRUE(parts.count(1));  // home partition always included
  }
}

TEST(YcsbTest, KeysWithinTxnAreDistinct) {
  YcsbConfig cfg = SmallConfig();
  cfg.theta = 0.9;  // heavy skew maximizes collision pressure
  YcsbWorkload ycsb(cfg);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const TxnRequest req = ycsb.NextTxn(0, rng);
    std::unordered_set<Key> keys;
    for (const Operation& op : req.ops) keys.insert(op.key);
    EXPECT_EQ(keys.size(), req.ops.size());
  }
}

TEST(YcsbTest, WriteFractionIsRespected) {
  YcsbConfig cfg = SmallConfig();
  cfg.write_fraction = 0.3;
  YcsbWorkload ycsb(cfg);
  Rng rng(4);
  int writes = 0, total = 0;
  for (int i = 0; i < 2000; ++i) {
    for (const Operation& op : ycsb.NextTxn(0, rng).ops) {
      writes += op.is_write() ? 1 : 0;
      total++;
    }
  }
  EXPECT_NEAR(static_cast<double>(writes) / total, 0.3, 0.03);
}

TEST(YcsbTest, ReadOnlyConfigProducesNoWrites) {
  YcsbConfig cfg = SmallConfig();
  cfg.write_fraction = 0.0;
  YcsbWorkload ycsb(cfg);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(ycsb.NextTxn(0, rng).HasWrites());
  }
}

TEST(YcsbTest, SkewConcentratesAccesses) {
  YcsbConfig hot_cfg = SmallConfig();
  hot_cfg.theta = 0.9;
  YcsbConfig cold_cfg = SmallConfig();
  cold_cfg.theta = 0.1;
  YcsbWorkload hot(hot_cfg), cold(cold_cfg);
  Rng rng(6);
  auto hot_hits = [&](YcsbWorkload& w) {
    int hits = 0;
    for (int i = 0; i < 500; ++i) {
      for (const Operation& op : w.NextTxn(0, rng).ops) {
        if (op.key / 4 < 16) hits++;  // row index < 16
      }
    }
    return hits;
  };
  EXPECT_GT(hot_hits(hot), 2 * hot_hits(cold));
}

TEST(YcsbTest, SinglePartitionConfig) {
  YcsbConfig cfg = SmallConfig();
  cfg.partitions_per_txn = 1;
  YcsbWorkload ycsb(cfg);
  KeyPartitioner part(4);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const TxnRequest req = ycsb.NextTxn(2, rng);
    for (const Operation& op : req.ops) {
      EXPECT_EQ(part.PartitionOf(op.key), 2u);
    }
  }
}

TEST(YcsbTest, DeterministicForSameSeed) {
  YcsbWorkload a(SmallConfig()), b(SmallConfig());
  Rng ra(9), rb(9);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.NextTxn(0, ra).ops, b.NextTxn(0, rb).ops);
  }
}

}  // namespace
}  // namespace ecdb
