// Tests for the metrics / time-breakdown accounting.

#include "stats/metrics.h"

#include <gtest/gtest.h>

namespace ecdb {
namespace {

TEST(TimeCategoryTest, PaperLabels) {
  EXPECT_EQ(ToString(TimeCategory::kUsefulWork), "Useful Work");
  EXPECT_EQ(ToString(TimeCategory::kTxnManager), "Txn Manager");
  EXPECT_EQ(ToString(TimeCategory::kIndex), "Index");
  EXPECT_EQ(ToString(TimeCategory::kAbort), "Abort");
  EXPECT_EQ(ToString(TimeCategory::kIdle), "Idle");
  EXPECT_EQ(ToString(TimeCategory::kCommit), "Commit");
  EXPECT_EQ(ToString(TimeCategory::kOverhead), "Overhead");
}

TEST(NodeStatsTest, AddAndReadTime) {
  NodeStats stats;
  stats.AddTime(TimeCategory::kCommit, 100);
  stats.AddTime(TimeCategory::kCommit, 50);
  EXPECT_EQ(stats.TimeIn(TimeCategory::kCommit), 150u);
  EXPECT_EQ(stats.TimeIn(TimeCategory::kAbort), 0u);
}

TEST(HistogramTest, MergeEmptyIntoEmpty) {
  Histogram a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 0u);
  EXPECT_DOUBLE_EQ(a.Mean(), 0.0);
  EXPECT_EQ(a.Percentile(0.5), 0u);
}

TEST(HistogramTest, MergeEmptyIntoNonEmptyKeepsBounds) {
  Histogram a, empty;
  a.Record(1000);
  a.Record(2000);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 1000u);
  EXPECT_EQ(a.max(), 2000u);
}

TEST(HistogramTest, MergeNonEmptyIntoEmptyAdoptsBounds) {
  Histogram empty, b;
  b.Record(1000);
  b.Record(2000);
  empty.Merge(b);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.min(), 1000u);
  EXPECT_EQ(empty.max(), 2000u);
  EXPECT_DOUBLE_EQ(empty.Mean(), 1500.0);
}

TEST(HistogramTest, SingleSamplePercentilesAreExact) {
  Histogram h;
  h.Record(12345);
  EXPECT_EQ(h.Percentile(0.0), 12345u);
  EXPECT_EQ(h.Percentile(0.5), 12345u);
  EXPECT_EQ(h.Percentile(0.99), 12345u);
  EXPECT_EQ(h.Percentile(1.0), 12345u);
}

TEST(HistogramTest, PercentileZeroIsMin) {
  // Regression: rank used to round down to 0 at q=0, returning the first
  // non-empty bucket's *upper* bound (1023 for a sample of 1000) rather
  // than the tracked minimum.
  Histogram h;
  h.Record(1000);
  h.Record(2000);
  EXPECT_EQ(h.Percentile(0.0), 1000u);
  EXPECT_EQ(h.Percentile(1.0), 2000u);
}

TEST(NodeStatsTest, MergeCombinesEverything) {
  NodeStats a, b;
  a.txns_committed = 10;
  a.txns_aborted = 2;
  a.AddTime(TimeCategory::kUsefulWork, 100);
  a.latency.Record(500);
  b.txns_committed = 5;
  b.txns_blocked = 1;
  b.commit_protocol_runs = 4;
  b.AddTime(TimeCategory::kUsefulWork, 50);
  b.AddTime(TimeCategory::kIdle, 10);
  b.latency.Record(700);
  a.Merge(b);
  EXPECT_EQ(a.txns_committed, 15u);
  EXPECT_EQ(a.txns_aborted, 2u);
  EXPECT_EQ(a.txns_blocked, 1u);
  EXPECT_EQ(a.commit_protocol_runs, 4u);
  EXPECT_EQ(a.TimeIn(TimeCategory::kUsefulWork), 150u);
  EXPECT_EQ(a.TimeIn(TimeCategory::kIdle), 10u);
  EXPECT_EQ(a.latency.count(), 2u);
}

TEST(NodeStatsTest, ClearResets) {
  NodeStats stats;
  stats.txns_committed = 3;
  stats.AddTime(TimeCategory::kAbort, 9);
  stats.latency.Record(1);
  stats.Clear();
  EXPECT_EQ(stats.txns_committed, 0u);
  EXPECT_EQ(stats.TimeIn(TimeCategory::kAbort), 0u);
  EXPECT_EQ(stats.latency.count(), 0u);
}

TEST(ClusterStatsTest, Throughput) {
  ClusterStats stats;
  stats.total.txns_committed = 5000;
  stats.duration_seconds = 2.0;
  EXPECT_DOUBLE_EQ(stats.Throughput(), 2500.0);
}

TEST(ClusterStatsTest, ThroughputWithZeroDuration) {
  ClusterStats stats;
  stats.total.txns_committed = 5;
  EXPECT_DOUBLE_EQ(stats.Throughput(), 0.0);
}

TEST(ClusterStatsTest, AbortRate) {
  ClusterStats stats;
  stats.total.txns_committed = 100;
  stats.total.txns_aborted = 25;
  EXPECT_DOUBLE_EQ(stats.AbortRate(), 0.25);
  ClusterStats empty;
  EXPECT_DOUBLE_EQ(empty.AbortRate(), 0.0);
}

TEST(ClusterStatsTest, TimeFractionsSumToOne) {
  ClusterStats stats;
  stats.total.AddTime(TimeCategory::kUsefulWork, 30);
  stats.total.AddTime(TimeCategory::kCommit, 50);
  stats.total.AddTime(TimeCategory::kIdle, 20);
  double sum = 0;
  for (size_t i = 0; i < kNumTimeCategories; ++i) {
    sum += stats.TimeFraction(static_cast<TimeCategory>(i));
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.TimeFraction(TimeCategory::kCommit), 0.5);
}

TEST(ClusterStatsTest, TimeFractionOfEmptyIsZero) {
  ClusterStats stats;
  EXPECT_DOUBLE_EQ(stats.TimeFraction(TimeCategory::kIdle), 0.0);
}

}  // namespace
}  // namespace ecdb
