// Integration tests: the full simulated distributed database (execution
// engine + concurrency control + commit protocols + workloads) running
// end-to-end, with and without failures.

#include "cluster/sim_cluster.h"

#include <memory>

#include <gtest/gtest.h>

#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace ecdb {
namespace {

ClusterConfig SmallCluster(CommitProtocol protocol) {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.clients_per_node = 8;
  cfg.protocol = protocol;
  cfg.seed = 1234;
  return cfg;
}

YcsbConfig SmallYcsb(uint32_t partitions) {
  YcsbConfig cfg;
  cfg.num_partitions = partitions;
  cfg.rows_per_partition = 8192;
  cfg.theta = 0.5;
  return cfg;
}

class SimClusterProtocolTest
    : public ::testing::TestWithParam<CommitProtocol> {};

TEST_P(SimClusterProtocolTest, CommitsTransactionsWithoutViolations) {
  SimCluster cluster(SmallCluster(GetParam()),
                     std::make_unique<YcsbWorkload>(SmallYcsb(4)));
  cluster.Start();
  cluster.RunFor(0.2);
  cluster.BeginMeasurement();
  cluster.RunFor(0.5);
  const ClusterStats stats = cluster.CollectStats(0.5);
  EXPECT_GT(stats.total.txns_committed, 100u);
  EXPECT_GT(stats.total.commit_protocol_runs, 0u);
  EXPECT_EQ(stats.total.txns_blocked, 0u);
  EXPECT_TRUE(cluster.monitor().Violations().empty());
}

TEST_P(SimClusterProtocolTest, LatencyIsMeasured) {
  SimCluster cluster(SmallCluster(GetParam()),
                     std::make_unique<YcsbWorkload>(SmallYcsb(4)));
  cluster.Start();
  cluster.RunFor(0.2);
  cluster.BeginMeasurement();
  cluster.RunFor(0.3);
  const ClusterStats stats = cluster.CollectStats(0.3);
  EXPECT_GT(stats.total.latency.count(), 0u);
  // A multi-partition transaction needs at least two network round trips.
  EXPECT_GT(stats.total.latency.Percentile(0.5),
            2 * cluster.config().network.base_latency_us);
}

TEST_P(SimClusterProtocolTest, TimeBreakdownCoversAllCategories) {
  SimCluster cluster(SmallCluster(GetParam()),
                     std::make_unique<YcsbWorkload>(SmallYcsb(4)));
  cluster.Start();
  cluster.RunFor(0.2);
  cluster.BeginMeasurement();
  cluster.RunFor(0.5);
  const ClusterStats stats = cluster.CollectStats(0.5);
  EXPECT_GT(stats.total.TimeIn(TimeCategory::kUsefulWork), 0u);
  EXPECT_GT(stats.total.TimeIn(TimeCategory::kIndex), 0u);
  EXPECT_GT(stats.total.TimeIn(TimeCategory::kTxnManager), 0u);
  EXPECT_GT(stats.total.TimeIn(TimeCategory::kCommit), 0u);
  EXPECT_GT(stats.total.TimeIn(TimeCategory::kOverhead), 0u);
  double sum = 0;
  for (size_t i = 0; i < kNumTimeCategories; ++i) {
    sum += stats.TimeFraction(static_cast<TimeCategory>(i));
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SimClusterProtocolTest,
                         ::testing::Values(CommitProtocol::kTwoPhase,
                                           CommitProtocol::kThreePhase,
                                           CommitProtocol::kEasyCommit),
                         [](const auto& info) { return ToString(info.param); });

TEST(SimClusterTest, DeterministicForSameSeed) {
  auto run = [] {
    SimCluster cluster(SmallCluster(CommitProtocol::kEasyCommit),
                       std::make_unique<YcsbWorkload>(SmallYcsb(4)));
    cluster.Start();
    cluster.RunFor(0.3);
    cluster.BeginMeasurement();
    cluster.RunFor(0.3);
    return cluster.CollectStats(0.3).total.txns_committed;
  };
  EXPECT_EQ(run(), run());
}

TEST(SimClusterTest, ReadOnlyWorkloadSkipsCommitProtocol) {
  ClusterConfig cfg = SmallCluster(CommitProtocol::kEasyCommit);
  YcsbConfig ycfg = SmallYcsb(4);
  ycfg.write_fraction = 0.0;
  SimCluster cluster(cfg, std::make_unique<YcsbWorkload>(ycfg));
  cluster.Start();
  cluster.RunFor(0.5);
  uint64_t committed = 0, protocol_runs = 0;
  for (NodeId id = 0; id < 4; ++id) {
    committed += cluster.node(id).stats().txns_committed;
    protocol_runs += cluster.node(id).stats().commit_protocol_runs;
  }
  EXPECT_GT(committed, 100u);
  EXPECT_EQ(protocol_runs, 0u);  // Section 5.2: read-only txns skip it
}

TEST(SimClusterTest, SinglePartitionTxnsSkipCommitProtocol) {
  ClusterConfig cfg = SmallCluster(CommitProtocol::kTwoPhase);
  YcsbConfig ycfg = SmallYcsb(4);
  ycfg.partitions_per_txn = 1;
  SimCluster cluster(cfg, std::make_unique<YcsbWorkload>(ycfg));
  cluster.Start();
  cluster.RunFor(0.5);
  uint64_t committed = 0, protocol_runs = 0;
  for (NodeId id = 0; id < 4; ++id) {
    committed += cluster.node(id).stats().txns_committed;
    protocol_runs += cluster.node(id).stats().commit_protocol_runs;
  }
  EXPECT_GT(committed, 100u);
  EXPECT_EQ(protocol_runs, 0u);
  EXPECT_EQ(cluster.network().stats().messages_sent, 0u);  // all local
}

TEST(SimClusterTest, ContentionCausesAborts) {
  ClusterConfig cfg = SmallCluster(CommitProtocol::kEasyCommit);
  YcsbConfig ycfg = SmallYcsb(4);
  ycfg.rows_per_partition = 64;  // tiny hot set
  ycfg.theta = 0.9;
  SimCluster cluster(cfg, std::make_unique<YcsbWorkload>(ycfg));
  cluster.Start();
  cluster.RunFor(0.5);
  uint64_t aborted = 0;
  for (NodeId id = 0; id < 4; ++id) {
    aborted += cluster.node(id).stats().txns_aborted;
  }
  EXPECT_GT(aborted, 0u);
  EXPECT_TRUE(cluster.monitor().Violations().empty());
}

TEST(SimClusterTest, AtomicityAllOrNothingUnderContention) {
  // Every committed write bumps a row version exactly once; with undo on
  // abort, the sum of versions equals the number of committed writes.
  // (A cheap whole-database atomicity check.)
  ClusterConfig cfg = SmallCluster(CommitProtocol::kEasyCommit);
  cfg.clients_per_node = 8;
  YcsbConfig ycfg = SmallYcsb(4);
  ycfg.rows_per_partition = 256;
  ycfg.theta = 0.8;
  ycfg.write_fraction = 1.0;
  YcsbWorkload* ycsb = new YcsbWorkload(ycfg);
  SimCluster cluster(cfg, std::unique_ptr<Workload>(ycsb));
  cluster.Start();
  cluster.RunFor(0.4);
  // Stop issuing new work by draining: run until in-flight txns settle.
  // (Clients are closed-loop, so instead compare version sums to committed
  // write counts after a quiescent barrier: freeze by crashing clients is
  // intrusive; we instead run and account exactly.)
  cluster.RunFor(0.1);
  // Committed writes: 10 ops * write_fraction 1.0 per committed txn...
  // except some committed ops may target the same row (versions still
  // bump per write). Count versions and compare with a lower bound.
  uint64_t version_sum = 0;
  for (NodeId id = 0; id < 4; ++id) {
    Table* table = cluster.node(id).store().GetTable(YcsbWorkload::kTableId);
    for (uint64_t row = 0; row < ycfg.rows_per_partition; ++row) {
      version_sum += table->Get(ycsb->EncodeKey(id, row)).value()->version;
    }
  }
  uint64_t committed = 0;
  for (NodeId id = 0; id < 4; ++id) {
    committed += cluster.node(id).stats().txns_committed;
  }
  // In-flight transactions at the instant of measurement blur the exact
  // equality; committed writes dominate, so the version sum must be close
  // to 10 * committed (within the in-flight population).
  const uint64_t expected = committed * 10;
  const uint64_t in_flight_bound = 4ull * cfg.clients_per_node * 10;
  EXPECT_GE(version_sum + in_flight_bound, expected);
  EXPECT_LE(version_sum, expected + in_flight_bound);
}

TEST(SimClusterTest, TpccRunsEndToEnd) {
  ClusterConfig cfg = SmallCluster(CommitProtocol::kEasyCommit);
  TpccConfig tcfg;
  tcfg.num_partitions = 4;
  tcfg.warehouses_per_partition = 2;
  tcfg.customers_per_district = 32;
  tcfg.items = 256;
  SimCluster cluster(cfg, std::make_unique<TpccWorkload>(tcfg));
  cluster.Start();
  cluster.RunFor(0.2);
  cluster.BeginMeasurement();
  cluster.RunFor(0.5);
  const ClusterStats stats = cluster.CollectStats(0.5);
  EXPECT_GT(stats.total.txns_committed, 100u);
  // TPC-C is mostly single-partition: protocol runs well below commits.
  EXPECT_LT(stats.total.commit_protocol_runs, stats.total.txns_committed);
  EXPECT_GT(stats.total.commit_protocol_runs, 0u);
  EXPECT_TRUE(cluster.monitor().Violations().empty());
}

// ---------------------------------------------------------------------------
// Failures in the full system
// ---------------------------------------------------------------------------

TEST(SimClusterFailureTest, EasyCommitSurvivesCoordinatorCrash) {
  ClusterConfig cfg = SmallCluster(CommitProtocol::kEasyCommit);
  cfg.commit.keep_decision_ledger = true;
  SimCluster cluster(cfg, std::make_unique<YcsbWorkload>(SmallYcsb(4)));
  cluster.Start();
  cluster.RunFor(0.2);
  cluster.CrashNode(0);
  cluster.RunFor(0.5);  // survivors keep processing
  uint64_t blocked = 0, committed_after = 0;
  for (NodeId id = 1; id < 4; ++id) {
    blocked += cluster.node(id).stats().txns_blocked;
    committed_after += cluster.node(id).stats().txns_committed;
  }
  EXPECT_EQ(blocked, 0u);  // EC never blocks
  EXPECT_GT(committed_after, 0u);
  EXPECT_TRUE(cluster.monitor().Violations().empty());
  // Survivors hold no leaked protocol state for dead transactions.
  for (NodeId id = 1; id < 4; ++id) {
    EXPECT_LT(cluster.node(id).engine().ActiveCount(), 64u);
  }
}

TEST(SimClusterFailureTest, TwoPhaseCommitCanBlockOnDoubleCrash) {
  ClusterConfig cfg = SmallCluster(CommitProtocol::kTwoPhase);
  cfg.commit.keep_decision_ledger = true;
  cfg.num_nodes = 4;
  SimCluster cluster(cfg, std::make_unique<YcsbWorkload>(SmallYcsb(4)));
  cluster.Start();
  cluster.RunFor(0.2);
  // Crash two nodes close together mid-traffic.
  cluster.CrashNode(0);
  cluster.CrashNode(1);
  cluster.RunFor(0.5);
  // Blocking is schedule-dependent; the essential assertions are safety
  // and the absence of crashes. (The deterministic blocking scenario is
  // covered by the protocol-level tests.)
  EXPECT_TRUE(cluster.monitor().Violations().empty());
}

TEST(SimClusterFailureTest, CrashedNodeRecoversAndResolvesInFlight) {
  ClusterConfig cfg = SmallCluster(CommitProtocol::kEasyCommit);
  cfg.commit.keep_decision_ledger = true;
  SimCluster cluster(cfg, std::make_unique<YcsbWorkload>(SmallYcsb(4)));
  cluster.Start();
  cluster.RunFor(0.2);
  cluster.CrashNode(2);
  cluster.RunFor(0.2);
  cluster.RecoverNode(2);
  cluster.RunFor(0.5);
  // The recovered node resolved its in-flight transactions consistently:
  // no conflicting decisions recorded anywhere.
  EXPECT_TRUE(cluster.monitor().Violations().empty());
  // And the WAL of node 2 has no permanently unresolved entries flagged
  // as decisions without terminal records... (spot check: recovery ran).
  EXPECT_FALSE(cluster.node(2).crashed());
}

TEST(SimClusterFailureTest, ClusterKeepsCommittingAfterRecovery) {
  ClusterConfig cfg = SmallCluster(CommitProtocol::kEasyCommit);
  cfg.commit.keep_decision_ledger = true;
  SimCluster cluster(cfg, std::make_unique<YcsbWorkload>(SmallYcsb(4)));
  cluster.Start();
  cluster.RunFor(0.2);
  cluster.CrashNode(3);
  cluster.RunFor(0.3);
  cluster.RecoverNode(3);
  cluster.node(3).StartClients();
  cluster.BeginMeasurement();
  cluster.RunFor(0.3);
  const ClusterStats stats = cluster.CollectStats(0.3);
  EXPECT_GT(stats.total.txns_committed, 50u);
  EXPECT_TRUE(cluster.monitor().Violations().empty());
}

}  // namespace
}  // namespace ecdb
