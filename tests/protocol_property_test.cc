// Exhaustive failure-injection sweeps over the commit protocols: for every
// crash point (each message delivery, each message send, and pairs of
// them), run a transaction to quiescence and check the paper's claims:
//
//  * Theorem 3.1 (safety): no two nodes ever apply conflicting decisions —
//    for 2PC, 3PC and EC under node failures.
//  * Theorem 3.2 (liveness / non-blocking): under EC (and 3PC) every
//    active node reaches a decision; 2PC has schedules that block.
//  * Ablation: with decision forwarding disabled ("EC-noforward"), safety
//    violations appear — quantifying the necessity of insight (ii).

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "protocol_harness.h"

namespace ecdb {
namespace testing {
namespace {

NetworkConfig SweepNet() {
  NetworkConfig net;
  net.base_latency_us = 100;
  net.jitter_us = 7;  // nonzero so message orders interleave
  return net;
}

struct CrashPoint {
  NodeId node = kInvalidNode;
  uint64_t at = 0;  // event index (delivery or send count)
};

enum class CrashOn { kDelivery, kSend };

struct SweepOutcome {
  uint64_t schedules = 0;
  uint64_t violations = 0;  // schedules with conflicting decisions
  uint64_t blocked = 0;     // schedules where some active node blocked
  uint64_t undecided = 0;   // schedules where an active node never decided
};

/// Runs one transaction under `protocol` with up to two crash injections
/// and reports what happened.
struct RunResult {
  bool violation = false;
  bool blocked = false;
  bool all_active_decided = true;
};

RunResult RunOnce(CommitProtocol protocol, uint32_t n, CrashOn mode,
                  const std::vector<CrashPoint>& crashes,
                  Decision last_cohort_vote) {
  ProtocolTestbed bed(protocol, n, SweepNet());
  bed.host(n - 1).set_vote(last_cohort_vote);

  uint64_t counter = 0;
  auto hook = [&, mode](const Message& msg) {
    counter++;
    bool deliver = true;
    for (const CrashPoint& cp : crashes) {
      if (counter == cp.at) {
        bed.network().CrashNode(cp.node);
        // Fail-stop semantics: a crashed node loses only its own
        // receptions (delivery mode) or its own un-issued sends (send
        // mode). Messages it already put on the wire still arrive;
        // dropping those would model message loss, under which no commit
        // protocol is safe (Section 4.1).
        if (mode == CrashOn::kDelivery && msg.dst == cp.node) {
          deliver = false;
        }
        if (mode == CrashOn::kSend && msg.src == cp.node) {
          deliver = false;
        }
      }
    }
    return deliver;
  };
  if (mode == CrashOn::kDelivery) {
    bed.network().SetDeliveryInterceptor(hook);
  } else {
    bed.network().SetSendFilter(hook);
  }

  const TxnId txn = bed.StartAll();
  bed.Settle(200'000);

  RunResult result;
  result.violation = !bed.monitor().Violations().empty();
  result.blocked = bed.monitor().blocked_reports() > 0;
  for (NodeId id = 0; id < n; ++id) {
    if (bed.network().IsCrashed(id)) continue;
    if (!bed.host(id).applied(txn).has_value() &&
        bed.host(id).blocked_count() == 0) {
      result.all_active_decided = false;
    }
  }
  return result;
}

/// Counts the fault-free event total so the sweep knows its range.
uint64_t BaselineEvents(CommitProtocol protocol, uint32_t n, CrashOn mode,
                        Decision last_vote) {
  ProtocolTestbed bed(protocol, n, SweepNet());
  bed.host(n - 1).set_vote(last_vote);
  uint64_t counter = 0;
  auto count_hook = [&](const Message&) {
    counter++;
    return true;
  };
  if (mode == CrashOn::kDelivery) {
    bed.network().SetDeliveryInterceptor(count_hook);
  } else {
    bed.network().SetSendFilter(count_hook);
  }
  bed.StartAll();
  bed.Settle(200'000);
  return counter;
}

SweepOutcome SingleCrashSweep(CommitProtocol protocol, uint32_t n,
                              CrashOn mode,
                              Decision last_vote = Decision::kCommit) {
  SweepOutcome outcome;
  const uint64_t events = BaselineEvents(protocol, n, mode, last_vote);
  for (NodeId node = 0; node < n; ++node) {
    for (uint64_t at = 1; at <= events; ++at) {
      const RunResult r =
          RunOnce(protocol, n, mode, {{node, at}}, last_vote);
      outcome.schedules++;
      if (r.violation) outcome.violations++;
      if (r.blocked) outcome.blocked++;
      if (!r.all_active_decided) outcome.undecided++;
    }
  }
  return outcome;
}

SweepOutcome DualCrashSweep(CommitProtocol protocol, uint32_t n,
                            CrashOn mode) {
  SweepOutcome outcome;
  const uint64_t events =
      BaselineEvents(protocol, n, mode, Decision::kCommit);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      for (uint64_t at_a = 1; at_a <= events; ++at_a) {
        for (uint64_t at_b = at_a; at_b <= events; ++at_b) {
          const RunResult r = RunOnce(protocol, n, mode,
                                      {{a, at_a}, {b, at_b}},
                                      Decision::kCommit);
          outcome.schedules++;
          if (r.violation) outcome.violations++;
          if (r.blocked) outcome.blocked++;
          if (!r.all_active_decided) outcome.undecided++;
        }
      }
    }
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// Safety: Theorem 3.1 (plus the classic results for 2PC/3PC)
// ---------------------------------------------------------------------------

struct SweepParam {
  CommitProtocol protocol;
  uint32_t n;
  CrashOn mode;
};

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name = ToString(info.param.protocol);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  name += "_n" + std::to_string(info.param.n);
  name += info.param.mode == CrashOn::kDelivery ? "_delivery" : "_send";
  return name;
}

class SingleCrashTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SingleCrashTest, SafeUnderEverySingleCrash) {
  const SweepParam p = GetParam();
  const SweepOutcome outcome = SingleCrashSweep(p.protocol, p.n, p.mode);
  EXPECT_GT(outcome.schedules, 0u);
  EXPECT_EQ(outcome.violations, 0u)
      << ToString(p.protocol) << " violated safety under a single crash";
}

TEST_P(SingleCrashTest, SafeWhenACohortVotesAbort) {
  const SweepParam p = GetParam();
  const SweepOutcome outcome =
      SingleCrashSweep(p.protocol, p.n, p.mode, Decision::kAbort);
  EXPECT_EQ(outcome.violations, 0u);
}

TEST_P(SingleCrashTest, NonBlockingProtocolsDecideEverywhere) {
  const SweepParam p = GetParam();
  if (p.protocol == CommitProtocol::kTwoPhase ||
      p.protocol == CommitProtocol::kTwoPhasePresumedAbort ||
      p.protocol == CommitProtocol::kTwoPhasePresumedCommit) {
    GTEST_SKIP() << "2PC-family protocols are blocking; covered by "
                    "TwoPcBlocking and presumed tests";
  }
  const SweepOutcome outcome = SingleCrashSweep(p.protocol, p.n, p.mode);
  EXPECT_EQ(outcome.blocked, 0u);
  EXPECT_EQ(outcome.undecided, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, SingleCrashTest,
    ::testing::Values(
        SweepParam{CommitProtocol::kTwoPhase, 3, CrashOn::kDelivery},
        SweepParam{CommitProtocol::kTwoPhase, 4, CrashOn::kDelivery},
        SweepParam{CommitProtocol::kTwoPhase, 3, CrashOn::kSend},
        SweepParam{CommitProtocol::kThreePhase, 3, CrashOn::kDelivery},
        SweepParam{CommitProtocol::kThreePhase, 4, CrashOn::kDelivery},
        SweepParam{CommitProtocol::kThreePhase, 3, CrashOn::kSend},
        SweepParam{CommitProtocol::kEasyCommit, 2, CrashOn::kDelivery},
        SweepParam{CommitProtocol::kEasyCommit, 3, CrashOn::kDelivery},
        SweepParam{CommitProtocol::kEasyCommit, 4, CrashOn::kDelivery},
        SweepParam{CommitProtocol::kEasyCommit, 3, CrashOn::kSend},
        SweepParam{CommitProtocol::kEasyCommit, 4, CrashOn::kSend},
        SweepParam{CommitProtocol::kTwoPhasePresumedAbort, 3,
                   CrashOn::kDelivery},
        SweepParam{CommitProtocol::kTwoPhasePresumedAbort, 4,
                   CrashOn::kSend},
        SweepParam{CommitProtocol::kTwoPhasePresumedCommit, 3,
                   CrashOn::kDelivery},
        SweepParam{CommitProtocol::kTwoPhasePresumedCommit, 4,
                   CrashOn::kSend}),
    SweepName);

class DualCrashTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DualCrashTest, SafeUnderEveryCrashPair) {
  const SweepParam p = GetParam();
  const SweepOutcome outcome = DualCrashSweep(p.protocol, p.n, p.mode);
  EXPECT_GT(outcome.schedules, 0u);
  EXPECT_EQ(outcome.violations, 0u)
      << ToString(p.protocol) << " violated safety under a crash pair";
}

TEST_P(DualCrashTest, EasyCommitNeverBlocksUnderCrashPairs) {
  const SweepParam p = GetParam();
  if (p.protocol != CommitProtocol::kEasyCommit) {
    GTEST_SKIP() << "blocking bound asserted for EC only";
  }
  const SweepOutcome outcome = DualCrashSweep(p.protocol, p.n, p.mode);
  EXPECT_EQ(outcome.blocked, 0u);
  EXPECT_EQ(outcome.undecided, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, DualCrashTest,
    ::testing::Values(
        SweepParam{CommitProtocol::kTwoPhase, 3, CrashOn::kDelivery},
        SweepParam{CommitProtocol::kEasyCommit, 3, CrashOn::kDelivery},
        SweepParam{CommitProtocol::kEasyCommit, 3, CrashOn::kSend},
        SweepParam{CommitProtocol::kThreePhase, 3, CrashOn::kDelivery}),
    SweepName);

// ---------------------------------------------------------------------------
// Liveness contrast: 2PC blocks, EC does not, on the same schedule space
// ---------------------------------------------------------------------------

TEST(TwoPcBlockingTest, DualCrashesBlockTwoPcButNeverEasyCommit) {
  const SweepOutcome two_pc =
      DualCrashSweep(CommitProtocol::kTwoPhase, 3, CrashOn::kSend);
  const SweepOutcome ec =
      DualCrashSweep(CommitProtocol::kEasyCommit, 3, CrashOn::kSend);
  // The motivating example exists somewhere in this space: 2PC blocks.
  EXPECT_GT(two_pc.blocked, 0u);
  // EC terminates every active node on the identical schedule space.
  EXPECT_EQ(ec.blocked, 0u);
  EXPECT_EQ(ec.undecided, 0u);
}

TEST(TwoPcBlockingTest, SingleCohortCrashDoesNotBlockTwoPc) {
  // When only a *cohort* fails, the coordinator stays available: it either
  // times out in WAIT (aborts) or completes the protocol. No survivor
  // blocks.
  const uint32_t n = 4;
  const uint64_t events =
      BaselineEvents(CommitProtocol::kTwoPhase, n, CrashOn::kDelivery,
                     Decision::kCommit);
  for (NodeId cohort = 1; cohort < n; ++cohort) {
    for (uint64_t at = 1; at <= events; ++at) {
      const RunResult r = RunOnce(CommitProtocol::kTwoPhase, n,
                                  CrashOn::kDelivery, {{cohort, at}},
                                  Decision::kCommit);
      EXPECT_FALSE(r.blocked) << "cohort " << cohort << " at " << at;
      EXPECT_TRUE(r.all_active_decided)
          << "cohort " << cohort << " at " << at;
    }
  }
}

TEST(TwoPcBlockingTest, CoordinatorCrashBeforeDecisionBlocksTwoPcOnly) {
  // The classical 2PC weakness: the coordinator fails while every cohort
  // is in READY. The cohorts cannot distinguish "commit decided and
  // unsent" from "nothing decided", so they block. EC survivors instead
  // abort safely (the coordinator cannot have committed without
  // completing its transmission).
  uint64_t two_pc_blocked = 0;
  const uint64_t events =
      BaselineEvents(CommitProtocol::kTwoPhase, 3, CrashOn::kDelivery,
                     Decision::kCommit);
  for (uint64_t at = 1; at <= events; ++at) {
    const RunResult two_pc = RunOnce(CommitProtocol::kTwoPhase, 3,
                                     CrashOn::kDelivery, {{0, at}},
                                     Decision::kCommit);
    if (two_pc.blocked) two_pc_blocked++;
    const RunResult ec = RunOnce(CommitProtocol::kEasyCommit, 3,
                                 CrashOn::kDelivery, {{0, at}},
                                 Decision::kCommit);
    EXPECT_FALSE(ec.blocked) << "EC blocked at " << at;
    EXPECT_TRUE(ec.all_active_decided) << "EC undecided at " << at;
    EXPECT_FALSE(ec.violation) << "EC violation at " << at;
  }
  EXPECT_GT(two_pc_blocked, 0u);
}

// ---------------------------------------------------------------------------
// Ablation: forwarding is what makes EC safe
// ---------------------------------------------------------------------------

// Runs the paper's motivating scenario shape against a protocol variant:
// the coordinator's decision broadcast is truncated after the copy to
// cohort `x`, and `x` itself fail-stops immediately after applying the
// decision. Returns the number of (x, truncation point) schedules whose
// surviving nodes ended in a state conflicting with x's.
uint64_t CrashAfterApplySweep(CommitProtocol protocol, uint32_t n,
                              uint64_t* blocked_out = nullptr) {
  uint64_t violations = 0;
  uint64_t blocked = 0;
  for (NodeId x = 1; x < n; ++x) {
    ProtocolTestbed bed(protocol, n, SweepNet());
    bed.host(x).set_crash_after_apply(true);
    bed.network().SetSendFilter([&](const Message& msg) {
      const bool decision = msg.type == MsgType::kGlobalCommit ||
                            msg.type == MsgType::kGlobalAbort;
      if (decision && msg.src == 0 && !msg.forwarded && msg.dst != x) {
        bed.network().CrashNode(0);  // truncated broadcast
        return false;
      }
      return true;
    });
    bed.StartAll();
    bed.Settle(200'000);
    if (!bed.monitor().Violations().empty()) violations++;
    if (bed.monitor().blocked_reports() > 0) blocked++;
  }
  if (blocked_out != nullptr) *blocked_out = blocked;
  return violations;
}

TEST(ForwardingAblationTest, DisablingForwardingBreaksSafety) {
  // Without cohort-to-cohort forwarding, the cohort that received the
  // truncated broadcast commits and dies without redistributing the
  // decision; the survivors' termination protocol aborts => conflicting
  // states. Real EC forwards *before* applying, so the survivors learn
  // the commit and no schedule conflicts.
  EXPECT_GT(CrashAfterApplySweep(CommitProtocol::kEasyCommitNoForward, 3),
            0u)
      << "expected the no-forwarding ablation to violate safety somewhere";
  EXPECT_EQ(CrashAfterApplySweep(CommitProtocol::kEasyCommit, 3), 0u);
  EXPECT_EQ(CrashAfterApplySweep(CommitProtocol::kEasyCommit, 4), 0u);
}

TEST(ForwardingAblationTest, TwoPcBlocksOnTheSameScenario) {
  uint64_t blocked = 0;
  const uint64_t violations =
      CrashAfterApplySweep(CommitProtocol::kTwoPhase, 3, &blocked);
  EXPECT_EQ(violations, 0u);  // blocked, not inconsistent
  EXPECT_GT(blocked, 0u);
}

}  // namespace
}  // namespace testing
}  // namespace ecdb
