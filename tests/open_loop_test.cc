// Open-loop load model tests: the arrival generator, admission control,
// the conservation law, and deterministic replay.
//
// The conservation law is the load-model's ledger: every arrival is
// counted exactly once as offered, and — once the cluster drains — ends in
// exactly one of {committed, rejected at admission, terminally aborted}.
// Any double-count or leak (a slot lost, a retry forgotten, a crash
// swallowing an admitted transaction) breaks the equality.

#include "workload/open_loop.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/sim_cluster.h"
#include "workload/ycsb.h"

namespace ecdb {
namespace {

ClusterConfig OpenLoopCluster(double rate_per_node,
                              uint32_t max_in_flight = 64) {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.protocol = CommitProtocol::kEasyCommit;
  cfg.seed = 1234;
  cfg.open_loop.enabled = true;
  cfg.open_loop.arrivals_per_sec_per_node = rate_per_node;
  cfg.open_loop.max_in_flight_per_node = max_in_flight;
  return cfg;
}

YcsbConfig SmallYcsb(uint32_t partitions) {
  YcsbConfig cfg;
  cfg.num_partitions = partitions;
  cfg.rows_per_partition = 8192;
  cfg.theta = 0.5;
  return cfg;
}

struct OpenLoopTotals {
  uint64_t offered = 0;
  uint64_t committed = 0;
  uint64_t rejected = 0;
  uint64_t aborted = 0;  // terminal
  size_t in_flight = 0;
};

OpenLoopTotals Totals(SimCluster& cluster) {
  OpenLoopTotals t;
  for (NodeId id = 0; id < cluster.num_nodes(); ++id) {
    const SimNode& node = cluster.node(id);
    t.offered += node.stats().open_loop_offered;
    t.committed += node.stats().txns_committed;
    t.rejected += node.stats().open_loop_rejected;
    t.aborted += node.stats().open_loop_aborted;
    t.in_flight += node.InFlightClientCount();
  }
  return t;
}

// --------------------------------------------------------------------------
// Arrival generator
// --------------------------------------------------------------------------

TEST(ArrivalScheduleTest, SameSeedSameGapSequence) {
  OpenLoopConfig cfg;
  cfg.arrivals_per_sec_per_node = 2000.0;
  ArrivalSchedule a(cfg, 77);
  ArrivalSchedule b(cfg, 77);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextGapUs(), b.NextGapUs()) << "gap #" << i;
  }
}

TEST(ArrivalScheduleTest, FixedRateGapsAverageToExactRate) {
  OpenLoopConfig cfg;
  cfg.process = ArrivalProcess::kFixedRate;
  cfg.arrivals_per_sec_per_node = 3000.0;  // mean gap 333.3us: not integral
  ArrivalSchedule sched(cfg, 1);
  uint64_t total = 0;
  constexpr int kGaps = 30000;
  for (int i = 0; i < kGaps; ++i) total += sched.NextGapUs();
  // The fractional carry keeps the long-run rate exact: 30000 gaps at
  // 1000/3 us each must sum to 10^7 us, +/- one carried microsecond.
  EXPECT_NEAR(static_cast<double>(total), 1e7, 1.0);
}

TEST(ArrivalScheduleTest, PoissonGapsHaveConfiguredMean) {
  OpenLoopConfig cfg;
  cfg.arrivals_per_sec_per_node = 1000.0;  // mean gap 1000us
  ArrivalSchedule sched(cfg, 42);
  uint64_t total = 0;
  constexpr int kGaps = 50000;
  for (int i = 0; i < kGaps; ++i) total += sched.NextGapUs();
  const double mean = static_cast<double>(total) / kGaps;
  EXPECT_NEAR(mean, 1000.0, 20.0);  // ~2% tolerance at 50k draws
}

// --------------------------------------------------------------------------
// Conservation law
// --------------------------------------------------------------------------

TEST(OpenLoopSimTest, ConservationHoldsMidRunAndAtDrain) {
  SimCluster cluster(OpenLoopCluster(/*rate_per_node=*/2000.0),
                     std::make_unique<YcsbWorkload>(SmallYcsb(4)));
  cluster.Start();
  cluster.RunFor(0.3);

  // Mid-run: in-flight transactions are the (only) open positions.
  OpenLoopTotals mid = Totals(cluster);
  EXPECT_GT(mid.offered, 1000u);
  EXPECT_EQ(mid.offered,
            mid.committed + mid.rejected + mid.aborted + mid.in_flight);

  // Quiesce ends the arrival streams; draining closes every position.
  cluster.Quiesce();
  cluster.RunToQuiescence();
  OpenLoopTotals end = Totals(cluster);
  EXPECT_EQ(end.in_flight, 0u);
  EXPECT_EQ(end.offered, end.committed + end.rejected + end.aborted);
  EXPECT_GT(end.committed, 0u);
  EXPECT_TRUE(cluster.monitor().Violations().empty());
}

TEST(OpenLoopSimTest, AdmissionControlShedsWhenSaturated) {
  // A tiny admission window under a flood: most arrivals must be shed,
  // and the per-node occupancy may never exceed the cap.
  SimCluster cluster(
      OpenLoopCluster(/*rate_per_node=*/50'000.0, /*max_in_flight=*/2),
      std::make_unique<YcsbWorkload>(SmallYcsb(4)));
  cluster.Start();
  cluster.RunFor(0.2);
  OpenLoopTotals mid = Totals(cluster);
  EXPECT_GT(mid.rejected, 0u);
  for (NodeId id = 0; id < cluster.num_nodes(); ++id) {
    EXPECT_LE(cluster.node(id).InFlightClientCount(), 2u);
  }
  cluster.Quiesce();
  cluster.RunToQuiescence();
  OpenLoopTotals end = Totals(cluster);
  EXPECT_EQ(end.offered, end.committed + end.rejected + end.aborted);
}

TEST(OpenLoopSimTest, ConservationSurvivesCrashAndRecovery) {
  SimCluster cluster(OpenLoopCluster(/*rate_per_node=*/2000.0),
                     std::make_unique<YcsbWorkload>(SmallYcsb(4)));
  cluster.Start();
  cluster.RunFor(0.15);
  // The crash kills node 1's admitted in-flight transactions (counted as
  // terminal aborts) and its pending arrival event; recovery restarts the
  // arrival stream.
  cluster.CrashNode(1);
  cluster.RunFor(0.1);
  cluster.RecoverNode(1);
  cluster.RunFor(0.15);
  cluster.Quiesce();
  cluster.RunToQuiescence();
  OpenLoopTotals end = Totals(cluster);
  EXPECT_EQ(end.in_flight, 0u);
  EXPECT_EQ(end.offered, end.committed + end.rejected + end.aborted);
  // The recovered node resumed generating load after the crash.
  EXPECT_GT(cluster.node(1).stats().open_loop_offered, 0u);
  EXPECT_TRUE(cluster.monitor().Violations().empty());
}

// --------------------------------------------------------------------------
// Deterministic replay
// --------------------------------------------------------------------------

struct ReplayResult {
  std::vector<uint64_t> deliveries;  // packed (time, type, src, dst)
  OpenLoopTotals totals;
  Micros final_now = 0;
};

ReplayResult RunReplayScenario() {
  SimCluster cluster(OpenLoopCluster(/*rate_per_node=*/1500.0),
                     std::make_unique<YcsbWorkload>(SmallYcsb(4)));
  ReplayResult r;
  cluster.network().SetDeliveryInterceptor([&](const Message& m) {
    r.deliveries.push_back((cluster.scheduler().Now() << 20) ^
                           (static_cast<uint64_t>(m.type) << 12) ^
                           (static_cast<uint64_t>(m.src) << 6) ^
                           static_cast<uint64_t>(m.dst));
    return true;
  });
  cluster.Start();
  cluster.RunFor(0.2);
  cluster.Quiesce();
  cluster.RunToQuiescence();
  r.totals = Totals(cluster);
  r.final_now = cluster.scheduler().Now();
  return r;
}

TEST(OpenLoopSimTest, SameSeedAndRateReplayIdentically) {
  const ReplayResult a = RunReplayScenario();
  const ReplayResult b = RunReplayScenario();
  EXPECT_FALSE(a.deliveries.empty());
  EXPECT_EQ(a.deliveries, b.deliveries);  // full trace, not just counts
  EXPECT_EQ(a.final_now, b.final_now);
  EXPECT_EQ(a.totals.offered, b.totals.offered);
  EXPECT_EQ(a.totals.committed, b.totals.committed);
  EXPECT_EQ(a.totals.rejected, b.totals.rejected);
  EXPECT_EQ(a.totals.aborted, b.totals.aborted);
}

}  // namespace
}  // namespace ecdb
