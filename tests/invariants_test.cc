// Tests for the Figure 7 coexistence matrix and the safety monitor.

#include "commit/invariants.h"

#include <gtest/gtest.h>

namespace ecdb {
namespace {

TEST(ClassOfTest, MapsStatesToFigure6Classes) {
  EXPECT_EQ(ClassOf(CohortState::kInitial), StateClass::kUndecided);
  EXPECT_EQ(ClassOf(CohortState::kReady), StateClass::kUndecided);
  EXPECT_EQ(ClassOf(CohortState::kWait), StateClass::kUndecided);
  EXPECT_EQ(ClassOf(CohortState::kTransmitA), StateClass::kTransmitA);
  EXPECT_EQ(ClassOf(CohortState::kTransmitC), StateClass::kTransmitC);
  EXPECT_EQ(ClassOf(CohortState::kAborted), StateClass::kAbort);
  EXPECT_EQ(ClassOf(CohortState::kCommitted), StateClass::kCommit);
}

TEST(CoexistenceTest, MatchesFigure7Matrix) {
  using S = StateClass;
  // Row-by-row transcription of Figure 7.
  const S u = S::kUndecided, ta = S::kTransmitA, tc = S::kTransmitC,
          a = S::kAbort, c = S::kCommit;
  // UNDECIDED row: Y Y Y N N
  EXPECT_TRUE(CanCoexist(u, u));
  EXPECT_TRUE(CanCoexist(u, ta));
  EXPECT_TRUE(CanCoexist(u, tc));
  EXPECT_FALSE(CanCoexist(u, a));
  EXPECT_FALSE(CanCoexist(u, c));
  // T-A row: Y Y N Y N
  EXPECT_TRUE(CanCoexist(ta, u));
  EXPECT_TRUE(CanCoexist(ta, ta));
  EXPECT_FALSE(CanCoexist(ta, tc));
  EXPECT_TRUE(CanCoexist(ta, a));
  EXPECT_FALSE(CanCoexist(ta, c));
  // T-C row: Y N Y N Y
  EXPECT_TRUE(CanCoexist(tc, u));
  EXPECT_FALSE(CanCoexist(tc, ta));
  EXPECT_TRUE(CanCoexist(tc, tc));
  EXPECT_FALSE(CanCoexist(tc, a));
  EXPECT_TRUE(CanCoexist(tc, c));
  // ABORT row: N Y N Y N
  EXPECT_FALSE(CanCoexist(a, u));
  EXPECT_TRUE(CanCoexist(a, ta));
  EXPECT_FALSE(CanCoexist(a, tc));
  EXPECT_TRUE(CanCoexist(a, a));
  EXPECT_FALSE(CanCoexist(a, c));
  // COMMIT row: N N Y N Y
  EXPECT_FALSE(CanCoexist(c, u));
  EXPECT_FALSE(CanCoexist(c, ta));
  EXPECT_TRUE(CanCoexist(c, tc));
  EXPECT_FALSE(CanCoexist(c, a));
  EXPECT_TRUE(CanCoexist(c, c));
}

TEST(CoexistenceTest, MatrixIsSymmetric) {
  for (int a = 0; a < 5; ++a) {
    for (int b = 0; b < 5; ++b) {
      EXPECT_EQ(
          CanCoexist(static_cast<StateClass>(a), static_cast<StateClass>(b)),
          CanCoexist(static_cast<StateClass>(b), static_cast<StateClass>(a)))
          << a << " vs " << b;
    }
  }
}

TEST(CoexistenceTest, CommitAbortNeverCoexist) {
  EXPECT_FALSE(CanCoexist(StateClass::kCommit, StateClass::kAbort));
}

TEST(SafetyMonitorTest, ConsistentDecisionsAreClean) {
  SafetyMonitor monitor;
  monitor.RecordApplied(1, 0, Decision::kCommit);
  monitor.RecordApplied(1, 1, Decision::kCommit);
  monitor.RecordApplied(2, 0, Decision::kAbort);
  EXPECT_TRUE(monitor.Violations().empty());
}

TEST(SafetyMonitorTest, ConflictIsDetected) {
  SafetyMonitor monitor;
  monitor.RecordApplied(1, 0, Decision::kCommit);
  monitor.RecordApplied(1, 1, Decision::kAbort);
  const auto violations = monitor.Violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0], 1u);
}

TEST(SafetyMonitorTest, ConflictAcrossTxnsIsNotAConflict) {
  SafetyMonitor monitor;
  monitor.RecordApplied(1, 0, Decision::kCommit);
  monitor.RecordApplied(2, 0, Decision::kAbort);
  EXPECT_TRUE(monitor.Violations().empty());
}

TEST(SafetyMonitorTest, DecisionLookup) {
  SafetyMonitor monitor;
  monitor.RecordApplied(1, 3, Decision::kCommit);
  EXPECT_EQ(monitor.DecisionOf(1, 3), Decision::kCommit);
  EXPECT_FALSE(monitor.DecisionOf(1, 4).has_value());
  EXPECT_FALSE(monitor.DecisionOf(9, 3).has_value());
  EXPECT_EQ(monitor.AppliedFor(1).size(), 1u);
  EXPECT_TRUE(monitor.AppliedFor(9).empty());
}

TEST(SafetyMonitorTest, BlockedAccounting) {
  SafetyMonitor monitor;
  monitor.RecordBlocked(1, 0);
  monitor.RecordBlocked(1, 1);
  monitor.RecordBlocked(2, 0);
  EXPECT_EQ(monitor.blocked_reports(), 3u);
  EXPECT_EQ(monitor.BlockedTxnCount(), 2u);
}

}  // namespace
}  // namespace ecdb
