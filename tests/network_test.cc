// Unit tests for the simulated network and its fault injection.

#include "net/network.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/scheduler.h"

namespace ecdb {
namespace {

Message Make(NodeId src, NodeId dst, MsgType type = MsgType::kPrepare) {
  Message m;
  m.type = type;
  m.src = src;
  m.dst = dst;
  m.txn = MakeTxnId(src, 1);
  return m;
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(&sched_, Config(), 42) {
    for (NodeId id = 0; id < 4; ++id) {
      net_.RegisterNode(id, [this, id](const Message& msg) {
        received_.emplace_back(id, msg);
      });
    }
  }

  static NetworkConfig Config() {
    NetworkConfig cfg;
    cfg.base_latency_us = 100;
    cfg.jitter_us = 50;
    return cfg;
  }

  Scheduler sched_;
  SimNetwork net_;
  std::vector<std::pair<NodeId, Message>> received_;
};

TEST_F(NetworkTest, DeliversToDestination) {
  net_.Send(Make(0, 1));
  sched_.RunAll();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].first, 1u);
  EXPECT_EQ(received_[0].second.src, 0u);
}

TEST_F(NetworkTest, DeliveryRespectsLatencyBounds) {
  net_.Send(Make(0, 1));
  sched_.RunAll();
  EXPECT_GE(sched_.Now(), 100u);
  EXPECT_LE(sched_.Now(), 150u);
}

TEST_F(NetworkTest, CrashedDestinationDropsInFlightMessage) {
  net_.Send(Make(0, 1));
  net_.CrashNode(1);  // crash while in flight
  sched_.RunAll();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(net_.stats().messages_to_crashed, 1u);
}

TEST_F(NetworkTest, CrashedSourceCannotSend) {
  net_.CrashNode(0);
  net_.Send(Make(0, 1));
  sched_.RunAll();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(net_.stats().messages_from_crashed, 1u);
}

TEST_F(NetworkTest, CrashedSourceSendsAreNotCountedAsTraffic) {
  // A message from a crashed node never reaches the wire: it must count
  // ONLY in messages_from_crashed — not in messages_sent, bytes_sent or
  // the per-type histogram. (An earlier implementation bumped the send
  // counters before the crash check, inflating protocol message counts
  // in crash experiments; this pins the fix.)
  net_.CrashNode(0);
  net_.Send(Make(0, 1, MsgType::kVoteCommit));
  sched_.RunAll();

  EXPECT_EQ(net_.stats().messages_from_crashed, 1u);
  EXPECT_EQ(net_.stats().messages_sent, 0u);
  EXPECT_EQ(net_.stats().bytes_sent, 0u);
  EXPECT_EQ(net_.stats().per_type.at(MsgType::kVoteCommit), 0u);
  EXPECT_EQ(net_.stats().messages_dropped, 0u);
}

TEST_F(NetworkTest, LiveTrafficStillCountedAlongsideCrashedSends) {
  net_.CrashNode(0);
  net_.Send(Make(0, 1, MsgType::kVoteCommit));  // suppressed
  net_.Send(Make(2, 1, MsgType::kVoteCommit));  // live
  sched_.RunAll();

  EXPECT_EQ(net_.stats().messages_from_crashed, 1u);
  EXPECT_EQ(net_.stats().messages_sent, 1u);
  EXPECT_GT(net_.stats().bytes_sent, 0u);
  EXPECT_EQ(net_.stats().per_type.at(MsgType::kVoteCommit), 1u);
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].second.src, 2u);
}

TEST_F(NetworkTest, RecoveredNodeReceivesAgain) {
  net_.CrashNode(1);
  net_.RecoverNode(1);
  net_.Send(Make(0, 1));
  sched_.RunAll();
  EXPECT_EQ(received_.size(), 1u);
  EXPECT_FALSE(net_.IsCrashed(1));
}

TEST_F(NetworkTest, LinkDownDropsBothDirections) {
  net_.SetLinkDown(0, 1, true);
  net_.Send(Make(0, 1));
  net_.Send(Make(1, 0));
  net_.Send(Make(0, 2));  // unaffected
  sched_.RunAll();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].first, 2u);
}

TEST_F(NetworkTest, LinkRestoredDelivers) {
  net_.SetLinkDown(0, 1, true);
  net_.SetLinkDown(0, 1, false);
  net_.Send(Make(0, 1));
  sched_.RunAll();
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(NetworkTest, ExtraDelayIsDirectional) {
  net_.SetExtraDelay(0, 1, 10'000);
  net_.Send(Make(0, 1));
  sched_.RunAll();
  EXPECT_GE(sched_.Now(), 10'100u);

  received_.clear();
  const Micros before = sched_.Now();
  net_.Send(Make(1, 0));  // reverse direction unaffected
  sched_.RunAll();
  EXPECT_LE(sched_.Now() - before, 150u);
}

TEST_F(NetworkTest, InterceptorCanDropMessages) {
  net_.SetDeliveryInterceptor(
      [](const Message& msg) { return msg.dst != 2; });
  net_.Send(Make(0, 2));
  net_.Send(Make(0, 1));
  sched_.RunAll();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].first, 1u);
}

TEST_F(NetworkTest, SendFilterSuppressesAtSendTime) {
  net_.SetSendFilter([](const Message& msg) { return msg.dst != 3; });
  net_.Send(Make(0, 3));
  net_.Send(Make(0, 1));
  sched_.RunAll();
  ASSERT_EQ(received_.size(), 1u);
  // Suppressed sends are not even counted as sent.
  EXPECT_EQ(net_.stats().messages_sent, 1u);
}

TEST_F(NetworkTest, StatsCountPerType) {
  net_.Send(Make(0, 1, MsgType::kPrepare));
  net_.Send(Make(0, 2, MsgType::kPrepare));
  net_.Send(Make(1, 0, MsgType::kVoteCommit));
  sched_.RunAll();
  EXPECT_EQ(net_.stats().messages_sent, 3u);
  EXPECT_EQ(net_.stats().messages_delivered, 3u);
  EXPECT_EQ(net_.stats().per_type.at(MsgType::kPrepare), 2u);
  EXPECT_EQ(net_.stats().per_type.at(MsgType::kVoteCommit), 1u);
}

TEST_F(NetworkTest, ResetStatsClears) {
  net_.Send(Make(0, 1));
  sched_.RunAll();
  net_.ResetStats();
  EXPECT_EQ(net_.stats().messages_sent, 0u);
  EXPECT_EQ(net_.stats().messages_delivered, 0u);
}

TEST(NetworkLossTest, DropProbabilityLosesMessages) {
  Scheduler sched;
  NetworkConfig cfg;
  cfg.base_latency_us = 10;
  cfg.jitter_us = 0;
  cfg.drop_probability = 0.5;
  SimNetwork net(&sched, cfg, 1);
  int delivered = 0;
  net.RegisterNode(1, [&](const Message&) { delivered++; });
  for (int i = 0; i < 1000; ++i) {
    Message m;
    m.src = 0;
    m.dst = 1;
    net.Send(m);
  }
  sched.RunAll();
  EXPECT_GT(delivered, 350);
  EXPECT_LT(delivered, 650);
  EXPECT_EQ(net.stats().messages_dropped + delivered, 1000u);
}

TEST(NetworkBytesTest, PerByteCostSlowsLargeMessages) {
  Scheduler sched;
  NetworkConfig cfg;
  cfg.base_latency_us = 10;
  cfg.jitter_us = 0;
  cfg.per_byte_us = 1.0;
  SimNetwork net(&sched, cfg, 1);
  Micros small_time = 0, large_time = 0;
  net.RegisterNode(1, [&](const Message&) { small_time = sched.Now(); });

  Message small;
  small.src = 0;
  small.dst = 1;
  net.Send(small);
  sched.RunAll();

  net.RegisterNode(1, [&](const Message&) { large_time = sched.Now(); });
  Message large;
  large.src = 0;
  large.dst = 1;
  large.participants.assign(64, 0);
  const Micros start = sched.Now();
  net.Send(large);
  sched.RunAll();
  EXPECT_GT(large_time - start, small_time);
}

TEST(NetworkMessageTest, ApproximateBytesGrowsWithPayload) {
  Message m;
  const size_t base = m.ApproximateBytes();
  m.participants = {1, 2, 3, 4};
  EXPECT_GT(m.ApproximateBytes(), base);
  const size_t with_parts = m.ApproximateBytes();
  m.ops.resize(10);
  EXPECT_GT(m.ApproximateBytes(), with_parts);
}

TEST(NetworkMessageTest, ToStringCoversAllTypes) {
  EXPECT_EQ(ToString(MsgType::kPrepare), "Prepare");
  EXPECT_EQ(ToString(MsgType::kGlobalCommit), "GlobalCommit");
  EXPECT_EQ(ToString(MsgType::kTermStateReply), "TermStateReply");
  EXPECT_EQ(ToString(MsgType::kRemoteRollback), "RemoteRollback");
  EXPECT_EQ(ToString(CohortState::kTransmitC), "TRANSMIT-C");
  EXPECT_EQ(ToString(CohortState::kPreCommit), "PRE-COMMIT");
}

}  // namespace
}  // namespace ecdb
