// Unit tests for the simulated network, its fault injection, the frame
// codec and the transport-coalescing layer.

#include "net/network.h"

#include <vector>

#include <gtest/gtest.h>

#include "net/frame.h"
#include "sim/scheduler.h"

namespace ecdb {
namespace {

Message Make(NodeId src, NodeId dst, MsgType type = MsgType::kPrepare) {
  Message m;
  m.type = type;
  m.src = src;
  m.dst = dst;
  m.txn = MakeTxnId(src, 1);
  return m;
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(&sched_, Config(), 42) {
    for (NodeId id = 0; id < 4; ++id) {
      net_.RegisterNode(id, [this, id](const Message& msg) {
        received_.emplace_back(id, msg);
      });
    }
  }

  static NetworkConfig Config() {
    NetworkConfig cfg;
    cfg.base_latency_us = 100;
    cfg.jitter_us = 50;
    return cfg;
  }

  Scheduler sched_;
  SimNetwork net_;
  std::vector<std::pair<NodeId, Message>> received_;
};

TEST_F(NetworkTest, DeliversToDestination) {
  net_.Send(Make(0, 1));
  sched_.RunAll();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].first, 1u);
  EXPECT_EQ(received_[0].second.src, 0u);
}

TEST_F(NetworkTest, DeliveryRespectsLatencyBounds) {
  net_.Send(Make(0, 1));
  sched_.RunAll();
  EXPECT_GE(sched_.Now(), 100u);
  EXPECT_LE(sched_.Now(), 150u);
}

TEST_F(NetworkTest, CrashedDestinationDropsInFlightMessage) {
  net_.Send(Make(0, 1));
  net_.CrashNode(1);  // crash while in flight
  sched_.RunAll();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(net_.stats().messages_to_crashed, 1u);
}

TEST_F(NetworkTest, CrashedSourceCannotSend) {
  net_.CrashNode(0);
  net_.Send(Make(0, 1));
  sched_.RunAll();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(net_.stats().messages_from_crashed, 1u);
}

TEST_F(NetworkTest, CrashedSourceSendsAreNotCountedAsTraffic) {
  // A message from a crashed node never reaches the wire: it must count
  // ONLY in messages_from_crashed — not in messages_sent, bytes_sent or
  // the per-type histogram. (An earlier implementation bumped the send
  // counters before the crash check, inflating protocol message counts
  // in crash experiments; this pins the fix.)
  net_.CrashNode(0);
  net_.Send(Make(0, 1, MsgType::kVoteCommit));
  sched_.RunAll();

  EXPECT_EQ(net_.stats().messages_from_crashed, 1u);
  EXPECT_EQ(net_.stats().messages_sent, 0u);
  EXPECT_EQ(net_.stats().bytes_sent, 0u);
  EXPECT_EQ(net_.stats().per_type.at(MsgType::kVoteCommit), 0u);
  EXPECT_EQ(net_.stats().messages_dropped, 0u);
}

TEST_F(NetworkTest, LiveTrafficStillCountedAlongsideCrashedSends) {
  net_.CrashNode(0);
  net_.Send(Make(0, 1, MsgType::kVoteCommit));  // suppressed
  net_.Send(Make(2, 1, MsgType::kVoteCommit));  // live
  sched_.RunAll();

  EXPECT_EQ(net_.stats().messages_from_crashed, 1u);
  EXPECT_EQ(net_.stats().messages_sent, 1u);
  EXPECT_GT(net_.stats().bytes_sent, 0u);
  EXPECT_EQ(net_.stats().per_type.at(MsgType::kVoteCommit), 1u);
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].second.src, 2u);
}

TEST_F(NetworkTest, RecoveredNodeReceivesAgain) {
  net_.CrashNode(1);
  net_.RecoverNode(1);
  net_.Send(Make(0, 1));
  sched_.RunAll();
  EXPECT_EQ(received_.size(), 1u);
  EXPECT_FALSE(net_.IsCrashed(1));
}

TEST_F(NetworkTest, LinkDownDropsBothDirections) {
  net_.SetLinkDown(0, 1, true);
  net_.Send(Make(0, 1));
  net_.Send(Make(1, 0));
  net_.Send(Make(0, 2));  // unaffected
  sched_.RunAll();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].first, 2u);
}

TEST_F(NetworkTest, LinkRestoredDelivers) {
  net_.SetLinkDown(0, 1, true);
  net_.SetLinkDown(0, 1, false);
  net_.Send(Make(0, 1));
  sched_.RunAll();
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(NetworkTest, ExtraDelayIsDirectional) {
  net_.SetExtraDelay(0, 1, 10'000);
  net_.Send(Make(0, 1));
  sched_.RunAll();
  EXPECT_GE(sched_.Now(), 10'100u);

  received_.clear();
  const Micros before = sched_.Now();
  net_.Send(Make(1, 0));  // reverse direction unaffected
  sched_.RunAll();
  EXPECT_LE(sched_.Now() - before, 150u);
}

TEST_F(NetworkTest, InterceptorCanDropMessages) {
  net_.SetDeliveryInterceptor(
      [](const Message& msg) { return msg.dst != 2; });
  net_.Send(Make(0, 2));
  net_.Send(Make(0, 1));
  sched_.RunAll();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].first, 1u);
}

TEST_F(NetworkTest, SendFilterSuppressesAtSendTime) {
  net_.SetSendFilter([](const Message& msg) { return msg.dst != 3; });
  net_.Send(Make(0, 3));
  net_.Send(Make(0, 1));
  sched_.RunAll();
  ASSERT_EQ(received_.size(), 1u);
  // Suppressed sends are not even counted as sent.
  EXPECT_EQ(net_.stats().messages_sent, 1u);
}

TEST_F(NetworkTest, StatsCountPerType) {
  net_.Send(Make(0, 1, MsgType::kPrepare));
  net_.Send(Make(0, 2, MsgType::kPrepare));
  net_.Send(Make(1, 0, MsgType::kVoteCommit));
  sched_.RunAll();
  EXPECT_EQ(net_.stats().messages_sent, 3u);
  EXPECT_EQ(net_.stats().messages_delivered, 3u);
  EXPECT_EQ(net_.stats().per_type.at(MsgType::kPrepare), 2u);
  EXPECT_EQ(net_.stats().per_type.at(MsgType::kVoteCommit), 1u);
}

TEST_F(NetworkTest, ResetStatsClears) {
  net_.Send(Make(0, 1));
  sched_.RunAll();
  net_.ResetStats();
  EXPECT_EQ(net_.stats().messages_sent, 0u);
  EXPECT_EQ(net_.stats().messages_delivered, 0u);
}

TEST(NetworkLossTest, DropProbabilityLosesMessages) {
  Scheduler sched;
  NetworkConfig cfg;
  cfg.base_latency_us = 10;
  cfg.jitter_us = 0;
  cfg.drop_probability = 0.5;
  SimNetwork net(&sched, cfg, 1);
  int delivered = 0;
  net.RegisterNode(1, [&](const Message&) { delivered++; });
  for (int i = 0; i < 1000; ++i) {
    Message m;
    m.src = 0;
    m.dst = 1;
    net.Send(m);
  }
  sched.RunAll();
  EXPECT_GT(delivered, 350);
  EXPECT_LT(delivered, 650);
  EXPECT_EQ(net.stats().messages_dropped + delivered, 1000u);
}

TEST(NetworkBytesTest, PerByteCostSlowsLargeMessages) {
  Scheduler sched;
  NetworkConfig cfg;
  cfg.base_latency_us = 10;
  cfg.jitter_us = 0;
  cfg.per_byte_us = 1.0;
  SimNetwork net(&sched, cfg, 1);
  Micros small_time = 0, large_time = 0;
  net.RegisterNode(1, [&](const Message&) { small_time = sched.Now(); });

  Message small;
  small.src = 0;
  small.dst = 1;
  net.Send(small);
  sched.RunAll();

  net.RegisterNode(1, [&](const Message&) { large_time = sched.Now(); });
  Message large;
  large.src = 0;
  large.dst = 1;
  large.participants.assign(64, 0);
  const Micros start = sched.Now();
  net.Send(large);
  sched.RunAll();
  EXPECT_GT(large_time - start, small_time);
}

TEST(NetworkMessageTest, ApproximateBytesGrowsWithPayload) {
  Message m;
  const size_t base = m.ApproximateBytes();
  m.participants = {1, 2, 3, 4};
  EXPECT_GT(m.ApproximateBytes(), base);
  const size_t with_parts = m.ApproximateBytes();
  m.ops.resize(10);
  EXPECT_GT(m.ApproximateBytes(), with_parts);
}

// --------------------------------------------------------------------------
// Frame codec
// --------------------------------------------------------------------------

TEST(FrameCodecTest, RoundTripPreservesAllFields) {
  MessageFrame frame;
  frame.src = 3;
  frame.dst = 9;

  Message full;
  full.type = MsgType::kTermStateReply;
  full.src = 3;  // per-message src/dst ride in the frame header
  full.dst = 9;
  full.txn = MakeTxnId(3, 77);
  full.priority_ts = 123456789ULL;
  full.trace_seq = 42;
  full.forwarded = true;
  full.has_decision = true;
  full.txn_has_writes = true;
  full.term_state = CohortState::kPreCommit;
  full.decision = Decision::kAbort;
  full.participants = {0, 1, 2, 7};
  Operation op;
  op.table = 1;
  op.key = 0xdeadbeef;
  op.mode = AccessMode::kWrite;
  full.ops = {op, op};

  Message minimal;
  minimal.type = MsgType::kVoteCommit;
  minimal.src = 3;
  minimal.dst = 9;
  minimal.txn = MakeTxnId(3, 78);

  frame.messages = {full, minimal};

  std::vector<uint8_t> wire;
  EncodeFrame(frame, &wire);
  EXPECT_EQ(wire.size(), frame.WireBytes());

  MessageFrame decoded;
  ASSERT_TRUE(DecodeFrame(wire, &decoded));
  EXPECT_EQ(decoded.src, 3u);
  EXPECT_EQ(decoded.dst, 9u);
  ASSERT_EQ(decoded.messages.size(), 2u);

  const Message& d = decoded.messages[0];
  EXPECT_EQ(d.type, MsgType::kTermStateReply);
  EXPECT_EQ(d.src, 3u);
  EXPECT_EQ(d.dst, 9u);
  EXPECT_EQ(d.txn, full.txn);
  EXPECT_EQ(d.priority_ts, full.priority_ts);
  EXPECT_EQ(d.trace_seq, full.trace_seq);
  EXPECT_TRUE(d.forwarded);
  EXPECT_TRUE(d.has_decision);
  EXPECT_TRUE(d.txn_has_writes);
  EXPECT_EQ(d.term_state, CohortState::kPreCommit);
  EXPECT_EQ(d.decision, Decision::kAbort);
  EXPECT_EQ(d.participants, full.participants);
  ASSERT_EQ(d.ops.size(), 2u);
  EXPECT_EQ(d.ops[1].key, op.key);
  EXPECT_EQ(d.ops[1].mode, AccessMode::kWrite);

  EXPECT_EQ(decoded.messages[1].type, MsgType::kVoteCommit);
  EXPECT_EQ(decoded.messages[1].txn, minimal.txn);
}

TEST(FrameCodecTest, EmptyFrameRoundTrips) {
  MessageFrame frame;
  frame.src = 1;
  frame.dst = 2;
  std::vector<uint8_t> wire;
  EncodeFrame(frame, &wire);
  MessageFrame decoded;
  ASSERT_TRUE(DecodeFrame(wire, &decoded));
  EXPECT_EQ(decoded.src, 1u);
  EXPECT_TRUE(decoded.messages.empty());
}

TEST(FrameCodecTest, RejectsCorruptionAndTruncation) {
  MessageFrame frame;
  frame.src = 0;
  frame.dst = 1;
  Message m;
  m.type = MsgType::kPrepare;
  m.src = 0;
  m.dst = 1;
  m.txn = MakeTxnId(0, 5);
  m.participants = {0, 1};
  frame.messages = {m};
  std::vector<uint8_t> wire;
  EncodeFrame(frame, &wire);
  MessageFrame out;

  // Any single flipped byte must fail the checksum (or the magic).
  for (size_t i : {size_t{0}, size_t{3}, wire.size() / 2, wire.size() - 1}) {
    std::vector<uint8_t> bad = wire;
    bad[i] ^= 0x40;
    EXPECT_FALSE(DecodeFrame(bad, &out)) << "flipped byte " << i;
  }
  // Torn writes: every strict prefix must be rejected.
  for (size_t len : {size_t{0}, size_t{5}, wire.size() - 1}) {
    EXPECT_FALSE(DecodeFrame(wire.data(), len, &out)) << "prefix " << len;
  }
  // Trailing garbage after a well-formed frame.
  std::vector<uint8_t> padded = wire;
  padded.push_back(0);
  EXPECT_FALSE(DecodeFrame(padded, &out));
}

// --------------------------------------------------------------------------
// Transport coalescing
// --------------------------------------------------------------------------

class CoalescingTest : public ::testing::Test {
 protected:
  CoalescingTest() : net_(&sched_, Config(), 42) {
    for (NodeId id = 0; id < 4; ++id) {
      net_.RegisterNode(id, [this, id](const Message& msg) {
        received_.emplace_back(id, msg);
      });
    }
    net_.EnableCoalescing(true);
  }

  static NetworkConfig Config() {
    NetworkConfig cfg;
    cfg.base_latency_us = 100;
    cfg.jitter_us = 0;  // deterministic arrival for exact assertions
    return cfg;
  }

  Scheduler sched_;
  SimNetwork net_;
  std::vector<std::pair<NodeId, Message>> received_;
};

TEST_F(CoalescingTest, MessagesToOneDestinationShareAFrame) {
  net_.Send(Make(0, 1, MsgType::kPrepare));
  net_.Send(Make(0, 1, MsgType::kVoteCommit));
  net_.Send(Make(0, 2, MsgType::kPrepare));
  sched_.RunAll();

  ASSERT_EQ(received_.size(), 3u);
  EXPECT_EQ(net_.stats().messages_sent, 3u);
  EXPECT_EQ(net_.stats().messages_delivered, 3u);
  EXPECT_EQ(net_.stats().frames_sent, 2u);  // dst 1 and dst 2
  EXPECT_EQ(net_.stats().messages_coalesced, 1u);
  EXPECT_EQ(net_.stats().messages_sent - net_.stats().messages_coalesced,
            net_.stats().frames_sent);
  // Per-link FIFO order within the frame.
  EXPECT_EQ(received_[0].second.type, MsgType::kPrepare);
  EXPECT_EQ(received_[1].second.type, MsgType::kVoteCommit);
}

TEST_F(CoalescingTest, EqualLatencyFramesCollapseToOneArrivalTime) {
  // A jitter-free broadcast step: every frame arrives at the same instant.
  net_.Send(Make(0, 1));
  net_.Send(Make(0, 2));
  net_.Send(Make(0, 3));
  sched_.RunAll();
  EXPECT_EQ(received_.size(), 3u);
  EXPECT_EQ(sched_.Now(), 100u);
  EXPECT_EQ(net_.stats().frames_sent, 3u);
}

TEST_F(CoalescingTest, DroppedFrameDropsEveryMessageInside) {
  net_.SetDropProbability(1.0);
  net_.Send(Make(0, 1, MsgType::kPrepare));
  net_.Send(Make(0, 1, MsgType::kVoteCommit));
  net_.Send(Make(0, 1, MsgType::kGlobalCommit));
  sched_.RunAll();

  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(net_.stats().messages_sent, 3u);
  EXPECT_EQ(net_.stats().messages_dropped, 3u);  // one coin, three losses
  EXPECT_EQ(net_.stats().frames_sent, 1u);
}

TEST_F(CoalescingTest, CrashedDestinationDropsWholeInFlightFrame) {
  net_.Send(Make(0, 1));
  net_.Send(Make(0, 1));
  net_.CrashNode(1);  // crash while the frame is in flight
  sched_.RunAll();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(net_.stats().messages_to_crashed, 2u);
}

TEST_F(CoalescingTest, DisablingCoalescingFlushesOpenFrames) {
  net_.Send(Make(0, 1));
  net_.EnableCoalescing(false);  // must not strand the buffered message
  sched_.RunAll();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(net_.stats().frames_sent, 1u);
}

TEST_F(CoalescingTest, InterceptorSeesEveryCoalescedMessage) {
  size_t intercepted = 0;
  net_.SetDeliveryInterceptor([&](const Message&) {
    intercepted++;
    return true;
  });
  net_.Send(Make(0, 1));
  net_.Send(Make(0, 1));
  net_.Send(Make(0, 2));
  sched_.RunAll();
  EXPECT_EQ(intercepted, 3u);
  EXPECT_EQ(received_.size(), 3u);
}

TEST(NetworkMessageTest, ToStringCoversAllTypes) {
  EXPECT_EQ(ToString(MsgType::kPrepare), "Prepare");
  EXPECT_EQ(ToString(MsgType::kGlobalCommit), "GlobalCommit");
  EXPECT_EQ(ToString(MsgType::kTermStateReply), "TermStateReply");
  EXPECT_EQ(ToString(MsgType::kRemoteRollback), "RemoteRollback");
  EXPECT_EQ(ToString(CohortState::kTransmitC), "TRANSMIT-C");
  EXPECT_EQ(ToString(CohortState::kPreCommit), "PRE-COMMIT");
}

}  // namespace
}  // namespace ecdb
