// Unit tests for CowVector and the shared-payload Message semantics built
// on it: broadcasting and forwarding share one buffer (copies are O(1)),
// while any mutation detaches, so a forwarder can never corrupt the
// sender's copy.

#include "common/cow_vector.h"

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/message.h"

namespace ecdb {
namespace {

TEST(CowVectorTest, DefaultIsEmpty) {
  CowVector<int> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.vec(), std::vector<int>{});
}

TEST(CowVectorTest, CopySharesStorage) {
  CowVector<int> a{1, 2, 3};
  CowVector<int> b = a;
  EXPECT_TRUE(b.SharesStorageWith(a));
  EXPECT_EQ(a, b);
}

TEST(CowVectorTest, EmptyVectorsDoNotClaimSharing) {
  CowVector<int> a;
  CowVector<int> b;
  EXPECT_FALSE(a.SharesStorageWith(b));  // nothing to share
}

TEST(CowVectorTest, MutableDetachesFromSharedStorage) {
  CowVector<int> a{1, 2, 3};
  CowVector<int> b = a;
  b.Mutable().push_back(4);
  EXPECT_FALSE(b.SharesStorageWith(a));
  EXPECT_EQ(a.size(), 3u);  // the original never sees the write
  EXPECT_EQ(b.size(), 4u);
}

TEST(CowVectorTest, MutableWithoutSharingDoesNotReallocate) {
  CowVector<int> a{1, 2, 3};
  const int* data = a.vec().data();
  a.Mutable()[0] = 7;
  EXPECT_EQ(a.vec().data(), data);  // sole owner mutates in place
  EXPECT_EQ(a[0], 7);
}

TEST(CowVectorTest, ComparesAgainstPlainVectors) {
  CowVector<int> a{1, 2, 3};
  const std::vector<int> same = {1, 2, 3};
  EXPECT_TRUE(a == same);
  EXPECT_TRUE(same == a);
  EXPECT_FALSE(a == (std::vector<int>{1, 2}));
}

TEST(CowVectorTest, AssignFromVectorReplacesContents) {
  CowVector<int> a{1, 2, 3};
  CowVector<int> b = a;
  a = std::vector<int>{9, 9};
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 3u);  // b keeps the old buffer
}

TEST(CowVectorTest, ImplicitConversionFeedsVectorApis) {
  CowVector<NodeId> participants{0, 1, 2};
  // Functions taking const std::vector<NodeId>& accept a CowVector as-is;
  // this is what keeps CommitEngine's public signatures unchanged.
  const auto take = [](const std::vector<NodeId>& v) { return v.size(); };
  EXPECT_EQ(take(participants), 3u);
}

// --- Message payload sharing (ISSUE satellite: forwarding safety) ---

Message MakeGlobalCommit() {
  Message m;
  m.type = MsgType::kGlobalCommit;
  m.src = 0;
  m.dst = 1;
  m.txn = MakeTxnId(0, 7);
  m.participants = {0, 1, 2, 3};
  m.ops = {Operation{1, 42, AccessMode::kWrite}};
  return m;
}

TEST(MessageSharingTest, CopyingAMessageSharesPayloads) {
  const Message original = MakeGlobalCommit();
  Message copy = original;
  EXPECT_TRUE(copy.participants.SharesStorageWith(original.participants));
  EXPECT_TRUE(copy.ops.SharesStorageWith(original.ops));
}

TEST(MessageSharingTest, ForwardingCannotMutateSendersList) {
  // EC cohort forwarding: the forwarder stamps new routing fields on a
  // copy. Even if it (wrongly) edited the participant list, the sender's
  // record — sharing the same buffer — must not change.
  const Message original = MakeGlobalCommit();
  Message forward = original;
  forward.src = 1;
  forward.dst = 2;
  forward.forwarded = true;
  forward.participants.Mutable().push_back(99);

  EXPECT_EQ(original.participants.size(), 4u);
  EXPECT_FALSE(forward.participants.SharesStorageWith(original.participants));
  EXPECT_EQ(forward.participants.size(), 5u);
}

TEST(MessageSharingTest, ApproximateBytesAgreesSharedVsDeepCopied) {
  // The wire-size model must not depend on whether payloads are shared:
  // a shared broadcast and a per-recipient deep copy describe the same
  // bytes on the (simulated) wire.
  const Message original = MakeGlobalCommit();
  Message shared = original;

  Message deep;
  deep.type = original.type;
  deep.src = original.src;
  deep.dst = original.dst;
  deep.txn = original.txn;
  deep.participants = std::vector<NodeId>(original.participants.vec());
  deep.ops = std::vector<Operation>(original.ops.vec());
  ASSERT_FALSE(deep.participants.SharesStorageWith(original.participants));

  EXPECT_EQ(shared.ApproximateBytes(), original.ApproximateBytes());
  EXPECT_EQ(deep.ApproximateBytes(), original.ApproximateBytes());
}

}  // namespace
}  // namespace ecdb
