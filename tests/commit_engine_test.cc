// Unit tests for the 2PC / 3PC / EasyCommit state machines: message and
// log sequences on happy paths, abort paths, timeout handling, and the
// paper's motivating multi-failure scenarios.

#include "commit/commit_engine.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "protocol_harness.h"

namespace ecdb {
namespace testing {
namespace {

// Zero-latency-jitter network so message orders are easy to reason about.
NetworkConfig QuietNet() {
  NetworkConfig net;
  net.base_latency_us = 100;
  net.jitter_us = 0;
  return net;
}

// ---------------------------------------------------------------------------
// Happy paths
// ---------------------------------------------------------------------------

class CommitHappyPathTest
    : public ::testing::TestWithParam<CommitProtocol> {};

TEST_P(CommitHappyPathTest, AllNodesCommit) {
  ProtocolTestbed bed(GetParam(), 4, QuietNet());
  const TxnId txn = bed.StartAll();
  bed.Settle();
  for (NodeId id = 0; id < 4; ++id) {
    ASSERT_TRUE(bed.host(id).applied(txn).has_value()) << "node " << id;
    EXPECT_EQ(*bed.host(id).applied(txn), Decision::kCommit) << "node " << id;
    EXPECT_TRUE(bed.host(id).cleaned(txn)) << "node " << id;
  }
  EXPECT_TRUE(bed.monitor().Violations().empty());
  EXPECT_EQ(bed.monitor().blocked_reports(), 0u);
}

TEST_P(CommitHappyPathTest, CoordinatorAbortVoteAbortsEverywhere) {
  ProtocolTestbed bed(GetParam(), 3, QuietNet());
  const TxnId txn = bed.StartAll(Decision::kAbort);
  bed.Settle();
  for (NodeId id = 0; id < 3; ++id) {
    ASSERT_TRUE(bed.host(id).applied(txn).has_value());
    EXPECT_EQ(*bed.host(id).applied(txn), Decision::kAbort);
  }
}

TEST_P(CommitHappyPathTest, ParticipantVoteAbortAbortsEverywhere) {
  ProtocolTestbed bed(GetParam(), 4, QuietNet());
  bed.host(2).set_vote(Decision::kAbort);
  const TxnId txn = bed.StartAll();
  bed.Settle();
  for (NodeId id = 0; id < 4; ++id) {
    ASSERT_TRUE(bed.host(id).applied(txn).has_value()) << "node " << id;
    EXPECT_EQ(*bed.host(id).applied(txn), Decision::kAbort) << "node " << id;
  }
  EXPECT_TRUE(bed.monitor().Violations().empty());
}

TEST_P(CommitHappyPathTest, TwoNodeTransactionCommits) {
  ProtocolTestbed bed(GetParam(), 2, QuietNet());
  const TxnId txn = bed.StartAll();
  bed.Settle();
  EXPECT_EQ(*bed.host(0).applied(txn), Decision::kCommit);
  EXPECT_EQ(*bed.host(1).applied(txn), Decision::kCommit);
}

TEST_P(CommitHappyPathTest, EngineStateIsReleasedAfterCleanup) {
  ProtocolTestbed bed(GetParam(), 3, QuietNet());
  const TxnId txn = bed.StartAll();
  bed.Settle();
  for (NodeId id = 0; id < 3; ++id) {
    EXPECT_FALSE(bed.host(id).engine().StatusOf(txn).has_value());
    EXPECT_EQ(bed.host(id).engine().ActiveCount(), 0u);
  }
}

TEST_P(CommitHappyPathTest, ManySequentialTransactions) {
  ProtocolTestbed bed(GetParam(), 3, QuietNet());
  for (int i = 0; i < 20; ++i) {
    const TxnId txn = bed.StartAll();
    bed.Settle();
    for (NodeId id = 0; id < 3; ++id) {
      ASSERT_EQ(*bed.host(id).applied(txn), Decision::kCommit);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, CommitHappyPathTest,
                         ::testing::Values(CommitProtocol::kTwoPhase,
                                           CommitProtocol::kThreePhase,
                                           CommitProtocol::kEasyCommit),
                         [](const auto& info) { return ToString(info.param); });

// ---------------------------------------------------------------------------
// Log sequences (Figure 5 and the 2PC/3PC algorithms)
// ---------------------------------------------------------------------------

TEST(CommitLogTest, TwoPcCoordinatorLogSequence) {
  ProtocolTestbed bed(CommitProtocol::kTwoPhase, 3, QuietNet());
  const TxnId txn = bed.StartAll();
  bed.Settle();
  EXPECT_EQ(bed.host(0).LogTypes(txn),
            (std::vector<LogRecordType>{LogRecordType::kBeginCommit,
                                        LogRecordType::kCommitDecision,
                                        LogRecordType::kTransactionCommit}));
}

TEST(CommitLogTest, TwoPcParticipantLogSequence) {
  ProtocolTestbed bed(CommitProtocol::kTwoPhase, 3, QuietNet());
  const TxnId txn = bed.StartAll();
  bed.Settle();
  EXPECT_EQ(bed.host(1).LogTypes(txn),
            (std::vector<LogRecordType>{LogRecordType::kReady,
                                        LogRecordType::kTransactionCommit}));
}

TEST(CommitLogTest, ThreePcLogsPreCommitOnBothSides) {
  ProtocolTestbed bed(CommitProtocol::kThreePhase, 3, QuietNet());
  const TxnId txn = bed.StartAll();
  bed.Settle();
  EXPECT_EQ(bed.host(0).LogTypes(txn),
            (std::vector<LogRecordType>{LogRecordType::kBeginCommit,
                                        LogRecordType::kPreCommit,
                                        LogRecordType::kCommitDecision,
                                        LogRecordType::kTransactionCommit}));
  EXPECT_EQ(bed.host(2).LogTypes(txn),
            (std::vector<LogRecordType>{LogRecordType::kReady,
                                        LogRecordType::kPreCommit,
                                        LogRecordType::kTransactionCommit}));
}

TEST(CommitLogTest, EasyCommitParticipantLogsReceivedBeforeCommit) {
  // Figure 5b: ready -> global-commit-received -> transaction-commit.
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 3, QuietNet());
  const TxnId txn = bed.StartAll();
  bed.Settle();
  EXPECT_EQ(bed.host(1).LogTypes(txn),
            (std::vector<LogRecordType>{LogRecordType::kReady,
                                        LogRecordType::kCommitReceived,
                                        LogRecordType::kTransactionCommit}));
}

TEST(CommitLogTest, EasyCommitAbortPathLogsAbortReceived) {
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 3, QuietNet());
  bed.host(1).set_vote(Decision::kAbort);
  const TxnId txn = bed.StartAll();
  bed.Settle();
  // The abort-voting cohort still goes READY first (observation I) and
  // learns the global abort like everyone else.
  EXPECT_EQ(bed.host(1).LogTypes(txn),
            (std::vector<LogRecordType>{LogRecordType::kReady,
                                        LogRecordType::kAbortReceived,
                                        LogRecordType::kTransactionAbort}));
}

TEST(CommitLogTest, TwoPcAbortVoterSkipsReadyState) {
  // In 2PC (unlike EC) an abort-voting cohort moves INITIAL -> ABORT.
  ProtocolTestbed bed(CommitProtocol::kTwoPhase, 3, QuietNet());
  bed.host(1).set_vote(Decision::kAbort);
  const TxnId txn = bed.StartAll();
  bed.Settle();
  EXPECT_EQ(bed.host(1).LogTypes(txn),
            (std::vector<LogRecordType>{LogRecordType::kTransactionAbort}));
}

// ---------------------------------------------------------------------------
// Message patterns
// ---------------------------------------------------------------------------

TEST(CommitMessageTest, EasyCommitForwardsDecisionQuadratically) {
  // n participants: coordinator sends n-1 decisions, every cohort forwards
  // to the n-1 others => (n-1) + (n-1)^2 Global-* messages.
  for (uint32_t n : {2u, 3u, 4u, 5u}) {
    ProtocolTestbed bed(CommitProtocol::kEasyCommit, n, QuietNet());
    bed.StartAll();
    bed.Settle();
    const auto& per_type = bed.network().stats().per_type;
    const uint64_t commits = per_type.count(MsgType::kGlobalCommit)
                                 ? per_type.at(MsgType::kGlobalCommit)
                                 : 0;
    EXPECT_EQ(commits, (n - 1) + (n - 1) * (n - 1)) << "n=" << n;
  }
}

TEST(CommitMessageTest, TwoPcDecisionMessagesAreLinear) {
  for (uint32_t n : {2u, 3u, 4u, 5u}) {
    ProtocolTestbed bed(CommitProtocol::kTwoPhase, n, QuietNet());
    bed.StartAll();
    bed.Settle();
    const auto& per_type = bed.network().stats().per_type;
    EXPECT_EQ(per_type.at(MsgType::kGlobalCommit), n - 1) << "n=" << n;
    EXPECT_EQ(per_type.at(MsgType::kAck), n - 1) << "n=" << n;
  }
}

TEST(CommitMessageTest, ThreePcAddsPreCommitRound) {
  ProtocolTestbed bed(CommitProtocol::kThreePhase, 4, QuietNet());
  bed.StartAll();
  bed.Settle();
  const auto& per_type = bed.network().stats().per_type;
  EXPECT_EQ(per_type.at(MsgType::kPreCommit), 3u);
  EXPECT_EQ(per_type.at(MsgType::kPreCommitAck), 3u);
  EXPECT_EQ(per_type.at(MsgType::kGlobalCommit), 3u);
}

TEST(CommitMessageTest, EasyCommitSendsNoAcks) {
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 4, QuietNet());
  bed.StartAll();
  bed.Settle();
  EXPECT_EQ(bed.network().stats().per_type.count(MsgType::kAck), 0u);
}

TEST(CommitMessageTest, NoForwardAblationSendsLinearDecisions) {
  ProtocolTestbed bed(CommitProtocol::kEasyCommitNoForward, 4, QuietNet());
  bed.StartAll();
  bed.Settle();
  EXPECT_EQ(bed.network().stats().per_type.at(MsgType::kGlobalCommit), 3u);
}

// ---------------------------------------------------------------------------
// Timeouts and the termination protocol
// ---------------------------------------------------------------------------

TEST(CommitTimeoutTest, CoordinatorTimeoutInWaitAborts) {
  // Case A: a cohort never votes; the coordinator aborts.
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 3, QuietNet());
  bed.network().CrashNode(2);  // silent cohort
  const TxnId txn = bed.StartAll();
  bed.Settle();
  EXPECT_EQ(*bed.host(0).applied(txn), Decision::kAbort);
  EXPECT_EQ(*bed.host(1).applied(txn), Decision::kAbort);
  EXPECT_TRUE(bed.monitor().Violations().empty());
}

TEST(CommitTimeoutTest, EcCohortTimeoutInInitialRunsTermination) {
  // Case B: the coordinator dies before sending any Prepare; EC cohorts
  // consult each other and abort together.
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 3, QuietNet());
  const TxnId txn = MakeTxnId(0, 1);
  std::vector<NodeId> participants{0, 1, 2};
  bed.host(1).engine().ExpectPrepare(txn, 0, participants);
  bed.host(2).engine().ExpectPrepare(txn, 0, participants);
  bed.network().CrashNode(0);
  bed.Settle();
  EXPECT_EQ(*bed.host(1).applied(txn), Decision::kAbort);
  EXPECT_EQ(*bed.host(2).applied(txn), Decision::kAbort);
  EXPECT_GT(bed.host(1).engine().termination_rounds() +
                bed.host(2).engine().termination_rounds(),
            0u);
}

TEST(CommitTimeoutTest, TwoPcCohortTimeoutInInitialAbortsUnilaterally) {
  ProtocolTestbed bed(CommitProtocol::kTwoPhase, 3, QuietNet());
  const TxnId txn = MakeTxnId(0, 1);
  bed.host(1).engine().ExpectPrepare(txn, 0, {0, 1, 2});
  bed.network().CrashNode(0);
  bed.network().CrashNode(2);
  bed.Settle();
  EXPECT_EQ(*bed.host(1).applied(txn), Decision::kAbort);
  EXPECT_EQ(bed.host(1).engine().termination_rounds(), 0u);
}

TEST(CommitTimeoutTest, CohortLearnsDecisionFromPeerViaTermination) {
  // Coordinator's decision reaches cohort 1 but the message to cohort 2 is
  // dropped; cohort 2 times out, consults, and learns commit from a peer.
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 3, QuietNet());
  const TxnId txn = MakeTxnId(0, 1);
  bed.network().SetDeliveryInterceptor([&](const Message& msg) {
    // Drop only the coordinator's original decision (and EC forward) to 2
    // during the first phase; allow termination traffic later.
    return !(msg.dst == 2 && (msg.type == MsgType::kGlobalCommit) &&
             !msg.forwarded && msg.src == 0);
  });
  std::vector<NodeId> participants{0, 1, 2};
  bed.host(1).engine().ExpectPrepare(txn, 0, participants);
  bed.host(2).engine().ExpectPrepare(txn, 0, participants);
  bed.host(0).engine().StartCommit(txn, participants, Decision::kCommit);
  bed.Settle();
  EXPECT_EQ(*bed.host(2).applied(txn), Decision::kCommit);
  EXPECT_TRUE(bed.monitor().Violations().empty());
}

TEST(CommitTimeoutTest, TerminationLeaderIsLowestActiveNode) {
  // Coordinator 0 dies pre-Prepare; among cohorts {1, 2, 3} node 1 leads.
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 4, QuietNet());
  const TxnId txn = MakeTxnId(0, 1);
  std::vector<NodeId> participants{0, 1, 2, 3};
  for (NodeId id = 1; id < 4; ++id) {
    bed.host(id).engine().ExpectPrepare(txn, 0, participants);
  }
  bed.network().CrashNode(0);
  bed.Settle();
  // Node 1 must have logged the abort decision (it led); 2 and 3 logged
  // only the reception.
  const auto leader_log = bed.host(1).LogTypes(txn);
  EXPECT_NE(std::find(leader_log.begin(), leader_log.end(),
                      LogRecordType::kAbortDecision),
            leader_log.end());
  for (NodeId id : {2u, 3u}) {
    ASSERT_TRUE(bed.host(id).applied(txn).has_value());
    EXPECT_EQ(*bed.host(id).applied(txn), Decision::kAbort);
  }
}

TEST(CommitTimeoutTest, TerminationIsReentrantWhenLeaderDies) {
  // Coordinator dies; leader-elect (node 1) dies mid-termination; node 2
  // must still terminate the transaction.
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 4, QuietNet());
  const TxnId txn = MakeTxnId(0, 1);
  std::vector<NodeId> participants{0, 1, 2, 3};
  for (NodeId id = 1; id < 4; ++id) {
    bed.host(id).engine().ExpectPrepare(txn, 0, participants);
  }
  bed.network().CrashNode(0);
  // Crash node 1 as soon as it tries to lead (first TermElect from it).
  bed.network().SetDeliveryInterceptor([&](const Message& msg) {
    if (msg.src == 1 && msg.type == MsgType::kTermElect) {
      bed.network().CrashNode(1);
      return false;
    }
    return true;
  });
  bed.Settle();
  EXPECT_EQ(*bed.host(2).applied(txn), Decision::kAbort);
  EXPECT_EQ(*bed.host(3).applied(txn), Decision::kAbort);
  EXPECT_TRUE(bed.monitor().Violations().empty());
}

// ---------------------------------------------------------------------------
// The paper's motivating multi-failure scenario (Sections 2 and 3.3)
// ---------------------------------------------------------------------------

// Coordinator C decides commit and fails mid-broadcast so that only X is
// addressed; X itself fails around the same time. Y and Z must not block
// under EC or 3PC; under 2PC they block. Two variants:
//  * x_receives=false: X crashes with the decision undelivered. Under
//    fail-stop this is the only way "X fails and nobody saw the decision"
//    can happen — if X had processed the decision it would have forwarded
//    it to everyone *before* committing (observation IV), and messages
//    from a live node are not lost.
//  * x_receives=true: X processes the decision (forwards, commits), then
//    fails. Its forwards reach Y and Z.
class MotivatingScenario {
 public:
  MotivatingScenario(CommitProtocol protocol, bool x_receives)
      : bed_(protocol, 4, QuietNet()) {
    txn_ = MakeTxnId(0, 1);
    std::vector<NodeId> participants{0, 1, 2, 3};
    for (NodeId id = 1; id < 4; ++id) {
      bed_.host(id).engine().ExpectPrepare(txn_, 0, participants);
    }
    // Send filter: C's broadcast is truncated after the copy addressed to
    // X — the sends to Y and Z (and hence C's own commit step) never
    // happen, which is exactly fail-stop mid-broadcast.
    bed_.network().SetSendFilter([this](const Message& msg) {
      const bool decision = msg.type == MsgType::kGlobalCommit ||
                            msg.type == MsgType::kGlobalAbort;
      if (decision && msg.src == 0 && !msg.forwarded && msg.dst != 1) {
        bed_.network().CrashNode(0);
        return false;
      }
      return true;
    });
    bed_.network().SetDeliveryInterceptor([this,
                                           x_receives](const Message& msg) {
      const bool decision = msg.type == MsgType::kGlobalCommit ||
                            msg.type == MsgType::kGlobalAbort;
      if (decision && msg.src == 0 && msg.dst == 1) {
        bed_.network().CrashNode(0);  // C is gone by delivery time anyway
        if (!x_receives) {
          bed_.network().CrashNode(1);  // X dies with it undelivered
          return false;
        }
        x_got_decision_ = true;
        return true;
      }
      if (x_got_decision_ && msg.src == 1 && decision && !x_crashed_) {
        // X fails right after transmitting (its forwards already left and,
        // under fail-stop, are delivered).
        x_crashed_ = true;
        bed_.network().CrashNode(1);
        return true;  // this forward was already on the wire
      }
      return true;
    });
    bed_.host(0).engine().StartCommit(txn_, participants, Decision::kCommit);
  }

  void Run() {
    bed_.Settle();
    if (!bed_.network().IsCrashed(1)) bed_.network().CrashNode(1);
    bed_.Settle();
  }

  ProtocolTestbed& bed() { return bed_; }
  TxnId txn() const { return txn_; }

 private:
  ProtocolTestbed bed_;
  TxnId txn_;
  bool x_got_decision_ = false;
  bool x_crashed_ = false;
};

TEST(MotivatingScenarioTest, EasyCommitAbortsSafelyWhenDecisionIsLost) {
  MotivatingScenario scenario(CommitProtocol::kEasyCommit,
                              /*x_receives=*/false);
  scenario.Run();
  auto& bed = scenario.bed();
  // No active node ever saw the decision; the termination protocol aborts
  // on both survivors. Nobody blocks, nobody conflicts (X never committed:
  // a node that cannot transmit cannot commit).
  EXPECT_TRUE(bed.AllActiveDecided(scenario.txn()));
  EXPECT_EQ(bed.monitor().blocked_reports(), 0u);
  EXPECT_TRUE(bed.monitor().Violations().empty());
  EXPECT_EQ(*bed.host(2).applied(scenario.txn()), Decision::kAbort);
  EXPECT_EQ(*bed.host(3).applied(scenario.txn()), Decision::kAbort);
}

TEST(MotivatingScenarioTest, EasyCommitPropagatesCommitWhenXForwards) {
  MotivatingScenario scenario(CommitProtocol::kEasyCommit,
                              /*x_receives=*/true);
  scenario.Run();
  auto& bed = scenario.bed();
  // X forwarded before committing, so Y and Z learn the commit even though
  // both C and X are down.
  EXPECT_EQ(*bed.host(2).applied(scenario.txn()), Decision::kCommit);
  EXPECT_EQ(*bed.host(3).applied(scenario.txn()), Decision::kCommit);
  EXPECT_EQ(bed.monitor().blocked_reports(), 0u);
  EXPECT_TRUE(bed.monitor().Violations().empty());
}

TEST(MotivatingScenarioTest, TwoPhaseCommitBlocks) {
  MotivatingScenario scenario(CommitProtocol::kTwoPhase,
                              /*x_receives=*/false);
  scenario.Run();
  auto& bed = scenario.bed();
  // Y and Z are in READY with both C and X gone: blocked, exactly the
  // behaviour the paper motivates against.
  EXPECT_GT(bed.monitor().blocked_reports(), 0u);
  EXPECT_FALSE(bed.host(2).applied(scenario.txn()).has_value());
  EXPECT_FALSE(bed.host(3).applied(scenario.txn()).has_value());
}

TEST(MotivatingScenarioTest, ThreePhaseCommitDoesNotBlock) {
  MotivatingScenario scenario(CommitProtocol::kThreePhase,
                              /*x_receives=*/false);
  scenario.Run();
  auto& bed = scenario.bed();
  EXPECT_TRUE(bed.AllActiveDecided(scenario.txn()));
  EXPECT_EQ(bed.monitor().blocked_reports(), 0u);
  EXPECT_TRUE(bed.monitor().Violations().empty());
}

// ---------------------------------------------------------------------------
// Robustness
// ---------------------------------------------------------------------------

TEST(CommitRobustnessTest, DuplicateDecisionMessagesAreIdempotent) {
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 3, QuietNet());
  const TxnId txn = bed.StartAll();
  bed.Settle();
  // Re-deliver a decision after cleanup; must be ignored without effect.
  Message dup;
  dup.type = MsgType::kGlobalCommit;
  dup.src = 0;
  dup.dst = 1;
  dup.txn = txn;
  dup.participants = {0, 1, 2};
  bed.host(1).engine().OnMessage(dup);
  EXPECT_EQ(*bed.host(1).applied(txn), Decision::kCommit);
  EXPECT_EQ(bed.host(1).engine().conflicting_decisions(), 0u);
}

TEST(CommitRobustnessTest, SpuriousTimeoutAfterCleanupIsIgnored) {
  ProtocolTestbed bed(CommitProtocol::kTwoPhase, 3, QuietNet());
  const TxnId txn = bed.StartAll();
  bed.Settle();
  bed.host(0).engine().OnTimeout(txn);  // nothing should happen
  EXPECT_EQ(*bed.host(0).applied(txn), Decision::kCommit);
}

TEST(CommitRobustnessTest, MessagesForUnknownTxnAreIgnored) {
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 2, QuietNet());
  Message msg;
  msg.type = MsgType::kVoteCommit;
  msg.src = 1;
  msg.dst = 0;
  msg.txn = MakeTxnId(0, 999);
  bed.host(0).engine().OnMessage(msg);
  EXPECT_EQ(bed.host(0).engine().ActiveCount(), 0u);
}

TEST(CommitRobustnessTest, ForgetDropsStateWithoutCallbacks) {
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 2, QuietNet());
  const TxnId txn = MakeTxnId(0, 1);
  bed.host(1).engine().ExpectPrepare(txn, 0, {0, 1});
  EXPECT_EQ(bed.host(1).engine().ActiveCount(), 1u);
  bed.host(1).engine().Forget(txn);
  EXPECT_EQ(bed.host(1).engine().ActiveCount(), 0u);
  bed.Settle();
  EXPECT_FALSE(bed.host(1).applied(txn).has_value());
}

TEST(CommitRobustnessTest, DecisionLedgerAnswersLateQueries) {
  ProtocolTestbed bed(CommitProtocol::kEasyCommit, 3, QuietNet());
  const TxnId txn = bed.StartAll();
  bed.Settle();
  ASSERT_TRUE(bed.host(0).cleaned(txn));
  // A late termination query still gets the decision from the ledger.
  Message elect;
  elect.type = MsgType::kTermElect;
  elect.src = 2;
  elect.dst = 0;
  elect.txn = txn;
  bed.host(0).engine().OnMessage(elect);
  bed.Settle();
  EXPECT_EQ(*bed.host(2).applied(txn), Decision::kCommit);
}

}  // namespace
}  // namespace testing
}  // namespace ecdb
