// Unit tests for the write-ahead log (memory and file backends).

#include "wal/wal.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace ecdb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(LogRecordTest, PaperNames) {
  EXPECT_EQ(ToString(LogRecordType::kBeginCommit), "begin_commit");
  EXPECT_EQ(ToString(LogRecordType::kReady), "ready");
  EXPECT_EQ(ToString(LogRecordType::kCommitDecision),
            "global-commit-decision-reached");
  EXPECT_EQ(ToString(LogRecordType::kAbortReceived), "global-abort-received");
  EXPECT_EQ(ToString(LogRecordType::kTransactionCommit),
            "transaction-commit");
  EXPECT_EQ(ToString(LogRecordType::kPreCommit), "pre-commit");
}

TEST(MemoryWalTest, AppendAssignsSequentialLsns) {
  MemoryWal wal;
  EXPECT_EQ(wal.Append({0, 1, LogRecordType::kBeginCommit, {}}), 1u);
  EXPECT_EQ(wal.Append({0, 1, LogRecordType::kCommitDecision, {}}), 2u);
  EXPECT_EQ(wal.Size(), 2u);
}

TEST(MemoryWalTest, ScanReturnsAppendOrder) {
  MemoryWal wal;
  wal.Append({0, 7, LogRecordType::kReady, {}});
  wal.Append({0, 8, LogRecordType::kReady, {}});
  const auto records = wal.Scan();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].txn, 7u);
  EXPECT_EQ(records[1].txn, 8u);
}

TEST(MemoryWalTest, LastForFindsMostRecent) {
  MemoryWal wal;
  wal.Append({0, 7, LogRecordType::kReady, {}});
  wal.Append({0, 9, LogRecordType::kReady, {}});
  wal.Append({0, 7, LogRecordType::kTransactionCommit, {}});
  const auto last = wal.LastFor(7);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->type, LogRecordType::kTransactionCommit);
}

TEST(MemoryWalTest, LastForMissingTxn) {
  MemoryWal wal;
  EXPECT_FALSE(wal.LastFor(42).has_value());
}

TEST(MemoryWalTest, ClearEmptiesLog) {
  MemoryWal wal;
  wal.Append({0, 1, LogRecordType::kReady, {}});
  wal.Clear();
  EXPECT_EQ(wal.Size(), 0u);
}

TEST(MemoryWalTest, ParticipantsArePreserved) {
  MemoryWal wal;
  wal.Append({0, 1, LogRecordType::kReady, {3, 1, 4}});
  EXPECT_EQ(wal.LastFor(1)->participants, (std::vector<NodeId>{3, 1, 4}));
}

TEST(FileWalTest, OpenCreatesFile) {
  const std::string path = TempPath("wal_create.log");
  std::remove(path.c_str());
  auto wal = FileWal::Open(path);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal.value()->Size(), 0u);
}

TEST(FileWalTest, AppendAndScan) {
  const std::string path = TempPath("wal_scan.log");
  std::remove(path.c_str());
  auto wal = std::move(FileWal::Open(path)).value();
  wal->Append({0, 11, LogRecordType::kBeginCommit, {}});
  wal->Append({0, 11, LogRecordType::kCommitDecision, {}});
  const auto records = wal->Scan();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].type, LogRecordType::kBeginCommit);
  EXPECT_EQ(records[1].lsn, 2u);
}

TEST(FileWalTest, SurvivesReopen) {
  const std::string path = TempPath("wal_reopen.log");
  std::remove(path.c_str());
  {
    auto wal = std::move(FileWal::Open(path)).value();
    wal->Append({0, 5, LogRecordType::kReady, {0, 1, 2}});
    wal->Append({0, 5, LogRecordType::kCommitReceived, {}});
    ASSERT_TRUE(wal->Sync().ok());
  }
  auto wal = std::move(FileWal::Open(path)).value();
  ASSERT_EQ(wal->Size(), 2u);
  const auto last = wal->LastFor(5);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->type, LogRecordType::kCommitReceived);
  EXPECT_EQ(wal->Scan()[0].participants, (std::vector<NodeId>{0, 1, 2}));
}

TEST(FileWalTest, AppendsAfterReopenContinueLsns) {
  const std::string path = TempPath("wal_continue.log");
  std::remove(path.c_str());
  {
    auto wal = std::move(FileWal::Open(path)).value();
    wal->Append({0, 5, LogRecordType::kReady, {}});
  }
  auto wal = std::move(FileWal::Open(path)).value();
  EXPECT_EQ(wal->Append({0, 5, LogRecordType::kTransactionCommit, {}}), 2u);
  EXPECT_EQ(wal->Size(), 2u);
}

TEST(FileWalTest, TornTailIsIgnored) {
  const std::string path = TempPath("wal_torn.log");
  std::remove(path.c_str());
  {
    auto wal = std::move(FileWal::Open(path)).value();
    wal->Append({0, 5, LogRecordType::kReady, {}});
    wal->Append({0, 6, LogRecordType::kReady, {}});
    ASSERT_TRUE(wal->Sync().ok());
  }
  // Append garbage (a torn write) at the end.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  const unsigned char junk[5] = {0xDE, 0xAD, 0xBE, 0xEF, 0x00};
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);

  auto wal = std::move(FileWal::Open(path)).value();
  EXPECT_EQ(wal->Size(), 2u);  // valid prefix only
}

TEST(FileWalTest, OpenFailsForBadPath) {
  auto wal = FileWal::Open("/nonexistent-dir-xyz/wal.log");
  EXPECT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), Code::kIOError);
}

// --------------------------------------------------------------------------
// Group commit
// --------------------------------------------------------------------------

TEST(FileWalTest, GroupCommitCrashLosesOnlyUnflushedSuffix) {
  const std::string path = TempPath("wal_group_crash.log");
  std::remove(path.c_str());
  {
    auto wal = std::move(FileWal::Open(path)).value();
    wal->Append({0, 1, LogRecordType::kReady, {}});
    wal->Append({0, 2, LogRecordType::kReady, {}});
    ASSERT_TRUE(wal->Flush().ok());  // group boundary: 1-2 durable
    wal->Append({0, 3, LogRecordType::kReady, {}});
    wal->Append({0, 4, LogRecordType::kReady, {}});

    // Staged appends are visible to Scan/LastFor immediately — the engine
    // reads its own writes before the group is flushed.
    EXPECT_EQ(wal->Size(), 4u);
    EXPECT_TRUE(wal->LastFor(4).has_value());
    EXPECT_EQ(wal->group_flushes(), 1u);

    wal->DropUnflushed();  // crash: the unflushed group never hit disk
    EXPECT_EQ(wal->Size(), 2u);
    EXPECT_FALSE(wal->LastFor(3).has_value());
  }
  auto wal = std::move(FileWal::Open(path)).value();
  ASSERT_EQ(wal->Size(), 2u);  // recovery replays exactly the flushed prefix
  EXPECT_EQ(wal->Scan()[1].txn, 2u);
  // New appends continue the LSN sequence from the surviving prefix.
  EXPECT_EQ(wal->Append({0, 9, LogRecordType::kReady, {}}), 3u);
}

TEST(FileWalTest, DestructorFlushesStagedAppends) {
  // Orderly shutdown is not a crash: staged records reach the file even
  // without an explicit Flush/Sync.
  const std::string path = TempPath("wal_dtor_flush.log");
  std::remove(path.c_str());
  {
    auto wal = std::move(FileWal::Open(path)).value();
    wal->Append({0, 5, LogRecordType::kCommitDecision, {}});
  }
  auto wal = std::move(FileWal::Open(path)).value();
  EXPECT_EQ(wal->Size(), 1u);
}

TEST(FileWalTest, AppendBatchIsOneGroup) {
  const std::string path = TempPath("wal_batch.log");
  std::remove(path.c_str());
  auto wal = std::move(FileWal::Open(path)).value();
  std::vector<LogRecord> batch = {
      {0, 1, LogRecordType::kReady, {}},
      {0, 2, LogRecordType::kReady, {}},
      {0, 3, LogRecordType::kReady, {}},
  };
  EXPECT_EQ(wal->AppendBatch(&batch), 3u);  // returns the last LSN
  EXPECT_TRUE(batch.empty());               // drained
  ASSERT_TRUE(wal->Flush().ok());
  EXPECT_EQ(wal->group_flushes(), 1u);  // three appends, one write+flush
  EXPECT_EQ(wal->Size(), 3u);
}

TEST(FileWalTest, FlushWithNothingPendingIsFree) {
  const std::string path = TempPath("wal_empty_flush.log");
  std::remove(path.c_str());
  auto wal = std::move(FileWal::Open(path)).value();
  ASSERT_TRUE(wal->Flush().ok());
  ASSERT_TRUE(wal->Flush().ok());
  EXPECT_EQ(wal->group_flushes(), 0u);  // no pending group, no flush counted
}

TEST(MemoryWalTest, GroupFlushCountsCoveredGroups) {
  MemoryWal wal;
  wal.Append({0, 1, LogRecordType::kReady, {}});
  wal.Append({0, 2, LogRecordType::kReady, {}});
  ASSERT_TRUE(wal.Flush().ok());
  ASSERT_TRUE(wal.Flush().ok());  // empty group: not counted
  wal.Append({0, 3, LogRecordType::kReady, {}});
  ASSERT_TRUE(wal.Flush().ok());
  EXPECT_EQ(wal.group_flushes(), 2u);
}

}  // namespace
}  // namespace ecdb
