// Tests for the chaos campaign engine: fault-plan generation and JSON
// round-trips, deterministic replay, the end-to-end crash-recovery audit
// over small campaigns, the ddmin shrinker on a pinned failing case, and
// the ThreadNetwork fault-injection hooks (named ThreadNetworkChaos* so
// the TSan CI job picks them up).

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/campaign.h"
#include "chaos/chaos_driver.h"
#include "chaos/fault_plan.h"
#include "chaos/shrinker.h"
#include "net/channel.h"
#include "cluster/thread_node.h"
#include "workload/ycsb.h"

namespace ecdb {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------------

TEST(ChaosPlanTest, JsonRoundTripIsByteIdentical) {
  for (const ChaosIntensity intensity :
       {ChaosIntensity::kLight, ChaosIntensity::kDefault,
        ChaosIntensity::kHeavy}) {
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      const FaultPlan plan = GenerateFaultPlan(seed, 4, 600'000, intensity);
      const std::string json = plan.ToJson();
      FaultPlan parsed;
      std::string error;
      ASSERT_TRUE(ParseFaultPlan(json, &parsed, &error)) << error;
      EXPECT_EQ(parsed, plan);
      // Canonical form: reserializing the parse is byte-identical.
      EXPECT_EQ(parsed.ToJson(), json);
    }
  }
}

TEST(ChaosPlanTest, ParseRejectsMalformedInput) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(ParseFaultPlan("", &plan, &error));
  EXPECT_FALSE(ParseFaultPlan("{", &plan, &error));
  EXPECT_FALSE(ParseFaultPlan("{\"seed\":1}", &plan, &error));
  EXPECT_FALSE(ParseFaultPlan(
      "{\"seed\":1,\"num_nodes\":4,\"horizon_us\":1000,"
      "\"intensity\":\"default\",\"events\":[{\"at_us\":1,\"type\":"
      "\"no_such_fault\"}]}",
      &plan, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ChaosPlanTest, FileRoundTrip) {
  const FaultPlan plan =
      GenerateFaultPlan(7, 4, 600'000, ChaosIntensity::kHeavy);
  const std::string path = ::testing::TempDir() + "/chaos_plan.json";
  std::string error;
  ASSERT_TRUE(WriteFaultPlanFile(plan, path, &error)) << error;
  FaultPlan read;
  ASSERT_TRUE(ReadFaultPlanFile(path, &read, &error)) << error;
  EXPECT_EQ(read, plan);
}

TEST(ChaosPlanTest, GeneratedPlansAreWellFormed) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    const FaultPlan plan =
        GenerateFaultPlan(seed, 4, 600'000, ChaosIntensity::kDefault);
    EXPECT_EQ(plan.seed, seed);
    EXPECT_EQ(plan.num_nodes, 4u);
    Micros prev = 0;
    std::multiset<NodeId> down;
    for (const FaultEvent& ev : plan.events) {
      EXPECT_GE(ev.at_us, prev) << "events must be sorted";
      prev = ev.at_us;
      // Faults end well before the horizon so the in-run drain can win.
      EXPECT_LT(ev.at_us, plan.horizon_us * 8 / 10);
      if (ev.type == FaultType::kCrash) {
        EXPECT_LT(ev.a, plan.num_nodes);
        down.insert(ev.a);
        // Below heavy, a majority of nodes stays up at all times.
        EXPECT_LE(down.size(), (plan.num_nodes - 1) / 2);
      } else if (ev.type == FaultType::kRecover) {
        ASSERT_TRUE(down.count(ev.a)) << "recover without crash";
        down.erase(down.find(ev.a));
      }
    }
    EXPECT_TRUE(down.empty()) << "every crash needs a matching recover";
  }
}

TEST(ChaosPlanTest, GenerationIsDeterministic) {
  const FaultPlan a = GenerateFaultPlan(11, 4, 600'000, ChaosIntensity::kHeavy);
  const FaultPlan b = GenerateFaultPlan(11, 4, 600'000, ChaosIntensity::kHeavy);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ToJson(), b.ToJson());
}

// ---------------------------------------------------------------------------
// Campaigns + audit (simulator)
// ---------------------------------------------------------------------------

ChaosCaseConfig SmallCaseConfig(CommitProtocol protocol) {
  ChaosCaseConfig cfg;
  cfg.protocol = protocol;
  return cfg;
}

TEST(ChaosCampaignTest, IdenticalSeedGivesIdenticalOutcome) {
  const ChaosCaseConfig cfg = SmallCaseConfig(CommitProtocol::kEasyCommit);
  const ChaosCaseResult a = RunChaosCase(cfg, 17);
  const ChaosCaseResult b = RunChaosCase(cfg, 17);
  EXPECT_EQ(a.plan, b.plan);
  EXPECT_EQ(a.plan.ToJson(), b.plan.ToJson());
  EXPECT_EQ(a.faults_applied, b.faults_applied);
  EXPECT_EQ(a.audit.acked_commits, b.audit.acked_commits);
  EXPECT_EQ(a.audit.blocked_txns, b.audit.blocked_txns);
  ASSERT_EQ(a.audit.violations.size(), b.audit.violations.size());
  for (size_t i = 0; i < a.audit.violations.size(); ++i) {
    EXPECT_EQ(a.audit.violations[i].check, b.audit.violations[i].check);
    EXPECT_EQ(a.audit.violations[i].txn, b.audit.violations[i].txn);
    EXPECT_EQ(a.audit.violations[i].detail, b.audit.violations[i].detail);
  }
}

TEST(ChaosCampaignTest, ReplayOfGeneratedPlanMatchesCase) {
  const ChaosCaseConfig cfg = SmallCaseConfig(CommitProtocol::kEasyCommit);
  const ChaosCaseResult direct = RunChaosCase(cfg, 23);
  const ChaosCaseResult replay = ReplayFaultPlan(cfg, direct.plan);
  EXPECT_EQ(replay.audit.acked_commits, direct.audit.acked_commits);
  EXPECT_EQ(replay.audit.violations.size(), direct.audit.violations.size());
  EXPECT_EQ(replay.faults_applied, direct.faults_applied);
}

TEST(ChaosCampaignTest, EasyCommitSurvivesDefaultChaos) {
  const CampaignSummary summary = RunCampaign(
      SmallCaseConfig(CommitProtocol::kEasyCommit), /*first_seed=*/1,
      /*num_seeds=*/10);
  EXPECT_TRUE(summary.ok()) << summary.seeds_failed << " seeds failed";
  EXPECT_EQ(summary.atomicity_violations, 0u);
  EXPECT_EQ(summary.durability_violations, 0u);
  EXPECT_EQ(summary.liveness_violations, 0u);
  EXPECT_GT(summary.acked_commits, 0u);
  EXPECT_GT(summary.faults_applied, 0u);
}

TEST(ChaosCampaignTest, ThreePhaseSurvivesDefaultChaos) {
  const CampaignSummary summary = RunCampaign(
      SmallCaseConfig(CommitProtocol::kThreePhase), /*first_seed=*/1,
      /*num_seeds=*/6);
  EXPECT_TRUE(summary.ok()) << summary.seeds_failed << " seeds failed";
  EXPECT_EQ(summary.atomicity_violations, 0u);
  EXPECT_EQ(summary.durability_violations, 0u);
}

TEST(ChaosCampaignTest, TwoPhaseBlocksButStaysSafe) {
  // 2PC under chaos blocks (the failure mode the paper removes); blocking
  // is reported in the summary, not counted as an audit violation.
  const CampaignSummary summary = RunCampaign(
      SmallCaseConfig(CommitProtocol::kTwoPhase), /*first_seed=*/1,
      /*num_seeds=*/20);
  EXPECT_TRUE(summary.ok()) << summary.seeds_failed << " seeds failed";
  EXPECT_EQ(summary.atomicity_violations, 0u);
  EXPECT_EQ(summary.durability_violations, 0u);
  EXPECT_GT(summary.blocked_txns, 0u)
      << "this seed range is known to block 2PC cohorts";
}

TEST(ChaosCampaignTest, CampaignTableIsDeterministic) {
  const ChaosCaseConfig cfg = SmallCaseConfig(CommitProtocol::kEasyCommit);
  const CampaignSummary a = RunCampaign(cfg, 1, 3);
  const CampaignSummary b = RunCampaign(cfg, 1, 3);
  EXPECT_EQ(FormatCampaignTable({a}), FormatCampaignTable({b}));
}

// ---------------------------------------------------------------------------
// The negative case: EC without decision forwarding fails the audit, and
// the shrinker produces a smaller plan that still reproduces it.
// ---------------------------------------------------------------------------

// Pinned by running heavy-intensity campaigns against the no-forwarding
// ablation under the paper's *unmodified* termination rule (retries=0 —
// with the loss-hardened rule the decision ledger acts as pull-based
// forwarding and masks the ablation; see docs/ROBUSTNESS.md). Keep in
// sync with the engine: if a protocol change legitimately fixes this
// seed, re-hunt with
//   chaos_run --protocols ec-noforward --intensity heavy --retries 0
constexpr uint64_t kNoForwardFailingSeed = 4;

ChaosCaseConfig NoForwardConfig() {
  ChaosCaseConfig cfg;
  cfg.protocol = CommitProtocol::kEasyCommitNoForward;
  cfg.intensity = ChaosIntensity::kHeavy;
  cfg.term_fruitless_retries = 0;
  return cfg;
}

TEST(ChaosShrinkTest, NoForwardAblationFailsAuditAndShrinks) {
  const ChaosCaseConfig cfg = NoForwardConfig();
  const ChaosCaseResult result = RunChaosCase(cfg, kNoForwardFailingSeed);
  ASSERT_FALSE(result.ok())
      << "pinned ec-noforward seed no longer fails; re-hunt (see comment)";

  const ShrinkResult shrunk = ShrinkFaultPlan(cfg, result.plan);
  ASSERT_TRUE(shrunk.reproduced);
  EXPECT_LT(shrunk.plan.events.size(), result.plan.events.size())
      << "shrinker must remove at least one event";
  EXPECT_GT(shrunk.replays, 0u);

  // The minimal plan replays to a failing audit, and its JSON form
  // round-trips (what chaos_run dumps as the repro artifact).
  const ChaosCaseResult replay = ReplayFaultPlan(cfg, shrunk.plan);
  EXPECT_FALSE(replay.ok());
  FaultPlan parsed;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan(shrunk.plan.ToJson(), &parsed, &error)) << error;
  EXPECT_EQ(parsed, shrunk.plan);
}

// ---------------------------------------------------------------------------
// ThreadNetwork fault hooks (TSan-covered: ThreadNetworkChaos*)
// ---------------------------------------------------------------------------

Message Make(NodeId src, NodeId dst) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.txn = MakeTxnId(src, 1);
  return m;
}

TEST(ThreadNetworkChaosTest, FullLossDropsEverythingUntilCleared) {
  ThreadNetwork net(2);
  net.SetFaultSeed(7);
  net.SetLossProbability(1.0);
  for (int i = 0; i < 8; ++i) net.Send(Make(0, 1));
  EXPECT_EQ(net.channel(1).Size(), 0u);
  EXPECT_EQ(net.stats().messages_dropped, 8u);
  net.ClearFaults();
  net.Send(Make(0, 1));
  Message out;
  ASSERT_TRUE(net.channel(1).Pop(&out, 100ms));
  EXPECT_EQ(net.stats().messages_delivered, 1u);
  net.Shutdown();
}

TEST(ThreadNetworkChaosTest, LinkCutIsBidirectionalAndHealable) {
  ThreadNetwork net(3);
  net.SetLinkDown(0, 1, true);
  net.Send(Make(0, 1));
  net.Send(Make(1, 0));
  EXPECT_EQ(net.channel(0).Size(), 0u);
  EXPECT_EQ(net.channel(1).Size(), 0u);
  // The third node is unaffected.
  net.Send(Make(0, 2));
  Message out;
  ASSERT_TRUE(net.channel(2).Pop(&out, 100ms));
  net.SetLinkDown(0, 1, false);
  net.Send(Make(0, 1));
  ASSERT_TRUE(net.channel(1).Pop(&out, 100ms));
  net.Shutdown();
}

TEST(ThreadNetworkChaosTest, LinkLossUsesMaxOfGlobalAndLink) {
  ThreadNetwork net(2);
  net.SetFaultSeed(11);
  net.SetLinkLoss(0, 1, 1.0);
  for (int i = 0; i < 4; ++i) net.Send(Make(0, 1));
  EXPECT_EQ(net.channel(1).Size(), 0u);
  EXPECT_EQ(net.stats().messages_dropped, 4u);
  net.SetLinkLoss(0, 1, 0.0);
  net.Send(Make(0, 1));
  Message out;
  ASSERT_TRUE(net.channel(1).Pop(&out, 100ms));
  net.Shutdown();
}

TEST(ThreadNetworkChaosTest, ExtraDelayDefersDelivery) {
  ThreadNetwork net(2);
  net.SetExtraDelay(0, 1, 50'000);
  net.Send(Make(0, 1));
  Message out;
  // Not delivered synchronously; the delay pump hands it over later.
  EXPECT_FALSE(net.channel(1).TryPop(&out));
  ASSERT_TRUE(net.channel(1).Pop(&out, 2000ms));
  EXPECT_EQ(out.src, 0u);
  net.ClearFaults();
  net.Shutdown();
}

TEST(ThreadNetworkChaosTest, ApplyPlanToThreadClusterStaysSafe) {
  ThreadClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.clients_per_node = 2;
  cfg.protocol = CommitProtocol::kEasyCommit;
  cfg.seed = 77;
  // Generous wall-clock timeouts: a spuriously expired timeout on a busy
  // CI machine acts like the Section 4.1 delay scenario.
  cfg.commit.timeout_us = 250'000;
  cfg.commit.termination_window_us = 80'000;

  YcsbConfig ycsb;
  ycsb.num_partitions = 3;
  ycsb.rows_per_partition = 2048;
  ycsb.partitions_per_txn = 2;

  ThreadCluster cluster(cfg, std::make_unique<YcsbWorkload>(ycsb));
  cluster.Start();

  FaultPlan plan;
  plan.seed = 77;
  plan.num_nodes = 3;
  plan.horizon_us = 300'000;
  plan.events.push_back(
      {.at_us = 50'000, .type = FaultType::kCrash, .a = 2});
  plan.events.push_back(
      {.at_us = 120'000, .type = FaultType::kLossBurst,
       .duration_us = 60'000, .probability = 0.02});
  plan.events.push_back(
      {.at_us = 200'000, .type = FaultType::kRecover, .a = 2});
  // Blocks until the last event fired, then heals the network and
  // recovers any node still down.
  ApplyPlanToThreadCluster(plan, &cluster, /*time_scale=*/1.0);

  cluster.RunFor(0.3);
  cluster.Quiesce();
  cluster.Stop();
  EXPECT_GT(cluster.TotalCommitted(), 5u);
  EXPECT_TRUE(cluster.monitor().Violations().empty());
}

}  // namespace
}  // namespace ecdb
