// Contract tests for the open-addressing FlatMap used on the hot paths of
// storage, the lock table and the threaded runtime. The pointer- and
// iterator-invalidation rules pinned here are the ones Table::Get's
// documentation promises to callers.

#include "common/flat_map.h"

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ecdb {
namespace {

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(7), nullptr);

  map[7] = 70;
  map[9] = 90;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 70);
  EXPECT_TRUE(map.Contains(9));
  EXPECT_FALSE(map.Contains(8));

  EXPECT_TRUE(map.Erase(7));
  EXPECT_FALSE(map.Erase(7));
  EXPECT_EQ(map.Find(7), nullptr);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.Find(9), 90);
}

TEST(FlatMapTest, OperatorBracketDefaultConstructs) {
  FlatMap<uint64_t, std::vector<int>> map;
  EXPECT_TRUE(map[5].empty());
  map[5].push_back(1);
  EXPECT_EQ(map[5].size(), 1u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, EmplaceDoesNotOverwrite) {
  FlatMap<uint64_t, int> map;
  auto [v1, inserted1] = map.Emplace(3, 30);
  EXPECT_TRUE(inserted1);
  EXPECT_EQ(*v1, 30);
  auto [v2, inserted2] = map.Emplace(3, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*v2, 30);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, GrowsThroughRehashesWithoutLosingEntries) {
  FlatMap<uint64_t, uint64_t> map;
  constexpr uint64_t kN = 10000;
  for (uint64_t i = 0; i < kN; ++i) map[i * 31] = i;
  EXPECT_EQ(map.size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_NE(map.Find(i * 31), nullptr) << i;
    EXPECT_EQ(*map.Find(i * 31), i);
  }
  EXPECT_EQ(map.Find(1), nullptr);
}

TEST(FlatMapTest, ReservePreventsRehash) {
  FlatMap<uint64_t, uint64_t> map;
  map.Reserve(1000);
  const size_t cap = map.capacity();
  EXPECT_GE(cap * 3, 1000u * 4 / 4 * 3);  // holds 1000 under 3/4 load
  for (uint64_t i = 0; i < 1000; ++i) map[i] = i;
  EXPECT_EQ(map.capacity(), cap);  // no growth happened

  // With a reservation in place, pointers stay valid across the fill: the
  // contract bulk loaders rely on is "no rehash before the reserved count".
  map.Clear();
  map.Reserve(1000);
  uint64_t* first = &map[0];
  for (uint64_t i = 1; i < 1000; ++i) map[i] = i;
  EXPECT_EQ(first, map.Find(0));
}

TEST(FlatMapTest, PointerInvalidationOnRehashIsReal) {
  // Not a guarantee we *want*, but the documented hazard: growing past the
  // load factor moves every slot, so a held pointer must not be reused.
  FlatMap<uint64_t, uint64_t> map;
  map[1] = 11;
  const uint64_t* before = map.Find(1);
  for (uint64_t i = 2; i < 2000; ++i) map[i] = i;  // forces rehashes
  const uint64_t* after = map.Find(1);
  EXPECT_EQ(*after, 11u);
  // `before` may no longer equal `after`; dereferencing it would be UB. We
  // only assert the lookup still works post-rehash.
  (void)before;
}

TEST(FlatMapTest, EraseBackwardShiftKeepsProbeChainsReachable) {
  // Dense sequential keys force long shared probe chains; erasing from the
  // middle must backward-shift, not tombstone, so every survivor stays
  // findable.
  FlatMap<uint64_t, uint64_t> map;
  for (uint64_t i = 0; i < 512; ++i) map[i] = i;
  for (uint64_t i = 0; i < 512; i += 2) EXPECT_TRUE(map.Erase(i));
  EXPECT_EQ(map.size(), 256u);
  for (uint64_t i = 0; i < 512; ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(map.Find(i), nullptr) << i;
    } else {
      ASSERT_NE(map.Find(i), nullptr) << i;
      EXPECT_EQ(*map.Find(i), i);
    }
  }
}

TEST(FlatMapTest, EraseReleasesSlotResources) {
  FlatMap<uint64_t, std::string> map;
  map[1] = std::string(1000, 'x');
  EXPECT_TRUE(map.Erase(1));
  // The vacated slot must not keep the old value alive: re-inserting the
  // key yields a fresh default, not the stale string.
  EXPECT_TRUE(map[1].empty());
}

TEST(FlatMapTest, ClearKeepsCapacityAndEmpties) {
  FlatMap<uint64_t, uint64_t> map;
  for (uint64_t i = 0; i < 100; ++i) map[i] = i;
  const size_t cap = map.capacity();
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(map.Find(5), nullptr);
  map[5] = 55;
  EXPECT_EQ(*map.Find(5), 55u);
}

TEST(FlatMapTest, IterationVisitsEveryEntryExactlyOnce) {
  FlatMap<uint64_t, uint64_t> map;
  for (uint64_t i = 0; i < 300; ++i) map[i * 7] = i;
  std::set<uint64_t> seen;
  for (const auto& slot : map) {
    EXPECT_TRUE(seen.insert(slot.key).second) << "duplicate " << slot.key;
    EXPECT_EQ(slot.value * 7, slot.key);
  }
  EXPECT_EQ(seen.size(), 300u);
}

TEST(FlatMapTest, IterationOrderIsDeterministicForSameHistory) {
  // The simulator's golden trace requires container iteration to depend
  // only on the operation sequence.
  auto build = [] {
    FlatMap<uint64_t, uint64_t> map;
    for (uint64_t i = 0; i < 64; ++i) map[i * 13] = i;
    map.Erase(13 * 7);
    map.Erase(13 * 40);
    return map;
  };
  FlatMap<uint64_t, uint64_t> a = build();
  FlatMap<uint64_t, uint64_t> b = build();
  std::vector<uint64_t> ka, kb;
  for (const auto& slot : a) ka.push_back(slot.key);
  for (const auto& slot : b) kb.push_back(slot.key);
  EXPECT_EQ(ka, kb);
}

TEST(FlatMapTest, CustomHasherIsUsed) {
  struct Pair {
    uint32_t a = 0;
    uint32_t b = 0;
    bool operator==(const Pair&) const = default;
  };
  struct PairHash {
    size_t operator()(const Pair& p) const {
      uint64_t h = (static_cast<uint64_t>(p.a) << 32) | p.b;
      return static_cast<size_t>(h * 0x9E3779B97F4A7C15ULL);
    }
  };
  FlatMap<Pair, int, PairHash> map;
  map[Pair{1, 2}] = 12;
  map[Pair{2, 1}] = 21;
  EXPECT_EQ(*map.Find(Pair{1, 2}), 12);
  EXPECT_EQ(*map.Find(Pair{2, 1}), 21);
  EXPECT_TRUE(map.Erase(Pair{1, 2}));
  EXPECT_EQ(map.Find(Pair{1, 2}), nullptr);
}

// Randomized differential test against std::unordered_map-like semantics.
TEST(FlatMapTest, RandomizedMirrorsReferenceMap) {
  Rng rng(2024);
  FlatMap<uint64_t, uint64_t> map;
  std::vector<std::pair<uint64_t, uint64_t>> ref;  // key -> value
  auto ref_find = [&](uint64_t k) -> uint64_t* {
    for (auto& [key, value] : ref) {
      if (key == k) return &value;
    }
    return nullptr;
  };
  for (int step = 0; step < 20000; ++step) {
    const uint64_t key = rng.NextBounded(400);
    switch (rng.NextBounded(3)) {
      case 0: {  // insert/overwrite
        const uint64_t value = rng.Next();
        map[key] = value;
        if (uint64_t* v = ref_find(key)) {
          *v = value;
        } else {
          ref.emplace_back(key, value);
        }
        break;
      }
      case 1: {  // erase
        const bool erased = map.Erase(key);
        bool ref_erased = false;
        for (size_t i = 0; i < ref.size(); ++i) {
          if (ref[i].first == key) {
            ref[i] = ref.back();
            ref.pop_back();
            ref_erased = true;
            break;
          }
        }
        ASSERT_EQ(erased, ref_erased) << "step " << step;
        break;
      }
      default: {  // lookup
        uint64_t* v = map.Find(key);
        uint64_t* r = ref_find(key);
        ASSERT_EQ(v == nullptr, r == nullptr) << "step " << step;
        if (v != nullptr) ASSERT_EQ(*v, *r) << "step " << step;
      }
    }
    ASSERT_EQ(map.size(), ref.size()) << "step " << step;
  }
}

}  // namespace
}  // namespace ecdb
