#ifndef ECDB_CLUSTER_SIM_CLUSTER_H_
#define ECDB_CLUSTER_SIM_CLUSTER_H_

#include <memory>
#include <vector>

#include "cluster/config.h"
#include "cluster/sim_node.h"
#include "commit/invariants.h"
#include "net/network.h"
#include "sim/scheduler.h"
#include "stats/metrics.h"
#include "workload/workload.h"

namespace ecdb {

/// A complete simulated deployment: scheduler + network + N server nodes,
/// each hosting one partition with its own clients (the paper's
/// partition-per-server, client-per-server layout on Azure).
///
/// Typical benchmark use:
///   SimCluster cluster(config, std::move(workload));
///   cluster.Start();
///   cluster.RunFor(warmup_seconds);
///   cluster.BeginMeasurement();
///   cluster.RunFor(measure_seconds);
///   ClusterStats stats = cluster.CollectStats(measure_seconds);
class SimCluster {
 public:
  SimCluster(const ClusterConfig& config, std::unique_ptr<Workload> workload);

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  /// Bootstraps every node (loads partitions) and launches the clients.
  void Start();

  /// Advances simulated time by `seconds`.
  void RunFor(double seconds);

  /// Runs until the event queue drains or `max_events` fire. Used by
  /// failure tests to reach quiescence.
  size_t RunToQuiescence(size_t max_events = 10'000'000);

  /// Opens a fresh measurement window on every node.
  void BeginMeasurement();

  /// Merges per-node stats for a window of `duration_seconds` (idle time
  /// is derived from worker busy time vs. wall time).
  ClusterStats CollectStats(double duration_seconds) const;

  SimNode& node(NodeId id) { return *nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }
  Scheduler& scheduler() { return scheduler_; }
  SimNetwork& network() { return *network_; }
  SafetyMonitor& monitor() { return monitor_; }
  Workload& workload() { return *workload_; }
  const ClusterConfig& config() const { return config_; }

  /// Crashes / recovers a node (network + node state).
  void CrashNode(NodeId id);
  void RecoverNode(NodeId id);

  /// Quiesces every node's closed loop (see SimNode::Quiesce); a
  /// subsequent RunToQuiescence drains all in-flight work.
  void Quiesce() {
    for (auto& node : nodes_) node->Quiesce();
  }

  /// Turns on protocol tracing on every node (inert under ECDB_TRACE=OFF).
  void EnableTracing(size_t capacity = TraceRecorder::kDefaultCapacity);

  /// Per-node recorders, for CollectEvents + the exporters.
  std::vector<const TraceRecorder*> recorders() const;

 private:
  ClusterConfig config_;
  Scheduler scheduler_;
  std::unique_ptr<SimNetwork> network_;
  std::unique_ptr<Workload> workload_;
  SafetyMonitor monitor_;
  std::vector<std::unique_ptr<SimNode>> nodes_;
  Micros measurement_start_us_ = 0;
};

}  // namespace ecdb

#endif  // ECDB_CLUSTER_SIM_CLUSTER_H_
