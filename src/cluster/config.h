#ifndef ECDB_CLUSTER_CONFIG_H_
#define ECDB_CLUSTER_CONFIG_H_

#include <cstdint>

#include "cc/lock_table.h"
#include "commit/commit_engine.h"
#include "common/types.h"
#include "net/network.h"
#include "sim/scheduler.h"
#include "workload/open_loop.h"

namespace ecdb {

/// CPU service-time model for the simulated server (microseconds). These
/// model where a Deneva/ExpoDB worker thread spends its time; the Figure 12
/// breakdown is the direct readout of these categories.
struct ServiceCosts {
  Micros useful_work_per_op_us = 4;  // stored-procedure compute per op
  Micros index_per_op_us = 2;        // index probe per op
  Micros txn_manager_us = 10;        // per-attempt transaction bookkeeping
  Micros commit_msg_us = 10;         // processing one commit-protocol message
  Micros remote_reply_us = 5;        // processing a remote-exec reply
  Micros abort_cleanup_us = 12;      // rolling back an aborted attempt
  Micros overhead_us = 10;           // txn-table fetch/cleanup on completion
};

/// Full configuration of a simulated cluster run.
struct ClusterConfig {
  uint32_t num_nodes = 16;
  uint32_t workers_per_node = 4;

  /// Open client connections per server node (closed loop: each client
  /// keeps exactly one transaction in flight). The paper applies a heavy
  /// open-connection load per server so the system runs saturated; the
  /// default here is chosen to saturate the simulated workers as well.
  uint32_t clients_per_node = 64;

  CommitProtocol protocol = CommitProtocol::kEasyCommit;
  CcPolicy cc_policy = CcPolicy::kNoWait;

  NetworkConfig network;
  CommitEngineConfig commit;
  ServiceCosts costs;

  /// Aborted transactions restart after a randomized exponential backoff:
  /// U[0,1) * base * 2^min(attempts, max_shift).
  Micros backoff_base_us = 500;
  uint32_t backoff_max_shift = 6;

  /// Abort an attempt whose remote fragments have not all answered within
  /// this bound (covers execution-phase node failures).
  Micros exec_timeout_us = 50'000;

  /// Ablation knob (A3): release record locks when the decision is applied
  /// instead of at cleanup time. The paper's EC implementation frees
  /// transactional resources (locks included) only once every forwarded
  /// decision has arrived (Section 5.3), which is part of why EC trails
  /// 2PC slightly at high write ratios (Section 6.5); this flag removes
  /// that wait so its cost can be measured. Affects all protocols.
  bool release_locks_at_decision = false;

  /// Transport-level message coalescing (SimNetwork::EnableCoalescing):
  /// every message a scheduler step emits toward the same destination
  /// travels as one frame, and same-arrival frames share one delivery
  /// event. Off by default — delivery *order* across destinations changes
  /// (per-link FIFO is preserved), so runs with the knob on are
  /// deterministic among themselves but not bit-identical to runs with it
  /// off. Benchmarks and the coalescing chaos variant opt in.
  bool coalesce_transport = false;

  /// Event-queue backend for the simulation scheduler. The heap default is
  /// fastest at small scale; kTimerWheel keeps dispatch O(1) amortized when
  /// a 10^3..10^4-node cluster holds millions of pending events. Event
  /// order is bit-identical under either (pinned by the determinism
  /// goldens).
  SchedulerBackend scheduler_backend = SchedulerBackend::kHeap;

  /// Open-loop load generation (off by default: clients run the classic
  /// closed loop, one transaction in flight each).
  OpenLoopConfig open_loop;

  uint64_t seed = 42;
};

}  // namespace ecdb

#endif  // ECDB_CLUSTER_CONFIG_H_
