#ifndef ECDB_CLUSTER_SIM_NODE_H_
#define ECDB_CLUSTER_SIM_NODE_H_

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cc/lock_table.h"
#include "cluster/config.h"
#include "commit/commit_engine.h"
#include "commit/commit_env.h"
#include "commit/invariants.h"
#include "common/rng.h"
#include "net/network.h"
#include "sim/scheduler.h"
#include "stats/metrics.h"
#include "storage/table.h"
#include "trace/trace_recorder.h"
#include "txn/transaction.h"
#include "wal/wal.h"
#include "workload/open_loop.h"
#include "workload/workload.h"

namespace ecdb {

/// One simulated server process: partition storage, lock table, WAL,
/// commit-protocol engine, a pool of worker threads (modeled as capacity
/// on the shared discrete-event scheduler), and the closed-loop clients
/// attached to it.
///
/// The node is the CommitEnv for its CommitEngine: protocol messages flow
/// through the simulated network, timers through the scheduler, log writes
/// into the node's WAL, and decisions into the execution engine (release
/// locks / undo writes / notify the client).
class SimNode : public CommitEnv {
 public:
  SimNode(NodeId id, const ClusterConfig& config, Scheduler* scheduler,
          SimNetwork* network, Workload* workload, SafetyMonitor* monitor,
          uint64_t seed);
  ~SimNode() override;

  SimNode(const SimNode&) = delete;
  SimNode& operator=(const SimNode&) = delete;

  /// Loads this node's partition and registers with the network.
  void Bootstrap();

  /// Spawns the configured client connections (each immediately submits a
  /// transaction).
  void StartClients();

  // --- CommitEnv ---
  NodeId self() const override { return id_; }
  void Send(Message msg) override;
  void Log(TxnId txn, LogRecordType type) override;
  void ArmTimer(TxnId txn, Micros delay_us) override;
  void CancelTimer(TxnId txn) override;
  Decision VoteFor(TxnId txn) override;
  void ApplyDecision(TxnId txn, Decision decision) override;
  void OnBlocked(TxnId txn) override;
  void OnCleanup(TxnId txn) override;
  Micros NowUs() const override { return scheduler_->Now(); }
  void OnPhaseSample(TxnId txn, CommitPhase phase,
                     Micros elapsed_us) override;

  // --- Fault injection ---

  /// Fail-stop crash: volatile state (locks, fragments, in-flight jobs)
  /// is lost; the WAL survives (stable storage).
  void Crash();

  /// Restart after a crash: re-registers with the network and runs the
  /// Section 4.2 independent-recovery analysis over the WAL; transactions
  /// it cannot resolve locally are handed to the termination protocol.
  void Recover();

  bool crashed() const { return crashed_; }

  /// Stops the closed loop: no new client transactions are issued and
  /// aborted attempts are no longer retried, so in-flight work drains and
  /// the scheduler reaches quiescence. Sticky across crash/recover (the
  /// consistency audit quiesces, then restarts every node). Irreversible
  /// for the node's lifetime.
  void Quiesce() { quiesced_ = true; }
  bool quiesced() const { return quiesced_; }

  /// When enabled, records the TxnId of every transaction whose commit ran
  /// the commit protocol and was acked back to a client — the durability
  /// set of the consistency audit. (Single-partition and read-only commits
  /// skip the protocol and write no log records; decision-level durability
  /// is undefined for them, so they are excluded.) Survives Crash(): an
  /// ack the client saw cannot be un-sent by the server crashing.
  void TrackAckedCommits(bool on) { track_acked_ = on; }
  const std::vector<TxnId>& acked_commits() const { return acked_commits_; }

  /// Overrides participant votes (fault-injection tests force aborts).
  using VoteOverride = std::function<Decision(TxnId)>;
  void set_vote_override(VoteOverride fn) { vote_override_ = std::move(fn); }

  // --- Introspection ---
  NodeStats& stats() { return stats_; }
  const NodeStats& stats() const { return stats_; }

  /// Starts a fresh measurement window (clears the stats counters and
  /// remembers the busy-time baseline used to derive idle time).
  void BeginMeasurement();

  /// Worker-busy microseconds accumulated since construction.
  uint64_t total_busy_us() const { return total_busy_us_; }
  uint64_t busy_us_at_window_start() const { return busy_at_window_start_; }

  /// Turns on protocol tracing for this node (inert under ECDB_TRACE=OFF).
  void EnableTracing(size_t capacity = TraceRecorder::kDefaultCapacity) {
    trace_.Enable(capacity);
  }
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

  /// Termination-protocol rounds initiated since BeginMeasurement(). The
  /// engine's counter resets when a crash recreates the engine, so the
  /// difference is clamped at zero.
  uint64_t TerminationRoundsThisWindow() const {
    const uint64_t now = engine_->termination_rounds();
    return now > term_rounds_at_window_start_
               ? now - term_rounds_at_window_start_
               : 0;
  }

  CommitEngine& engine() { return *engine_; }
  PartitionStore& store() { return store_; }
  MemoryWal& wal() { return wal_; }
  LockTable& locks() { return locks_; }

  /// Clients with no in-flight transaction (blocked clients are excluded).
  size_t IdleClientCount() const;

  /// Client slots currently carrying a transaction. Under the open loop
  /// this is the admission-control occupancy; at drain it reaches zero,
  /// closing the conservation law offered == committed + rejected +
  /// terminal aborts.
  size_t InFlightClientCount() const {
    return clients_.size() - IdleClientCount();
  }

 private:
  /// One closed-loop client connection.
  struct ClientSlot {
    TxnRequest request;
    Micros first_start_us = 0;
    uint32_t attempts = 0;
    bool in_flight = false;
  };

  /// Coordinator-side state of one transaction attempt. Remote fragments
  /// are dispatched *sequentially* (Deneva/ExpoDB execute a transaction
  /// until it needs remote data, wait for that server's reply, then
  /// continue), so execution latency grows with the partition count.
  struct AttemptState {
    uint32_t slot = 0;
    std::vector<Operation> local_ops;
    std::unordered_map<NodeId, std::vector<Operation>> remote_ops;
    std::vector<NodeId> remote_order;  // dispatch order
    size_t next_remote = 0;            // index into remote_order
    std::vector<UndoRecord> local_undo;
    std::unordered_set<NodeId> pending_remote;
    std::unordered_set<NodeId> ok_remote;
    // Copy-on-write: one buffer, shared by every fragment message, the
    // engine's record, and the begin-commit/ready WAL entries.
    CowVector<NodeId> participants;
    bool has_writes = false;
    bool local_ok = false;
    bool aborting = false;
    bool protocol_started = false;
    Scheduler::TaskId exec_timer = 0;
  };

  /// Incremental fragment execution (supports WAIT_DIE suspension).
  struct ExecContext {
    TxnId txn;
    uint64_t priority_ts;
    CowVector<Operation> ops;  // shares the kRemoteExec message's buffer
    size_t idx = 0;
    std::vector<UndoRecord> undo;
    std::function<void(bool ok, std::vector<UndoRecord> undo)> done;
    uint64_t epoch;  // guards against resuming across a crash
  };

  using CostVector = std::array<Micros, kNumTimeCategories>;

  static CostVector Cost(TimeCategory c, Micros us) {
    CostVector v{};
    v[static_cast<size_t>(c)] = us;
    return v;
  }

  // Worker pool model. Jobs are Scheduler::Task (TaskFn) rather than
  // std::function: the common capture shapes fit the inline buffer, so
  // queueing and completing a job does not allocate. A running job parks in
  // a pooled slot and the scheduler event is a 16-byte trampoline; nesting
  // the job callable inside the completion lambda would overflow any inline
  // buffer and force a heap allocation per job (i.e. per message).
  using Job = Scheduler::Task;
  void EnqueueJob(CostVector cost, Job fn);
  void StartJob(CostVector cost, Job fn);
  void FinishJobSlot(uint32_t idx);
  void FinishJob(const CostVector& cost, Job& fn);

  // Message handling.
  void OnNetMessage(const Message& msg);
  void HandleRemoteExec(const Message& msg);
  void HandleRemoteExecReply(const Message& msg, bool ok);
  void HandleRemoteRollback(const Message& msg);

  // Open-loop load generation (config_.open_loop.enabled): arrivals are a
  // self-rescheduling scheduler event stream, independent of completions.
  void ScheduleNextArrival();
  void OnArrival();

  // Coordinator paths.
  void StartNewClientTxn(uint32_t slot);
  void StartAttempt(uint32_t slot);
  void LocalExecDone(TxnId txn, bool ok, std::vector<UndoRecord> undo);
  void AllFragmentsReady(TxnId txn);
  void SendNextFragment(TxnId txn);
  void AbortAttempt(TxnId txn, bool send_rollbacks);
  void CompleteWithoutProtocol(TxnId txn);
  void FinishCommitted(TxnId txn);
  void ScheduleRetry(uint32_t slot);
  void ArmExecTimer(TxnId txn);
  void CancelExecTimer(AttemptState& attempt);

  // Execution engine.
  void ExecLoop(std::shared_ptr<ExecContext> ctx);
  void ApplyOpAndContinue(std::shared_ptr<ExecContext> ctx);
  bool ApplyOp(const Operation& op, std::vector<UndoRecord>* undo);
  void UndoWrites(const std::vector<UndoRecord>& undo);

  CostVector ExecCost(size_t num_ops) const;

  NodeId id_;
  const ClusterConfig& config_;
  Scheduler* scheduler_;
  SimNetwork* network_;
  Workload* workload_;
  SafetyMonitor* monitor_;
  Rng rng_;

  PartitionStore store_;
  KeyPartitioner partitioner_;
  LockTable locks_;
  MemoryWal wal_;
  std::unique_ptr<CommitEngine> engine_;

  std::vector<ClientSlot> clients_;
  // Open loop only: idle slot indices (clients_ sized to the admission cap)
  // and the deterministic per-node arrival-gap generator.
  std::vector<uint32_t> free_client_slots_;
  ArrivalSchedule arrivals_;
  std::unordered_map<TxnId, AttemptState> attempts_;
  std::unordered_map<TxnId, FragmentState> fragments_;
  std::unordered_set<TxnId> pending_rollbacks_;  // rollback beat the exec
  std::unordered_map<TxnId, Scheduler::TaskId> timers_;
  TxnIdAllocator txn_ids_;
  uint64_t next_priority_ts_ = 1;

  // Worker pool.
  /// One in-flight worker job, parked until its completion event fires.
  /// `epoch` guards against completions that straddle a crash.
  struct RunningJob {
    CostVector cost;
    Job fn;
    uint64_t epoch = 0;
  };

  uint32_t busy_workers_ = 0;
  std::deque<std::pair<CostVector, Job>> job_queue_;
  std::vector<RunningJob> running_jobs_;
  std::vector<uint32_t> free_job_slots_;

  bool crashed_ = false;
  uint64_t epoch_ = 0;  // bumped on crash; stale continuations are dropped
  bool quiesced_ = false;
  bool track_acked_ = false;
  std::vector<TxnId> acked_commits_;

  NodeStats stats_;
  uint64_t total_busy_us_ = 0;
  uint64_t busy_at_window_start_ = 0;
  uint64_t term_rounds_at_window_start_ = 0;
  TraceRecorder trace_;

  VoteOverride vote_override_;
};

}  // namespace ecdb

#endif  // ECDB_CLUSTER_SIM_NODE_H_
