#include "cluster/thread_node.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "commit/recovery.h"
#include "common/logging.h"

namespace ecdb {

using namespace std::chrono_literals;

ThreadNode::ThreadNode(NodeId id, const ThreadClusterConfig& config,
                       ThreadNetwork* network, Workload* workload,
                       SafetyMonitor* monitor, uint64_t seed)
    : id_(id),
      config_(config),
      network_(network),
      workload_(workload),
      monitor_(monitor),
      rng_(seed),
      store_(id),
      partitioner_(config.num_nodes),
      locks_(config.cc_policy),
      arrivals_(config.open_loop, seed ^ 0x9e3779b97f4a7c15ULL),
      txn_ids_(id) {
  if (config_.wal_dir.empty()) {
    wal_ = std::make_unique<MemoryWal>();
  } else {
    auto wal = FileWal::Open(config_.wal_dir + "/node" + std::to_string(id) +
                             ".wal");
    ECDB_CHECK(wal.ok());
    wal_ = std::move(wal).value();
  }
  trace_.set_node(id_);
  engine_ = std::make_unique<CommitEngine>(config_.protocol, this,
                                           config_.commit);
  engine_->set_trace(&trace_);
  // Under the open loop the slots are the admission-control window, not a
  // fixed population of closed-loop clients.
  clients_.resize(config_.open_loop.enabled
                      ? config_.open_loop.max_in_flight_per_node
                      : config_.clients_per_node);
  if (config_.coalesce_transport) send_buffers_.resize(config_.num_nodes);
}

ThreadNode::~ThreadNode() { Stop(); }

void ThreadNode::Bootstrap() { workload_->LoadPartition(&store_, partitioner_); }

void ThreadNode::Start() {
  ECDB_CHECK(!running_.load());
  running_.store(true);
  thread_ = std::thread([this] { Loop(); });
}

void ThreadNode::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

Micros ThreadNode::NowUs() const {
  return static_cast<Micros>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_start_)
          .count());
}

void ThreadNode::Loop() {
  epoch_start_ = std::chrono::steady_clock::now();
  if (config_.open_loop.enabled) {
    free_client_slots_.reserve(clients_.size());
    for (uint32_t slot = 0; slot < clients_.size(); ++slot) {
      free_client_slots_.push_back(slot);
    }
    next_arrival_us_ = NowUs();
    ScheduleNextArrival();
  } else {
    for (uint32_t slot = 0; slot < clients_.size(); ++slot) {
      StartNewClientTxn(slot);
    }
  }
  // The initial client transactions' fragments must leave before the loop
  // first blocks on the mailbox, or every node starts its run one sleep
  // period late waiting on everyone else's.
  if (config_.coalesce_transport) FlushOutput();
  std::vector<Message> inbox;  // recycled: PopAll swaps its capacity in
  while (running_.load(std::memory_order_relaxed)) {
    if (crash_requested_.exchange(false)) {
      // Volatile state is lost (the WAL object survives: stable storage).
      crashed_.store(true);
      attempts_.Clear();
      attempt_pool_.clear();
      free_attempt_slots_.clear();
      fragments_.Clear();
      pending_rollbacks_.clear();
      timers_.Clear();
      protocol_timers_.Clear();
      locks_ = LockTable(config_.cc_policy);
      engine_ = std::make_unique<CommitEngine>(config_.protocol, this,
                                               config_.commit);
      engine_->set_trace(&trace_);
      if (config_.open_loop.enabled) {
        // Admitted in-flight transactions die with the volatile state;
        // count them as terminal aborts so the conservation law survives
        // crashes. (timers_.Clear() above also killed the arrival chain.)
        free_client_slots_.clear();
        for (uint32_t slot = 0; slot < clients_.size(); ++slot) {
          if (!clients_[slot].idle) stats_.open_loop_aborted++;
          clients_[slot].idle = true;
          free_client_slots_.push_back(slot);
        }
      } else {
        for (ClientSlot& client : clients_) client.idle = true;
      }
      // Unflushed frames never made it onto the wire: fail-stop means a
      // crashed node's buffered sends die with its volatile state.
      for (NodeId dst : dirty_dsts_) send_buffers_[dst].clear();
      dirty_dsts_.clear();
    }
    if (recover_requested_.exchange(false)) {
      crashed_.store(false);
      // Section 4.2 independent recovery; consult-peers cases re-enter
      // the protocol and resolve via the termination machinery.
      for (TxnId txn : RecoveryManager::InFlightTxns(*wal_)) {
        const auto last = wal_->LastFor(txn);
        switch (RecoveryManager::AnalyzeRecord(last)) {
          case RecoveryAction::kAbort:
            wal_->Append({0, txn, LogRecordType::kTransactionAbort, {}});
            if (monitor_ != nullptr) {
              monitor_->RecordApplied(txn, id_, Decision::kAbort);
            }
            break;
          case RecoveryAction::kCommit:
            wal_->Append({0, txn, LogRecordType::kTransactionCommit, {}});
            if (monitor_ != nullptr) {
              monitor_->RecordApplied(txn, id_, Decision::kCommit);
            }
            break;
          case RecoveryAction::kConsultPeers:
            engine_->ResumeAfterRecovery(
                txn, TxnCoordinator(txn), last->participants,
                last->type == LogRecordType::kPreCommit
                    ? CohortState::kPreCommit
                    : CohortState::kReady);
            break;
        }
      }
      // Seed the fresh engine's decision ledger from the WAL so peers'
      // termination queries about pre-crash decisions still get answers
      // (mirrors SimNode::Recover; the pre-crash ledger died with the
      // engine above).
      for (const LogRecord& r : wal_->Scan()) {
        switch (r.type) {
          case LogRecordType::kCommitDecision:
          case LogRecordType::kCommitReceived:
          case LogRecordType::kTransactionCommit:
            engine_->SeedDecision(r.txn, Decision::kCommit);
            break;
          case LogRecordType::kAbortDecision:
          case LogRecordType::kAbortReceived:
          case LogRecordType::kTransactionAbort:
            engine_->SeedDecision(r.txn, Decision::kAbort);
            break;
          default:
            break;
        }
      }
      if (config_.open_loop.enabled) {
        // The crash wiped the arrival chain; restart it rebased to now so
        // the downtime doesn't replay as a burst of overdue arrivals.
        next_arrival_us_ = NowUs();
        ScheduleNextArrival();
      } else {
        for (uint32_t slot = 0; slot < clients_.size(); ++slot) {
          StartNewClientTxn(slot);
        }
      }
    }

    // Sleep no longer than the earliest timer deadline, capped at 1ms so
    // crash/stop requests are still observed promptly.
    Micros wait_us = 1000;
    Micros deadline = 0;
    if (timers_.PeekDeadline(&deadline)) {
      const Micros now = NowUs();
      wait_us = deadline <= now ? 0 : std::min<Micros>(1000, deadline - now);
    }
    network_->channel(id_).PopAll(&inbox,
                                  std::chrono::microseconds(wait_us));
    for (const Message& msg : inbox) {
      // Fail-stop takes effect the instant the network is cut, even if the
      // crash request has not been drained yet: processing one more message
      // (or applying a decision whose broadcast was just dropped) would
      // violate the transmit-before-commit discipline. Checked per message
      // so a crash arriving mid-batch drops the remainder of the batch.
      if (crashed_.load(std::memory_order_relaxed) ||
          network_->IsCrashed(id_)) {
        break;
      }
      HandleMessage(msg);
    }
    if (!crashed_.load(std::memory_order_relaxed) &&
        !network_->IsCrashed(id_)) {
      FireDueTimers();
    }
    if (config_.coalesce_transport) FlushOutput();
  }
}

void ThreadNode::FlushOutput() {
  // Write-ahead order: this iteration's WAL group becomes durable before
  // any message announcing its decisions reaches another node's mailbox.
  (void)wal_->Flush();
  for (NodeId dst : dirty_dsts_) {
    network_->SendBatch(id_, dst, &send_buffers_[dst]);
  }
  dirty_dsts_.clear();
}

void ThreadNode::HandleMessage(const Message& msg) {
  if (trace_.enabled()) {
    trace_.Record(TraceEventType::kMsgRecv, NowUs(), msg.txn, msg.trace_seq,
                  msg.src, static_cast<uint8_t>(msg.type));
  }
  switch (msg.type) {
    case MsgType::kRemoteExec:
      HandleRemoteExec(msg);
      return;
    case MsgType::kRemoteExecOk:
      HandleRemoteExecReply(msg, true);
      return;
    case MsgType::kRemoteExecFail:
      HandleRemoteExecReply(msg, false);
      return;
    case MsgType::kRemoteRollback:
      HandleRemoteRollback(msg);
      return;
    default:
      engine_->OnMessage(msg);
      return;
  }
}

// --------------------------------------------------------------------------
// Timers
// --------------------------------------------------------------------------

void ThreadNode::ScheduleTimer(Micros deadline, Timer timer) {
  const TimerHeap::Id id = timers_.Schedule(deadline, timer);
  if (timer.kind == TimerKind::kProtocol) protocol_timers_[timer.txn] = id;
}

void ThreadNode::FireDueTimers() {
  const Micros now = NowUs();
  Timer timer{TimerKind::kProtocol, kInvalidTxn, 0};
  while (timers_.PopDue(now, &timer)) {
    switch (timer.kind) {
      case TimerKind::kProtocol:
        protocol_timers_.Erase(timer.txn);
        if (trace_.enabled()) {
          trace_.Record(TraceEventType::kTimerFire, NowUs(), timer.txn);
        }
        engine_->OnTimeout(timer.txn);
        break;
      case TimerKind::kExec: {
        AttemptState* attempt = FindAttempt(timer.txn);
        if (attempt != nullptr && !attempt->protocol_started &&
            attempt->pending_remote != kInvalidNode) {
          AbortAttempt(timer.txn, /*send_rollbacks=*/true);
        }
        break;
      }
      case TimerKind::kRetry:
        StartAttempt(timer.slot);
        break;
      case TimerKind::kArrival:
        // Quiesce ends the chain: no further arrivals, in-flight drains.
        if (quiesce_.load(std::memory_order_relaxed)) break;
        OnArrival();
        // Rescheduling inside the PopDue loop lets a slow iteration catch
        // up: every gap that elapsed while the loop slept fires now, so
        // the long-run offered rate tracks the configured rate exactly.
        ScheduleNextArrival();
        break;
    }
  }
}

// --------------------------------------------------------------------------
// Open-loop load generation
// --------------------------------------------------------------------------

void ThreadNode::ScheduleNextArrival() {
  // Paced from the previous deadline, not from "now": if the loop fell
  // behind, the next deadline lands in the past and fires in the same
  // FireDueTimers batch, so no arrival is silently dropped.
  next_arrival_us_ += arrivals_.NextGapUs();
  ScheduleTimer(next_arrival_us_,
                Timer{TimerKind::kArrival, kInvalidTxn, /*slot=*/0});
}

void ThreadNode::OnArrival() {
  stats_.open_loop_offered++;
  if (free_client_slots_.empty()) {
    // Admission control: shed the arrival (counted, never queued) so an
    // overloaded node's backlog stays bounded.
    stats_.open_loop_rejected++;
    return;
  }
  const uint32_t slot = free_client_slots_.back();
  free_client_slots_.pop_back();
  StartNewClientTxn(slot);
}

// --------------------------------------------------------------------------
// Attempt pool
// --------------------------------------------------------------------------

void ThreadNode::AttemptState::Reset() {
  slot = 0;
  local_ops.clear();
  for (size_t i = 0; i < num_remotes; ++i) {
    remotes[i].node = kInvalidNode;
    remotes[i].ops.clear();
    remotes[i].ok = false;
  }
  num_remotes = 0;
  next_remote = 0;
  local_undo.clear();
  pending_remote = kInvalidNode;
  participants.clear();
  has_writes = false;
  protocol_started = false;
  aborting = false;
}

ThreadNode::RemoteFragment* ThreadNode::AttemptState::FindRemote(NodeId node) {
  for (size_t i = 0; i < num_remotes; ++i) {
    if (remotes[i].node == node) return &remotes[i];
  }
  return nullptr;
}

ThreadNode::AttemptState& ThreadNode::NewAttempt(TxnId txn) {
  uint32_t idx;
  if (free_attempt_slots_.empty()) {
    idx = static_cast<uint32_t>(attempt_pool_.size());
    attempt_pool_.emplace_back();
  } else {
    idx = free_attempt_slots_.back();
    free_attempt_slots_.pop_back();
  }
  attempts_.Emplace(txn, uint32_t(idx));
  return attempt_pool_[idx];
}

ThreadNode::AttemptState* ThreadNode::FindAttempt(TxnId txn) {
  uint32_t* idx = attempts_.Find(txn);
  return idx == nullptr ? nullptr : &attempt_pool_[*idx];
}

void ThreadNode::EraseAttempt(TxnId txn) {
  uint32_t* idx = attempts_.Find(txn);
  if (idx == nullptr) return;
  attempt_pool_[*idx].Reset();
  free_attempt_slots_.push_back(*idx);
  attempts_.Erase(txn);
}

// --------------------------------------------------------------------------
// CommitEnv
// --------------------------------------------------------------------------

void ThreadNode::Send(Message msg) {
  msg.src = id_;
  if (trace_.enabled()) {
    msg.trace_seq = trace_.NextSeq();
    trace_.Record(TraceEventType::kMsgSend, NowUs(), msg.txn, msg.trace_seq,
                  msg.dst, static_cast<uint8_t>(msg.type));
  }
  if (config_.coalesce_transport) {
    if (msg.dst >= send_buffers_.size()) return;  // network drops these too
    std::vector<Message>& buf = send_buffers_[msg.dst];
    if (buf.empty()) dirty_dsts_.push_back(msg.dst);
    buf.push_back(std::move(msg));
    return;
  }
  network_->Send(std::move(msg));
}

void ThreadNode::Log(TxnId txn, LogRecordType type) {
  if (trace_.enabled()) {
    trace_.Record(TraceEventType::kWalWrite, NowUs(), txn, 0, kInvalidNode,
                  static_cast<uint8_t>(type));
  }
  LogRecord record;
  record.txn = txn;
  record.type = type;
  if (type == LogRecordType::kBeginCommit || type == LogRecordType::kReady) {
    if (AttemptState* attempt = FindAttempt(txn); attempt != nullptr) {
      record.participants = attempt->participants;
    } else if (FragmentState* frag = fragments_.Find(txn); frag != nullptr) {
      record.participants = frag->participants;
    }
  }
  wal_->Append(std::move(record));
}

void ThreadNode::ArmTimer(TxnId txn, Micros delay_us) {
  CancelTimer(txn);
  const Micros now = NowUs();
  if (trace_.enabled()) {
    trace_.Record(TraceEventType::kTimerArm, now, txn, delay_us);
  }
  ScheduleTimer(now + delay_us, Timer{TimerKind::kProtocol, txn, /*slot=*/0});
}

void ThreadNode::CancelTimer(TxnId txn) {
  TimerHeap::Id* id = protocol_timers_.Find(txn);
  if (id == nullptr) return;
  if (trace_.enabled()) {
    trace_.Record(TraceEventType::kTimerCancel, NowUs(), txn);
  }
  timers_.Cancel(*id);
  protocol_timers_.Erase(txn);
}

Decision ThreadNode::VoteFor(TxnId txn) {
  return fragments_.Contains(txn) ? Decision::kCommit : Decision::kAbort;
}

void ThreadNode::ApplyDecision(TxnId txn, Decision decision) {
  // A node whose network was cut mid-event is already (conceptually)
  // crashed; its local commit/abort never happened.
  if (network_->IsCrashed(id_)) return;
  if (monitor_ != nullptr) monitor_->RecordApplied(txn, id_, decision);

  AttemptState* attempt = FindAttempt(txn);
  if (attempt != nullptr) {
    if (decision == Decision::kAbort) {
      UndoWrites(attempt->local_undo);
      attempt->local_undo.clear();
      stats_.txns_aborted++;
      RetryOrGiveUp(attempt->slot);
    } else {
      FinishCommitted(txn);
    }
    return;
  }
  FragmentState* frag = fragments_.Find(txn);
  if (frag != nullptr && decision == Decision::kAbort) {
    UndoWrites(frag->undo);
    frag->undo.clear();
  }
}

void ThreadNode::OnBlocked(TxnId txn) {
  (void)txn;
  stats_.txns_blocked++;
  if (monitor_ != nullptr) monitor_->RecordBlocked(txn, id_);
}

void ThreadNode::OnCleanup(TxnId txn) {
  locks_.ReleaseAll(txn);
  EraseAttempt(txn);
  fragments_.Erase(txn);
}

void ThreadNode::OnPhaseSample(TxnId txn, CommitPhase phase,
                               Micros elapsed_us) {
  (void)txn;
  switch (phase) {
    case CommitPhase::kVoteCollection:
      stats_.phase_vote.Record(elapsed_us);
      break;
    case CommitPhase::kDecisionTransmit:
      stats_.phase_transmit.Record(elapsed_us);
      break;
    case CommitPhase::kDecisionApply:
      stats_.phase_apply.Record(elapsed_us);
      break;
  }
}

// --------------------------------------------------------------------------
// Coordinator paths
// --------------------------------------------------------------------------

void ThreadNode::StartNewClientTxn(uint32_t slot) {
  ClientSlot& client = clients_[slot];
  client.request = workload_->NextTxn(id_, rng_);
  client.first_start_us = NowUs();
  client.attempts = 0;
  client.idle = false;
  StartAttempt(slot);
}

void ThreadNode::StartAttempt(uint32_t slot) {
  ClientSlot& client = clients_[slot];
  client.attempts++;
  const TxnId txn = txn_ids_.Next();

  AttemptState& attempt = NewAttempt(txn);
  attempt.slot = slot;
  attempt.has_writes = client.request.HasWrites();
  for (const Operation& op : client.request.ops) {
    const PartitionId part = partitioner_.PartitionOf(op.key);
    if (part == id_) {
      attempt.local_ops.push_back(op);
      continue;
    }
    RemoteFragment* frag = attempt.FindRemote(part);
    if (frag == nullptr) {
      if (attempt.num_remotes == attempt.remotes.size()) {
        attempt.remotes.emplace_back();
      }
      frag = &attempt.remotes[attempt.num_remotes++];
      frag->node = part;
    }
    frag->ops.push_back(op);
  }
  std::sort(attempt.remotes.begin(),
            attempt.remotes.begin() + attempt.num_remotes,
            [](const RemoteFragment& a, const RemoteFragment& b) {
              return a.node < b.node;
            });
  {
    std::vector<NodeId>& parts = attempt.participants.Mutable();
    parts.push_back(id_);
    for (size_t i = 0; i < attempt.num_remotes; ++i) {
      parts.push_back(attempt.remotes[i].node);
    }
  }

  const uint64_t ts = next_priority_ts_++;
  if (!ExecuteOps(txn, ts, attempt.local_ops, &attempt.local_undo)) {
    AbortAttempt(txn, /*send_rollbacks=*/false);
    return;
  }
  if (attempt.num_remotes == 0) {
    CompleteWithoutProtocol(txn);
    return;
  }
  ScheduleTimer(NowUs() + config_.commit.timeout_us * 4,
                Timer{TimerKind::kExec, txn, slot});
  SendNextFragment(txn);
}

void ThreadNode::SendNextFragment(TxnId txn) {
  AttemptState* attempt = FindAttempt(txn);
  if (attempt == nullptr) return;
  RemoteFragment& frag = attempt->remotes[attempt->next_remote++];
  attempt->pending_remote = frag.node;
  Message msg;
  msg.type = MsgType::kRemoteExec;
  msg.txn = txn;
  msg.dst = frag.node;
  msg.ops = frag.ops;
  msg.participants = attempt->participants;
  msg.txn_has_writes = attempt->has_writes;
  msg.priority_ts = next_priority_ts_;
  Send(std::move(msg));
}

void ThreadNode::HandleRemoteExec(const Message& msg) {
  // A rollback can outrun the exec request it cancels; the stash turns
  // the late exec into a no-op.
  auto pending = std::find(pending_rollbacks_.begin(),
                           pending_rollbacks_.end(), msg.txn);
  if (pending != pending_rollbacks_.end()) {
    *pending = pending_rollbacks_.back();
    pending_rollbacks_.pop_back();
    return;
  }
  std::vector<UndoRecord> undo;
  Message reply;
  reply.txn = msg.txn;
  reply.dst = msg.src;
  if (ExecuteOps(msg.txn, msg.priority_ts, msg.ops, &undo)) {
    FragmentState frag;
    frag.txn = msg.txn;
    frag.coordinator = msg.src;
    frag.participants = msg.participants;
    frag.ops = msg.ops;
    frag.undo = std::move(undo);
    fragments_[msg.txn] = std::move(frag);
    if (msg.txn_has_writes) {
      engine_->ExpectPrepare(msg.txn, msg.src, msg.participants);
    }
    reply.type = MsgType::kRemoteExecOk;
  } else {
    reply.type = MsgType::kRemoteExecFail;
  }
  Send(std::move(reply));
}

void ThreadNode::HandleRemoteExecReply(const Message& msg, bool ok) {
  AttemptState* attempt = FindAttempt(msg.txn);
  if (attempt == nullptr || attempt->aborting) {
    if (ok) {
      Message rollback;
      rollback.type = MsgType::kRemoteRollback;
      rollback.txn = msg.txn;
      rollback.dst = msg.src;
      Send(std::move(rollback));
    }
    return;
  }
  if (attempt->pending_remote == msg.src) {
    attempt->pending_remote = kInvalidNode;
  }
  if (ok) {
    if (RemoteFragment* frag = attempt->FindRemote(msg.src)) frag->ok = true;
    if (attempt->next_remote < attempt->num_remotes) {
      SendNextFragment(msg.txn);
    } else {
      AllFragmentsReady(msg.txn);
    }
  } else {
    AbortAttempt(msg.txn, /*send_rollbacks=*/true);
  }
}

void ThreadNode::HandleRemoteRollback(const Message& msg) {
  FragmentState* frag = fragments_.Find(msg.txn);
  if (frag == nullptr) {
    if (std::find(pending_rollbacks_.begin(), pending_rollbacks_.end(),
                  msg.txn) == pending_rollbacks_.end()) {
      pending_rollbacks_.push_back(msg.txn);
    }
    return;
  }
  UndoWrites(frag->undo);
  locks_.ReleaseAll(msg.txn);
  fragments_.Erase(msg.txn);
  engine_->Forget(msg.txn);
}

void ThreadNode::AllFragmentsReady(TxnId txn) {
  AttemptState* attempt = FindAttempt(txn);
  if (attempt == nullptr) return;
  if (!attempt->has_writes) {
    CompleteWithoutProtocol(txn);
    return;
  }
  attempt->protocol_started = true;
  stats_.commit_protocol_runs++;
  engine_->StartCommit(txn, attempt->participants, Decision::kCommit);
}

void ThreadNode::AbortAttempt(TxnId txn, bool send_rollbacks) {
  AttemptState* attempt = FindAttempt(txn);
  if (attempt == nullptr) return;
  if (attempt->aborting || attempt->protocol_started) return;
  attempt->aborting = true;
  UndoWrites(attempt->local_undo);
  locks_.ReleaseAll(txn);
  if (send_rollbacks) {
    // Everyone who acknowledged plus the one still in flight; nodes are
    // unique and pending_remote's ok flag is still false, so no dupes.
    for (size_t i = 0; i < attempt->num_remotes; ++i) {
      const RemoteFragment& frag = attempt->remotes[i];
      if (!frag.ok && frag.node != attempt->pending_remote) continue;
      Message msg;
      msg.type = MsgType::kRemoteRollback;
      msg.txn = txn;
      msg.dst = frag.node;
      Send(std::move(msg));
    }
  }
  stats_.txns_aborted++;
  const uint32_t slot = attempt->slot;
  EraseAttempt(txn);
  RetryOrGiveUp(slot);
}

void ThreadNode::RetryOrGiveUp(uint32_t slot) {
  ClientSlot& client = clients_[slot];
  if (config_.open_loop.enabled &&
      (quiesce_.load(std::memory_order_relaxed) ||
       client.attempts >= config_.open_loop.max_attempts)) {
    // Terminal abort: the retry budget ran out (or quiesce is draining the
    // node). Bounded retries keep the conservation law exact.
    stats_.open_loop_aborted++;
    client.idle = true;
    free_client_slots_.push_back(slot);
    return;
  }
  if (quiesce_.load(std::memory_order_relaxed)) {
    client.idle = true;
    return;
  }
  const uint32_t shift = std::min(client.attempts, config_.backoff_max_shift);
  const Micros backoff = static_cast<Micros>(
      rng_.NextDouble() * static_cast<double>(config_.backoff_base_us) *
      static_cast<double>(1ULL << shift));
  ScheduleTimer(NowUs() + backoff, Timer{TimerKind::kRetry, kInvalidTxn, slot});
}

void ThreadNode::CompleteWithoutProtocol(TxnId txn) {
  AttemptState* attempt = FindAttempt(txn);
  if (attempt == nullptr) return;
  locks_.ReleaseAll(txn);
  for (size_t i = 0; i < attempt->num_remotes; ++i) {
    if (!attempt->remotes[i].ok) continue;
    Message msg;
    msg.type = MsgType::kRemoteRollback;  // read-lock release
    msg.txn = txn;
    msg.dst = attempt->remotes[i].node;
    Send(std::move(msg));
  }
  FinishCommitted(txn);  // may start a new attempt: `attempt` is dead here
  EraseAttempt(txn);
}

void ThreadNode::FinishCommitted(TxnId txn) {
  AttemptState* attempt = FindAttempt(txn);
  if (attempt == nullptr) return;
  const uint32_t slot = attempt->slot;
  ClientSlot& client = clients_[slot];
  stats_.txns_committed++;
  committed_.fetch_add(1, std::memory_order_relaxed);
  stats_.latency.Record(NowUs() - client.first_start_us);
  client.idle = true;
  if (config_.open_loop.enabled) {
    // Open loop: the slot returns to the admission window; the next
    // transaction arrives when the arrival process says so.
    free_client_slots_.push_back(slot);
    return;
  }
  // StartNewClientTxn allocates from the attempt pool, invalidating
  // `attempt` — which is why the slot was copied out above.
  if (!quiesce_.load(std::memory_order_relaxed)) {
    StartNewClientTxn(slot);
  }
}

// --------------------------------------------------------------------------
// Execution
// --------------------------------------------------------------------------

bool ThreadNode::ExecuteOps(TxnId txn, uint64_t ts,
                            const std::vector<Operation>& ops,
                            std::vector<UndoRecord>* undo) {
  for (const Operation& op : ops) {
    const LockMode mode =
        op.is_write() ? LockMode::kExclusive : LockMode::kShared;
    const AcquireResult result =
        locks_.Acquire(txn, ts, op.table, op.key, mode);
    // This runtime keeps the node loop non-blocking, so a WAIT_DIE wait is
    // treated as a conflict abort (the retry path re-runs the attempt).
    if (result != AcquireResult::kGranted || !ApplyOp(op, undo)) {
      UndoWrites(*undo);
      undo->clear();
      locks_.ReleaseAll(txn);
      return false;
    }
  }
  return true;
}

bool ThreadNode::ApplyOp(const Operation& op, std::vector<UndoRecord>* undo) {
  Table* table = store_.GetTable(op.table);
  if (table == nullptr) return false;
  auto row = table->GetMutable(op.key);
  if (!row.ok()) return false;
  if (op.is_write()) {
    UndoRecord rec;
    rec.table = op.table;
    rec.key = op.key;
    rec.old_columns = row.value()->columns;
    rec.old_version = row.value()->version;
    undo->push_back(std::move(rec));
    row.value()->columns[0]++;
    row.value()->version++;
  }
  return true;
}

void ThreadNode::UndoWrites(const std::vector<UndoRecord>& undo) {
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    Table* table = store_.GetTable(it->table);
    if (table == nullptr) continue;
    auto row = table->GetMutable(it->key);
    if (!row.ok()) continue;
    row.value()->columns = it->old_columns;
    row.value()->version = it->old_version;
  }
}

// --------------------------------------------------------------------------
// Fault injection
// --------------------------------------------------------------------------

void ThreadNode::Crash() {
  network_->CrashNode(id_);
  crash_requested_.store(true);
}

void ThreadNode::Recover() {
  network_->RecoverNode(id_);
  recover_requested_.store(true);
}

// --------------------------------------------------------------------------
// ThreadCluster
// --------------------------------------------------------------------------

ThreadCluster::ThreadCluster(const ThreadClusterConfig& config,
                             std::unique_ptr<Workload> workload)
    : config_(config), workload_(std::move(workload)) {
  network_ = std::make_unique<ThreadNetwork>(config_.num_nodes);
  Rng root(config_.seed);
  for (NodeId id = 0; id < config_.num_nodes; ++id) {
    nodes_.push_back(std::make_unique<ThreadNode>(
        id, config_, network_.get(), workload_.get(), &monitor_,
        root.Next()));
  }
}

ThreadCluster::~ThreadCluster() { Stop(); }

void ThreadCluster::Start() {
  ECDB_CHECK(!started_);
  started_ = true;
  for (auto& node : nodes_) node->Bootstrap();
  for (auto& node : nodes_) node->Start();
}

void ThreadCluster::RunFor(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

void ThreadCluster::Quiesce(double drain_seconds) {
  for (auto& node : nodes_) node->Quiesce();
  RunFor(drain_seconds);
}

void ThreadCluster::Stop() {
  if (!started_) return;
  for (auto& node : nodes_) node->Stop();
  network_->Shutdown();
  started_ = false;
}

uint64_t ThreadCluster::TotalCommitted() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->committed();
  return total;
}

ClusterStats ThreadCluster::CollectStats(double duration_seconds) const {
  ClusterStats out;
  out.duration_seconds = duration_seconds;
  out.num_nodes = config_.num_nodes;
  for (const auto& node : nodes_) {
    NodeStats ns = node->stats();
    // The engine counts rounds itself; a crash recreates the engine and
    // resets the counter, so this undercounts across crashes (documented
    // behaviour — the counter is a failure-handling signal, not an exact
    // ledger).
    ns.termination_rounds = node->engine().termination_rounds();
    out.total.Merge(ns);
    out.duplicate_decisions_suppressed +=
        node->engine().duplicate_decisions_suppressed();
    out.wal_group_flushes += node->wal().group_flushes();
  }
  out.net_messages_from_crashed = network_->messages_from_crashed();
  out.net_messages_to_crashed = network_->messages_to_crashed();
  const NetworkStats net = network_->stats();
  out.net_frames_sent = net.frames_sent;
  out.net_messages_coalesced = net.messages_coalesced;
  return out;
}

void ThreadCluster::EnableTracing(size_t capacity) {
  for (auto& node : nodes_) node->EnableTracing(capacity);
}

std::vector<const TraceRecorder*> ThreadCluster::recorders() const {
  std::vector<const TraceRecorder*> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) out.push_back(&node->trace());
  return out;
}

}  // namespace ecdb
