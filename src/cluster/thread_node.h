#ifndef ECDB_CLUSTER_THREAD_NODE_H_
#define ECDB_CLUSTER_THREAD_NODE_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cc/lock_table.h"
#include "cluster/config.h"
#include "commit/commit_engine.h"
#include "commit/commit_env.h"
#include "commit/invariants.h"
#include "common/rng.h"
#include "net/channel.h"
#include "stats/metrics.h"
#include "storage/table.h"
#include "txn/transaction.h"
#include "wal/wal.h"
#include "workload/workload.h"

namespace ecdb {

/// Configuration of the threaded (real OS threads, wall-clock time)
/// runtime. Protocol timeouts are inherited from CommitEngineConfig but
/// interpreted as real microseconds.
struct ThreadClusterConfig {
  uint32_t num_nodes = 4;
  uint32_t clients_per_node = 4;
  CommitProtocol protocol = CommitProtocol::kEasyCommit;
  CcPolicy cc_policy = CcPolicy::kNoWait;
  CommitEngineConfig commit{.timeout_us = 50'000,
                            .termination_window_us = 20'000,
                            .keep_decision_ledger = true};
  Micros backoff_base_us = 200;
  uint32_t backoff_max_shift = 6;
  uint64_t seed = 42;

  /// Optional directory for file-backed WALs (one per node). Empty keeps
  /// the logs in memory.
  std::string wal_dir;
};

/// One server node of the threaded runtime: a single OS thread owns all
/// node state (storage, locks, engine, clients) and drains its mailbox;
/// cross-node communication goes through ThreadNetwork channels. The same
/// CommitEngine used by the simulator runs here against wall-clock timers,
/// demonstrating that the protocol implementation is runtime-agnostic.
class ThreadNode : public CommitEnv {
 public:
  ThreadNode(NodeId id, const ThreadClusterConfig& config,
             ThreadNetwork* network, Workload* workload,
             SafetyMonitor* monitor, uint64_t seed);
  ~ThreadNode() override;

  ThreadNode(const ThreadNode&) = delete;
  ThreadNode& operator=(const ThreadNode&) = delete;

  /// Loads the partition (call before Start).
  void Bootstrap();

  /// Spawns the node thread and its clients.
  void Start();

  /// Signals the loop to finish and joins the thread.
  void Stop();

  // --- CommitEnv (called only from the node thread) ---
  NodeId self() const override { return id_; }
  void Send(Message msg) override;
  void Log(TxnId txn, LogRecordType type) override;
  void ArmTimer(TxnId txn, Micros delay_us) override;
  void CancelTimer(TxnId txn) override;
  Decision VoteFor(TxnId txn) override;
  void ApplyDecision(TxnId txn, Decision decision) override;
  void OnBlocked(TxnId txn) override;
  void OnCleanup(TxnId txn) override;

  /// Stops issuing new client transactions; in-flight ones run to
  /// completion and aborted ones are not retried. After a short drain the
  /// database is quiescent, which makes exact whole-database audits
  /// possible (see examples/bank_transfer.cc).
  void Quiesce() { quiesce_.store(true, std::memory_order_relaxed); }

  /// Crash (fail-stop): the thread keeps running but drops all input and
  /// clears volatile state. Recover() re-enables processing and runs the
  /// WAL recovery analysis.
  void Crash();
  void Recover();

  // --- Introspection (safe after Stop, or approximate while running) ---
  const NodeStats& stats() const { return stats_; }
  uint64_t committed() const {
    return committed_.load(std::memory_order_relaxed);
  }
  WriteAheadLog& wal() { return *wal_; }
  PartitionStore& store() { return store_; }
  CommitEngine& engine() { return *engine_; }

 private:
  struct ClientSlot {
    TxnRequest request;
    Micros first_start_us = 0;
    uint32_t attempts = 0;
    bool idle = true;
  };
  struct AttemptState {
    uint32_t slot = 0;
    std::vector<Operation> local_ops;
    std::unordered_map<NodeId, std::vector<Operation>> remote_ops;
    std::vector<NodeId> remote_order;
    size_t next_remote = 0;
    std::vector<UndoRecord> local_undo;
    std::unordered_set<NodeId> ok_remote;
    NodeId pending_remote = kInvalidNode;
    std::vector<NodeId> participants;
    bool has_writes = false;
    bool protocol_started = false;
    bool aborting = false;
  };
  enum class TimerKind : uint8_t { kProtocol, kExec, kRetry };
  struct Timer {
    TimerKind kind;
    TxnId txn = kInvalidTxn;
    uint32_t slot = 0;
  };

  void Loop();
  Micros NowUs() const;
  void HandleMessage(const Message& msg);
  void FireDueTimers();
  void ScheduleTimer(Micros deadline, Timer timer);

  // Coordinator paths (mirrors SimNode, synchronous execution).
  void StartNewClientTxn(uint32_t slot);
  void StartAttempt(uint32_t slot);
  void SendNextFragment(TxnId txn);
  void HandleRemoteExec(const Message& msg);
  void HandleRemoteExecReply(const Message& msg, bool ok);
  void HandleRemoteRollback(const Message& msg);
  void AllFragmentsReady(TxnId txn);
  void AbortAttempt(TxnId txn, bool send_rollbacks);
  void CompleteWithoutProtocol(TxnId txn);
  void FinishCommitted(TxnId txn);

  // Execution (synchronous; NO_WAIT aborts immediately, WAIT_DIE waits
  // are treated as aborts in this runtime to keep the loop non-blocking).
  bool ExecuteOps(TxnId txn, uint64_t ts, const std::vector<Operation>& ops,
                  std::vector<UndoRecord>* undo);
  bool ApplyOp(const Operation& op, std::vector<UndoRecord>* undo);
  void UndoWrites(const std::vector<UndoRecord>& undo);

  NodeId id_;
  const ThreadClusterConfig& config_;
  ThreadNetwork* network_;
  Workload* workload_;
  SafetyMonitor* monitor_;
  Rng rng_;

  PartitionStore store_;
  KeyPartitioner partitioner_;
  LockTable locks_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::unique_ptr<CommitEngine> engine_;

  std::vector<ClientSlot> clients_;
  std::unordered_map<TxnId, AttemptState> attempts_;
  std::unordered_map<TxnId, FragmentState> fragments_;
  std::unordered_set<TxnId> pending_rollbacks_;
  TxnIdAllocator txn_ids_;
  uint64_t next_priority_ts_ = 1;

  // Timer wheel, owned by the node thread.
  std::multimap<Micros, Timer> timers_;
  std::unordered_map<TxnId, std::multimap<Micros, Timer>::iterator>
      protocol_timers_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<bool> crash_requested_{false};
  std::atomic<bool> recover_requested_{false};
  std::atomic<bool> quiesce_{false};

  NodeStats stats_;
  std::atomic<uint64_t> committed_{0};
  std::chrono::steady_clock::time_point epoch_start_;
};

/// The threaded deployment: N ThreadNodes over a ThreadNetwork.
class ThreadCluster {
 public:
  ThreadCluster(const ThreadClusterConfig& config,
                std::unique_ptr<Workload> workload);
  ~ThreadCluster();

  /// Bootstraps and starts every node thread.
  void Start();

  /// Lets the cluster run for `seconds` of wall-clock time.
  void RunFor(double seconds);

  /// Stops all nodes and joins threads.
  void Stop();

  /// Quiesces every node and waits for in-flight transactions to drain.
  void Quiesce(double drain_seconds = 0.5);

  ThreadNode& node(NodeId id) { return *nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }
  ThreadNetwork& network() { return *network_; }
  SafetyMonitor& monitor() { return monitor_; }

  /// Total committed transactions across nodes (live, approximate).
  uint64_t TotalCommitted() const;

 private:
  ThreadClusterConfig config_;
  std::unique_ptr<ThreadNetwork> network_;
  std::unique_ptr<Workload> workload_;
  SafetyMonitor monitor_;  // guarded by monitor_mu_ inside nodes
  std::vector<std::unique_ptr<ThreadNode>> nodes_;
  bool started_ = false;
};

}  // namespace ecdb

#endif  // ECDB_CLUSTER_THREAD_NODE_H_
