#ifndef ECDB_CLUSTER_THREAD_NODE_H_
#define ECDB_CLUSTER_THREAD_NODE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cc/lock_table.h"
#include "cluster/config.h"
#include "commit/commit_engine.h"
#include "commit/commit_env.h"
#include "commit/invariants.h"
#include "common/flat_map.h"
#include "common/rng.h"
#include "net/channel.h"
#include "stats/metrics.h"
#include "storage/table.h"
#include "trace/trace_recorder.h"
#include "txn/transaction.h"
#include "wal/wal.h"
#include "workload/open_loop.h"
#include "workload/workload.h"

namespace ecdb {

/// Configuration of the threaded (real OS threads, wall-clock time)
/// runtime. Protocol timeouts are inherited from CommitEngineConfig but
/// interpreted as real microseconds.
struct ThreadClusterConfig {
  uint32_t num_nodes = 4;
  uint32_t clients_per_node = 4;
  CommitProtocol protocol = CommitProtocol::kEasyCommit;
  CcPolicy cc_policy = CcPolicy::kNoWait;
  CommitEngineConfig commit{.timeout_us = 50'000,
                            .termination_window_us = 20'000,
                            .keep_decision_ledger = true};
  Micros backoff_base_us = 200;
  uint32_t backoff_max_shift = 6;
  uint64_t seed = 42;

  /// Transport coalescing + WAL group commit: each event-loop iteration
  /// buffers outgoing messages per destination and ships each buffer as
  /// one SendBatch (one mailbox lock, at most one wake, per destination
  /// per iteration), and the iteration's WAL appends become durable with
  /// a single Flush issued before the network flush (write-ahead order).
  /// Off by default: throughput benchmarks opt in.
  bool coalesce_transport = false;

  /// Optional directory for file-backed WALs (one per node). Empty keeps
  /// the logs in memory.
  std::string wal_dir;

  /// Open-loop load generation (off: clients run the classic closed loop).
  /// Arrivals are wall-clock timer events on the node thread; the
  /// admission window replaces clients_per_node as the slot population.
  OpenLoopConfig open_loop;
};

/// One server node of the threaded runtime: a single OS thread owns all
/// node state (storage, locks, engine, clients) and drains its mailbox;
/// cross-node communication goes through ThreadNetwork channels. The same
/// CommitEngine used by the simulator runs here against wall-clock timers,
/// demonstrating that the protocol implementation is runtime-agnostic.
///
/// The event loop is batched: each iteration drains the whole mailbox with
/// one lock acquisition (MessageChannel::PopAll), fires due timers once per
/// batch, and sleeps no longer than the earliest timer deadline. Per-txn
/// bookkeeping lives in flat structures — a pooled AttemptState array and
/// open-addressing FlatMap indices — so the steady state allocates nothing.
class ThreadNode : public CommitEnv {
 public:
  ThreadNode(NodeId id, const ThreadClusterConfig& config,
             ThreadNetwork* network, Workload* workload,
             SafetyMonitor* monitor, uint64_t seed);
  ~ThreadNode() override;

  ThreadNode(const ThreadNode&) = delete;
  ThreadNode& operator=(const ThreadNode&) = delete;

  /// Loads the partition (call before Start).
  void Bootstrap();

  /// Spawns the node thread and its clients.
  void Start();

  /// Signals the loop to finish and joins the thread.
  void Stop();

  // --- CommitEnv (called only from the node thread) ---
  NodeId self() const override { return id_; }
  void Send(Message msg) override;
  void Log(TxnId txn, LogRecordType type) override;
  void ArmTimer(TxnId txn, Micros delay_us) override;
  void CancelTimer(TxnId txn) override;
  Decision VoteFor(TxnId txn) override;
  void ApplyDecision(TxnId txn, Decision decision) override;
  void OnBlocked(TxnId txn) override;
  void OnCleanup(TxnId txn) override;
  void OnPhaseSample(TxnId txn, CommitPhase phase,
                     Micros elapsed_us) override;

  /// Turns on protocol tracing. Call before Start(): the recorder is owned
  /// by the node thread once the loop runs (inert under ECDB_TRACE=OFF).
  void EnableTracing(size_t capacity = TraceRecorder::kDefaultCapacity) {
    trace_.Enable(capacity);
  }
  /// Read the recorder only after Stop() — it is thread-confined.
  const TraceRecorder& trace() const { return trace_; }

  /// Stops issuing new client transactions; in-flight ones run to
  /// completion and aborted ones are not retried. After a short drain the
  /// database is quiescent, which makes exact whole-database audits
  /// possible (see examples/bank_transfer.cc).
  void Quiesce() { quiesce_.store(true, std::memory_order_relaxed); }

  /// Crash (fail-stop): the thread keeps running but drops all input and
  /// clears volatile state. Recover() re-enables processing and runs the
  /// WAL recovery analysis.
  void Crash();
  void Recover();

  // --- Introspection (safe after Stop, or approximate while running) ---
  const NodeStats& stats() const { return stats_; }
  uint64_t committed() const {
    return committed_.load(std::memory_order_relaxed);
  }
  WriteAheadLog& wal() { return *wal_; }
  PartitionStore& store() { return store_; }
  CommitEngine& engine() { return *engine_; }

 private:
  struct ClientSlot {
    TxnRequest request;
    Micros first_start_us = 0;
    uint32_t attempts = 0;
    bool idle = true;
  };

  /// One remote partition's slice of an attempt. Entries are pooled along
  /// with their AttemptState: Reset() clears the ops but keeps the vector's
  /// capacity, so a recycled attempt re-fills them without allocating.
  struct RemoteFragment {
    NodeId node = kInvalidNode;
    std::vector<Operation> ops;
    bool ok = false;  // replied kRemoteExecOk
  };

  /// Coordinator-side state of one transaction attempt. Instances live in
  /// a pool (attempt_pool_) indexed by attempts_; they are recycled via
  /// Reset() rather than destroyed, so their vectors' capacities survive
  /// across transactions and the steady state performs no allocation.
  struct AttemptState {
    uint32_t slot = 0;
    std::vector<Operation> local_ops;
    /// Remote slices, sorted by node; only the first num_remotes entries
    /// are live (the tail keeps recycled capacity).
    std::vector<RemoteFragment> remotes;
    size_t num_remotes = 0;
    size_t next_remote = 0;
    std::vector<UndoRecord> local_undo;
    NodeId pending_remote = kInvalidNode;
    // Copy-on-write: one buffer, shared by every fragment message, the
    // engine's record, and the begin-commit/ready WAL entries.
    CowVector<NodeId> participants;
    bool has_writes = false;
    bool protocol_started = false;
    bool aborting = false;

    /// Clears live state but keeps every vector's capacity for reuse.
    void Reset();
    RemoteFragment* FindRemote(NodeId node);
  };

  enum class TimerKind : uint8_t { kProtocol, kExec, kRetry, kArrival };
  struct Timer {
    TimerKind kind;
    TxnId txn = kInvalidTxn;
    uint32_t slot = 0;
  };

  /// Wall-clock timer queue: the simulator scheduler's generation-slot
  /// 4-ary heap (src/sim/scheduler.h), specialized for POD Timer payloads.
  /// Schedule is a heap push with no node allocation, Cancel is O(1) lazy
  /// (stale entries are skipped at pop time), and PeekDeadline lets the
  /// event loop sleep exactly until the next due timer. This replaces a
  /// std::multimap wheel that paid a red-black-tree node allocation per
  /// timer plus an iterator side-table for cancellation.
  class TimerHeap {
   public:
    using Id = uint64_t;  // (slot << 32) | generation; 0 = unset

    Id Schedule(Micros when, Timer timer) {
      uint32_t slot;
      if (free_.empty()) {
        slot = static_cast<uint32_t>(slots_.size());
        slots_.emplace_back();
      } else {
        slot = free_.back();
        free_.pop_back();
      }
      Slot& s = slots_[slot];
      s.timer = timer;
      const Id id = (static_cast<Id>(slot) << 32) | s.gen;
      heap_.push_back(Entry{when, next_seq_++, id});
      SiftUp(heap_.size() - 1);
      ++live_;
      return id;
    }

    /// Returns false if the timer already fired or was cancelled.
    bool Cancel(Id id) {
      const uint32_t slot = static_cast<uint32_t>(id >> 32);
      if (slot >= slots_.size() || slots_[slot].gen != static_cast<uint32_t>(id)) {
        return false;
      }
      Retire(slot);
      --live_;
      return true;
    }

    /// Earliest live deadline, if any timer is pending.
    bool PeekDeadline(Micros* when) {
      const Entry* head = PeekLive();
      if (head == nullptr) return false;
      *when = head->when;
      return true;
    }

    /// Pops the earliest live timer if its deadline is <= now.
    bool PopDue(Micros now, Timer* out) {
      const Entry* head = PeekLive();
      if (head == nullptr || head->when > now) return false;
      const uint32_t slot = static_cast<uint32_t>(head->id >> 32);
      *out = slots_[slot].timer;
      Retire(slot);
      --live_;
      PopHeap();
      return true;
    }

    /// Drops everything, including slot generations — only valid when all
    /// outstanding Ids are discarded too (crash wipes protocol_timers_).
    void Clear() {
      heap_.clear();
      slots_.clear();
      free_.clear();
      live_ = 0;
    }

    size_t pending() const { return live_; }

   private:
    struct Entry {
      Micros when;
      uint64_t seq;
      Id id;
    };
    struct Slot {
      uint32_t gen = 1;  // never 0: Id 0 stays an "unset" sentinel
      Timer timer{TimerKind::kProtocol, kInvalidTxn, 0};
    };

    static bool Earlier(const Entry& a, const Entry& b) {
      if (a.when != b.when) return a.when < b.when;
      return a.seq < b.seq;  // FIFO among same-deadline timers
    }

    const Entry* PeekLive() {
      while (!heap_.empty()) {
        const Entry& head = heap_[0];
        const uint32_t slot = static_cast<uint32_t>(head.id >> 32);
        if (slots_[slot].gen == static_cast<uint32_t>(head.id)) return &head;
        PopHeap();  // stale: cancelled (or slot since recycled)
      }
      return nullptr;
    }

    void PopHeap() {
      const size_t last = heap_.size() - 1;
      if (last > 0) {
        heap_[0] = heap_[last];
        heap_.pop_back();
        SiftDown(0);
      } else {
        heap_.pop_back();
      }
    }

    void Retire(uint32_t slot) {
      Slot& s = slots_[slot];
      if (++s.gen == 0) s.gen = 1;
      free_.push_back(slot);
    }

    void SiftUp(size_t i) {
      const Entry e = heap_[i];
      while (i > 0) {
        const size_t parent = (i - 1) >> 2;
        if (!Earlier(e, heap_[parent])) break;
        heap_[i] = heap_[parent];
        i = parent;
      }
      heap_[i] = e;
    }

    void SiftDown(size_t i) {
      const size_t n = heap_.size();
      const Entry e = heap_[i];
      for (;;) {
        const size_t first = 4 * i + 1;
        if (first >= n) break;
        size_t best = first;
        const size_t limit = first + 4 < n ? first + 4 : n;
        for (size_t c = first + 1; c < limit; ++c) {
          if (Earlier(heap_[c], heap_[best])) best = c;
        }
        if (!Earlier(heap_[best], e)) break;
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = e;
    }

    uint64_t next_seq_ = 0;
    size_t live_ = 0;
    std::vector<Entry> heap_;
    std::vector<Slot> slots_;
    std::vector<uint32_t> free_;
  };

  void Loop();
  Micros NowUs() const override;
  void HandleMessage(const Message& msg);
  void FireDueTimers();
  void ScheduleTimer(Micros deadline, Timer timer);

  /// Coalescing flush point (end of every loop iteration): first makes
  /// this iteration's WAL appends durable as one group, then ships each
  /// dirty per-destination send buffer as one frame.
  void FlushOutput();

  // Attempt pool. Pointers/references into the pool are invalidated by
  // NewAttempt (growth) — never hold one across a call that may start a
  // new attempt (StartNewClientTxn / StartAttempt).
  AttemptState& NewAttempt(TxnId txn);
  AttemptState* FindAttempt(TxnId txn);
  void EraseAttempt(TxnId txn);

  // Open-loop load generation (config_.open_loop.enabled): arrivals are a
  // self-rescheduling kArrival timer chain on the node thread.
  void ScheduleNextArrival();
  void OnArrival();

  /// Shared tail of the two abort paths: schedules a backoff retry, or —
  /// open loop only — terminally aborts once the attempt budget is spent
  /// (or quiesce is draining) and returns the slot to the admission window.
  void RetryOrGiveUp(uint32_t slot);

  // Coordinator paths (mirrors SimNode, synchronous execution).
  void StartNewClientTxn(uint32_t slot);
  void StartAttempt(uint32_t slot);
  void SendNextFragment(TxnId txn);
  void HandleRemoteExec(const Message& msg);
  void HandleRemoteExecReply(const Message& msg, bool ok);
  void HandleRemoteRollback(const Message& msg);
  void AllFragmentsReady(TxnId txn);
  void AbortAttempt(TxnId txn, bool send_rollbacks);
  void CompleteWithoutProtocol(TxnId txn);
  void FinishCommitted(TxnId txn);

  // Execution (synchronous; NO_WAIT aborts immediately, WAIT_DIE waits
  // are treated as aborts in this runtime to keep the loop non-blocking).
  bool ExecuteOps(TxnId txn, uint64_t ts, const std::vector<Operation>& ops,
                  std::vector<UndoRecord>* undo);
  bool ApplyOp(const Operation& op, std::vector<UndoRecord>* undo);
  void UndoWrites(const std::vector<UndoRecord>& undo);

  NodeId id_;
  const ThreadClusterConfig& config_;
  ThreadNetwork* network_;
  Workload* workload_;
  SafetyMonitor* monitor_;
  Rng rng_;

  PartitionStore store_;
  KeyPartitioner partitioner_;
  LockTable locks_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::unique_ptr<CommitEngine> engine_;

  std::vector<ClientSlot> clients_;
  // Open loop only: idle slot indices (clients_ sized to the admission cap),
  // the per-node arrival-gap generator, and the running arrival deadline
  // (paced gap-by-gap so slow loop iterations don't drop arrivals). All
  // owned by the node thread.
  std::vector<uint32_t> free_client_slots_;
  ArrivalSchedule arrivals_;
  Micros next_arrival_us_ = 0;

  // Per-txn state: flat indices into a recycled pool (attempts) and flat
  // value storage (fragments). pending_rollbacks_ is a plain vector — it
  // holds the rare rollback-before-exec races and stays tiny.
  FlatMap<TxnId, uint32_t> attempts_;
  std::vector<AttemptState> attempt_pool_;
  std::vector<uint32_t> free_attempt_slots_;
  FlatMap<TxnId, FragmentState> fragments_;
  std::vector<TxnId> pending_rollbacks_;
  TxnIdAllocator txn_ids_;
  uint64_t next_priority_ts_ = 1;

  // Timer queue, owned by the node thread.
  TimerHeap timers_;
  FlatMap<TxnId, TimerHeap::Id> protocol_timers_;

  // Coalescing state (coalesce_transport only; owned by the node thread).
  // One open send buffer per destination plus the list of destinations
  // touched this iteration; buffers are drained by SendBatch keeping
  // their capacity, so steady state allocates nothing.
  std::vector<std::vector<Message>> send_buffers_;
  std::vector<NodeId> dirty_dsts_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<bool> crash_requested_{false};
  std::atomic<bool> recover_requested_{false};
  std::atomic<bool> quiesce_{false};

  NodeStats stats_;
  std::atomic<uint64_t> committed_{0};
  std::chrono::steady_clock::time_point epoch_start_;
  TraceRecorder trace_;
};

/// The threaded deployment: N ThreadNodes over a ThreadNetwork.
class ThreadCluster {
 public:
  ThreadCluster(const ThreadClusterConfig& config,
                std::unique_ptr<Workload> workload);
  ~ThreadCluster();

  /// Bootstraps and starts every node thread.
  void Start();

  /// Lets the cluster run for `seconds` of wall-clock time.
  void RunFor(double seconds);

  /// Stops all nodes and joins threads.
  void Stop();

  /// Quiesces every node and waits for in-flight transactions to drain.
  void Quiesce(double drain_seconds = 0.5);

  ThreadNode& node(NodeId id) { return *nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }
  ThreadNetwork& network() { return *network_; }
  SafetyMonitor& monitor() { return monitor_; }

  /// Total committed transactions across nodes (live, approximate).
  uint64_t TotalCommitted() const;

  /// Merges per-node stats into a ClusterStats for a window of
  /// `duration_seconds`. Per-node counters are thread-confined, so call
  /// only after Stop().
  ClusterStats CollectStats(double duration_seconds) const;

  /// Turns on protocol tracing on every node. Call before Start().
  void EnableTracing(size_t capacity = TraceRecorder::kDefaultCapacity);

  /// Per-node recorders, for CollectEvents + the exporters. Read only
  /// after Stop().
  std::vector<const TraceRecorder*> recorders() const;

 private:
  ThreadClusterConfig config_;
  std::unique_ptr<ThreadNetwork> network_;
  std::unique_ptr<Workload> workload_;
  SafetyMonitor monitor_;  // guarded by monitor_mu_ inside nodes
  std::vector<std::unique_ptr<ThreadNode>> nodes_;
  bool started_ = false;
};

}  // namespace ecdb

#endif  // ECDB_CLUSTER_THREAD_NODE_H_
