#include "cluster/sim_cluster.h"

#include <utility>

#include "common/logging.h"

namespace ecdb {

SimCluster::SimCluster(const ClusterConfig& config,
                       std::unique_ptr<Workload> workload)
    : config_(config), workload_(std::move(workload)) {
  scheduler_.SetBackend(config_.scheduler_backend);
  Rng root(config_.seed);
  network_ = std::make_unique<SimNetwork>(&scheduler_, config_.network,
                                          root.Next());
  if (config_.coalesce_transport) network_->EnableCoalescing(true);
  nodes_.reserve(config_.num_nodes);
  for (NodeId id = 0; id < config_.num_nodes; ++id) {
    nodes_.push_back(std::make_unique<SimNode>(id, config_, &scheduler_,
                                               network_.get(),
                                               workload_.get(), &monitor_,
                                               root.Next()));
  }
}

void SimCluster::Start() {
  for (auto& node : nodes_) node->Bootstrap();
  for (auto& node : nodes_) node->StartClients();
}

void SimCluster::RunFor(double seconds) {
  const Micros until =
      scheduler_.Now() + static_cast<Micros>(seconds * 1e6);
  scheduler_.RunUntil(until);
}

size_t SimCluster::RunToQuiescence(size_t max_events) {
  return scheduler_.RunAll(max_events);
}

void SimCluster::BeginMeasurement() {
  measurement_start_us_ = scheduler_.Now();
  for (auto& node : nodes_) node->BeginMeasurement();
}

ClusterStats SimCluster::CollectStats(double duration_seconds) const {
  ClusterStats out;
  out.duration_seconds = duration_seconds;
  out.num_nodes = config_.num_nodes;
  const uint64_t window_us = static_cast<uint64_t>(duration_seconds * 1e6);
  for (const auto& node : nodes_) {
    // The engine tracks termination rounds itself; fold the window's delta
    // into the per-node stats before merging.
    NodeStats ns = node->stats();
    ns.termination_rounds = node->TerminationRoundsThisWindow();
    out.total.Merge(ns);
    // Idle = worker capacity not attributed to any category this window.
    const uint64_t busy =
        node->total_busy_us() - node->busy_us_at_window_start();
    const uint64_t capacity =
        static_cast<uint64_t>(config_.workers_per_node) * window_us;
    out.total.AddTime(TimeCategory::kIdle,
                      capacity > busy ? capacity - busy : 0);
    out.duplicate_decisions_suppressed +=
        node->engine().duplicate_decisions_suppressed();
    out.wal_group_flushes += node->wal().group_flushes();
  }
  out.net_messages_from_crashed = network_->stats().messages_from_crashed;
  out.net_messages_to_crashed = network_->stats().messages_to_crashed;
  out.net_frames_sent = network_->stats().frames_sent;
  out.net_messages_coalesced = network_->stats().messages_coalesced;
  return out;
}

void SimCluster::CrashNode(NodeId id) { nodes_[id]->Crash(); }

void SimCluster::RecoverNode(NodeId id) { nodes_[id]->Recover(); }

void SimCluster::EnableTracing(size_t capacity) {
  for (auto& node : nodes_) node->EnableTracing(capacity);
}

std::vector<const TraceRecorder*> SimCluster::recorders() const {
  std::vector<const TraceRecorder*> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) out.push_back(&node->trace());
  return out;
}

}  // namespace ecdb
