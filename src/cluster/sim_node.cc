#include "cluster/sim_node.h"

#include <algorithm>
#include <utility>

#include "commit/recovery.h"
#include "common/logging.h"

namespace ecdb {

SimNode::SimNode(NodeId id, const ClusterConfig& config, Scheduler* scheduler,
                 SimNetwork* network, Workload* workload,
                 SafetyMonitor* monitor, uint64_t seed)
    : id_(id),
      config_(config),
      scheduler_(scheduler),
      network_(network),
      workload_(workload),
      monitor_(monitor),
      rng_(seed),
      store_(id),
      partitioner_(config.num_nodes),
      locks_(config.cc_policy),
      // The arrival stream's seed is derived from (not equal to) the node
      // seed so it does not correlate with the workload rng_.
      arrivals_(config.open_loop, seed ^ 0x9e3779b97f4a7c15ULL),
      txn_ids_(id) {
  trace_.set_node(id_);
  engine_ = std::make_unique<CommitEngine>(config_.protocol, this,
                                           config_.commit);
  engine_->set_trace(&trace_);
  // Under the open loop the slots are the admission-control window, not a
  // fixed population of closed-loop clients.
  clients_.resize(config_.open_loop.enabled
                      ? config_.open_loop.max_in_flight_per_node
                      : config_.clients_per_node);
}

SimNode::~SimNode() = default;

void SimNode::Bootstrap() {
  workload_->LoadPartition(&store_, partitioner_);
  network_->RegisterNode(id_, [this](const Message& msg) {
    if (!crashed_) OnNetMessage(msg);
  });
}

void SimNode::StartClients() {
  if (config_.open_loop.enabled) {
    free_client_slots_.reserve(clients_.size());
    for (uint32_t slot = 0; slot < clients_.size(); ++slot) {
      free_client_slots_.push_back(slot);
    }
    ScheduleNextArrival();
    return;
  }
  for (uint32_t slot = 0; slot < clients_.size(); ++slot) {
    StartNewClientTxn(slot);
  }
}

// --------------------------------------------------------------------------
// Open-loop load generation
// --------------------------------------------------------------------------

void SimNode::ScheduleNextArrival() {
  const uint64_t epoch = epoch_;
  scheduler_->ScheduleAfter(arrivals_.NextGapUs(), [this, epoch]() {
    // Quiesce ends the arrival stream (the event chain simply stops), so
    // in-flight work drains and the scheduler reaches quiescence.
    if (crashed_ || epoch != epoch_ || quiesced_) return;
    OnArrival();
    ScheduleNextArrival();
  });
}

void SimNode::OnArrival() {
  stats_.open_loop_offered++;
  if (free_client_slots_.empty()) {
    // Admission control: shed the arrival (counted, never queued) so an
    // overloaded node's backlog stays bounded.
    stats_.open_loop_rejected++;
    return;
  }
  const uint32_t slot = free_client_slots_.back();
  free_client_slots_.pop_back();
  StartNewClientTxn(slot);
}

// --------------------------------------------------------------------------
// Worker pool model
// --------------------------------------------------------------------------

void SimNode::EnqueueJob(CostVector cost, Job fn) {
  if (crashed_) return;
  if (busy_workers_ < config_.workers_per_node) {
    StartJob(cost, std::move(fn));
  } else {
    job_queue_.emplace_back(cost, std::move(fn));
  }
}

void SimNode::StartJob(CostVector cost, Job fn) {
  busy_workers_++;
  Micros total = 0;
  for (Micros c : cost) total += c;
  uint32_t idx;
  if (free_job_slots_.empty()) {
    idx = static_cast<uint32_t>(running_jobs_.size());
    running_jobs_.emplace_back();
  } else {
    idx = free_job_slots_.back();
    free_job_slots_.pop_back();
  }
  RunningJob& job = running_jobs_[idx];
  job.cost = cost;
  job.fn = std::move(fn);
  job.epoch = epoch_;
  scheduler_->ScheduleAfter(total, [this, idx]() { FinishJobSlot(idx); });
}

void SimNode::FinishJobSlot(uint32_t idx) {
  // Move the job out before running it: the callable may start new jobs,
  // growing (and reallocating) the pool under us.
  RunningJob job = std::move(running_jobs_[idx]);
  free_job_slots_.push_back(idx);
  if (crashed_ || job.epoch != epoch_) return;
  FinishJob(job.cost, job.fn);
}

void SimNode::FinishJob(const CostVector& cost, Job& fn) {
  Micros total = 0;
  for (size_t i = 0; i < kNumTimeCategories; ++i) {
    stats_.time_us[i] += cost[i];
    total += cost[i];
  }
  total_busy_us_ += total;
  fn();
  busy_workers_--;
  if (!job_queue_.empty() && busy_workers_ < config_.workers_per_node) {
    auto [next_cost, next_fn] = std::move(job_queue_.front());
    job_queue_.pop_front();
    StartJob(next_cost, std::move(next_fn));
  }
}

SimNode::CostVector SimNode::ExecCost(size_t num_ops) const {
  CostVector v{};
  v[static_cast<size_t>(TimeCategory::kUsefulWork)] =
      config_.costs.useful_work_per_op_us * num_ops;
  v[static_cast<size_t>(TimeCategory::kIndex)] =
      config_.costs.index_per_op_us * num_ops;
  return v;
}

// --------------------------------------------------------------------------
// CommitEnv
// --------------------------------------------------------------------------

void SimNode::Send(Message msg) {
  msg.src = id_;
  if (trace_.enabled()) {
    msg.trace_seq = trace_.NextSeq();
    trace_.Record(TraceEventType::kMsgSend, scheduler_->Now(), msg.txn,
                  msg.trace_seq, msg.dst, static_cast<uint8_t>(msg.type));
  }
  network_->Send(std::move(msg));
}

void SimNode::Log(TxnId txn, LogRecordType type) {
  if (trace_.enabled()) {
    trace_.Record(TraceEventType::kWalWrite, scheduler_->Now(), txn, 0,
                  kInvalidNode, static_cast<uint8_t>(type));
  }
  LogRecord record;
  record.txn = txn;
  record.type = type;
  if (type == LogRecordType::kBeginCommit || type == LogRecordType::kReady) {
    if (auto it = attempts_.find(txn); it != attempts_.end()) {
      record.participants = it->second.participants;
    } else if (auto fit = fragments_.find(txn); fit != fragments_.end()) {
      record.participants = fit->second.participants;
    }
  }
  wal_.Append(std::move(record));
}

void SimNode::ArmTimer(TxnId txn, Micros delay_us) {
  CancelTimer(txn);
  if (trace_.enabled()) {
    trace_.Record(TraceEventType::kTimerArm, scheduler_->Now(), txn,
                  delay_us);
  }
  const uint64_t epoch = epoch_;
  timers_[txn] = scheduler_->ScheduleAfter(delay_us, [this, txn, epoch]() {
    if (crashed_ || epoch != epoch_) return;
    timers_.erase(txn);
    if (trace_.enabled()) {
      trace_.Record(TraceEventType::kTimerFire, scheduler_->Now(), txn);
    }
    engine_->OnTimeout(txn);
  });
}

void SimNode::CancelTimer(TxnId txn) {
  auto it = timers_.find(txn);
  if (it == timers_.end()) return;
  if (trace_.enabled()) {
    trace_.Record(TraceEventType::kTimerCancel, scheduler_->Now(), txn);
  }
  scheduler_->Cancel(it->second);
  timers_.erase(it);
}

Decision SimNode::VoteFor(TxnId txn) {
  if (vote_override_) return vote_override_(txn);
  return fragments_.count(txn) > 0 ? Decision::kCommit : Decision::kAbort;
}

void SimNode::ApplyDecision(TxnId txn, Decision decision) {
  if (monitor_ != nullptr) monitor_->RecordApplied(txn, id_, decision);

  auto ait = attempts_.find(txn);
  if (ait != attempts_.end()) {
    // Coordinator side: this node's fragment plus client accounting.
    AttemptState& attempt = ait->second;
    if (decision == Decision::kAbort) {
      UndoWrites(attempt.local_undo);
      attempt.local_undo.clear();
      stats_.txns_aborted++;
      ScheduleRetry(attempt.slot);
    } else {
      FinishCommitted(txn);
    }
    if (config_.release_locks_at_decision) locks_.ReleaseAll(txn);
    return;
  }

  auto fit = fragments_.find(txn);
  if (fit != fragments_.end() && decision == Decision::kAbort) {
    UndoWrites(fit->second.undo);
    fit->second.undo.clear();
  }
  // Locks are normally released at cleanup time (Section 5.3:
  // transactional resources are freed only once no further messages can
  // arrive); the A3 ablation releases them here instead.
  if (config_.release_locks_at_decision) locks_.ReleaseAll(txn);
}

void SimNode::OnBlocked(TxnId txn) {
  (void)txn;
  stats_.txns_blocked++;
  if (monitor_ != nullptr) monitor_->RecordBlocked(txn, id_);
}

void SimNode::OnPhaseSample(TxnId txn, CommitPhase phase, Micros elapsed_us) {
  (void)txn;
  switch (phase) {
    case CommitPhase::kVoteCollection:
      stats_.phase_vote.Record(elapsed_us);
      break;
    case CommitPhase::kDecisionTransmit:
      stats_.phase_transmit.Record(elapsed_us);
      break;
    case CommitPhase::kDecisionApply:
      stats_.phase_apply.Record(elapsed_us);
      break;
  }
}

void SimNode::OnCleanup(TxnId txn) {
  EnqueueJob(Cost(TimeCategory::kOverhead, config_.costs.overhead_us),
             [this, txn]() {
               locks_.ReleaseAll(txn);
               attempts_.erase(txn);
               fragments_.erase(txn);
             });
}

// --------------------------------------------------------------------------
// Message handling
// --------------------------------------------------------------------------

void SimNode::OnNetMessage(const Message& msg) {
  if (trace_.enabled()) {
    trace_.Record(TraceEventType::kMsgRecv, scheduler_->Now(), msg.txn,
                  msg.trace_seq, msg.src, static_cast<uint8_t>(msg.type));
  }
  switch (msg.type) {
    case MsgType::kRemoteExec: {
      CostVector cost = ExecCost(msg.ops.size());
      cost[static_cast<size_t>(TimeCategory::kTxnManager)] +=
          config_.costs.txn_manager_us;
      EnqueueJob(cost, [this, msg]() { HandleRemoteExec(msg); });
      return;
    }
    case MsgType::kRemoteExecOk:
    case MsgType::kRemoteExecFail: {
      const bool ok = msg.type == MsgType::kRemoteExecOk;
      EnqueueJob(Cost(TimeCategory::kTxnManager, config_.costs.remote_reply_us),
                 [this, msg, ok]() { HandleRemoteExecReply(msg, ok); });
      return;
    }
    case MsgType::kRemoteRollback:
      EnqueueJob(Cost(TimeCategory::kAbort, config_.costs.abort_cleanup_us),
                 [this, msg]() { HandleRemoteRollback(msg); });
      return;
    default:
      // Commit-protocol and termination messages.
      EnqueueJob(Cost(TimeCategory::kCommit, config_.costs.commit_msg_us),
                 [this, msg]() { engine_->OnMessage(msg); });
      return;
  }
}

void SimNode::HandleRemoteExec(const Message& msg) {
  if (pending_rollbacks_.erase(msg.txn) > 0) {
    return;  // the coordinator already aborted this attempt
  }
  auto ctx = std::make_shared<ExecContext>();
  ctx->txn = msg.txn;
  ctx->priority_ts = msg.priority_ts;
  ctx->ops = msg.ops;
  ctx->epoch = epoch_;
  ctx->done = [this, msg](bool ok, std::vector<UndoRecord> undo) {
    Message reply;
    reply.txn = msg.txn;
    reply.dst = msg.src;
    if (ok) {
      FragmentState frag;
      frag.txn = msg.txn;
      frag.coordinator = msg.src;
      frag.participants = msg.participants;
      frag.ops = msg.ops;
      frag.undo = std::move(undo);
      fragments_[msg.txn] = std::move(frag);
      if (msg.txn_has_writes) {
        engine_->ExpectPrepare(msg.txn, msg.src, msg.participants);
      }
      reply.type = MsgType::kRemoteExecOk;
    } else {
      reply.type = MsgType::kRemoteExecFail;
    }
    Send(std::move(reply));
  };
  ExecLoop(std::move(ctx));
}

void SimNode::HandleRemoteExecReply(const Message& msg, bool ok) {
  auto it = attempts_.find(msg.txn);
  if (it == attempts_.end() || it->second.aborting) {
    // The attempt was aborted while this reply was in flight; the remote
    // fragment (if it succeeded) must be rolled back.
    if (ok) {
      Message rollback;
      rollback.type = MsgType::kRemoteRollback;
      rollback.txn = msg.txn;
      rollback.dst = msg.src;
      Send(std::move(rollback));
    }
    return;
  }
  AttemptState& attempt = it->second;
  attempt.pending_remote.erase(msg.src);
  if (ok) {
    attempt.ok_remote.insert(msg.src);
    if (attempt.next_remote < attempt.remote_order.size()) {
      SendNextFragment(msg.txn);  // sequential dispatch: next partition
    } else if (attempt.pending_remote.empty()) {
      AllFragmentsReady(msg.txn);
    }
  } else {
    AbortAttempt(msg.txn, /*send_rollbacks=*/true);
  }
}

void SimNode::HandleRemoteRollback(const Message& msg) {
  auto it = fragments_.find(msg.txn);
  if (it == fragments_.end()) {
    // Rollback overtook the fragment execution (network reordering).
    pending_rollbacks_.insert(msg.txn);
    return;
  }
  UndoWrites(it->second.undo);
  locks_.ReleaseAll(msg.txn);
  fragments_.erase(it);
  engine_->Forget(msg.txn);
}

// --------------------------------------------------------------------------
// Coordinator paths
// --------------------------------------------------------------------------

void SimNode::StartNewClientTxn(uint32_t slot) {
  if (quiesced_) return;
  ClientSlot& client = clients_[slot];
  client.request = workload_->NextTxn(id_, rng_);
  client.first_start_us = scheduler_->Now();
  client.attempts = 0;
  client.in_flight = true;
  StartAttempt(slot);
}

void SimNode::StartAttempt(uint32_t slot) {
  ClientSlot& client = clients_[slot];
  client.attempts++;
  const TxnId txn = txn_ids_.Next();

  AttemptState attempt;
  attempt.slot = slot;
  attempt.has_writes = client.request.HasWrites();
  for (const Operation& op : client.request.ops) {
    const PartitionId part = partitioner_.PartitionOf(op.key);
    if (part == id_) {
      attempt.local_ops.push_back(op);
    } else {
      attempt.remote_ops[part].push_back(op);
    }
  }
  {
    std::vector<NodeId>& parts = attempt.participants.Mutable();
    parts.push_back(id_);
    for (const auto& [node, ops] : attempt.remote_ops) {
      parts.push_back(node);
    }
    std::sort(parts.begin() + 1, parts.end());
  }

  const size_t local_count = attempt.local_ops.size();
  attempts_[txn] = std::move(attempt);

  CostVector cost = ExecCost(local_count);
  cost[static_cast<size_t>(TimeCategory::kTxnManager)] +=
      config_.costs.txn_manager_us;
  EnqueueJob(cost, [this, txn, slot]() {
    auto it = attempts_.find(txn);
    if (it == attempts_.end()) return;
    auto ctx = std::make_shared<ExecContext>();
    ctx->txn = txn;
    ctx->priority_ts = next_priority_ts_++;
    ctx->ops = it->second.local_ops;
    ctx->epoch = epoch_;
    ctx->done = [this, txn](bool ok, std::vector<UndoRecord> undo) {
      LocalExecDone(txn, ok, std::move(undo));
    };
    (void)slot;
    ExecLoop(std::move(ctx));
  });
}

void SimNode::LocalExecDone(TxnId txn, bool ok,
                            std::vector<UndoRecord> undo) {
  auto it = attempts_.find(txn);
  if (it == attempts_.end()) return;
  AttemptState& attempt = it->second;
  attempt.local_undo = std::move(undo);
  if (!ok) {
    AbortAttempt(txn, /*send_rollbacks=*/false);
    return;
  }
  attempt.local_ok = true;
  if (attempt.remote_ops.empty()) {
    // Single-partition transactions skip the commit protocol entirely
    // (Section 5.2).
    CompleteWithoutProtocol(txn);
    return;
  }
  for (const auto& [node, ops] : attempt.remote_ops) {
    attempt.remote_order.push_back(node);
  }
  std::sort(attempt.remote_order.begin(), attempt.remote_order.end());
  next_priority_ts_++;
  ArmExecTimer(txn);
  SendNextFragment(txn);
}

void SimNode::SendNextFragment(TxnId txn) {
  auto it = attempts_.find(txn);
  if (it == attempts_.end()) return;
  AttemptState& attempt = it->second;
  const NodeId node = attempt.remote_order[attempt.next_remote++];
  Message msg;
  msg.type = MsgType::kRemoteExec;
  msg.txn = txn;
  msg.dst = node;
  msg.ops = attempt.remote_ops[node];
  msg.participants = attempt.participants;
  msg.txn_has_writes = attempt.has_writes;
  msg.priority_ts = next_priority_ts_ - 1;
  Send(std::move(msg));
  attempt.pending_remote.insert(node);
}

void SimNode::AllFragmentsReady(TxnId txn) {
  auto it = attempts_.find(txn);
  if (it == attempts_.end()) return;
  AttemptState& attempt = it->second;
  CancelExecTimer(attempt);
  if (!attempt.has_writes) {
    // Multi-partition read-only: no commit protocol (Section 5.2); tell
    // remotes to release their read locks.
    CompleteWithoutProtocol(txn);
    return;
  }
  attempt.protocol_started = true;
  stats_.commit_protocol_runs++;
  engine_->StartCommit(txn, attempt.participants, Decision::kCommit);
}

void SimNode::CompleteWithoutProtocol(TxnId txn) {
  auto it = attempts_.find(txn);
  if (it == attempts_.end()) return;
  AttemptState& attempt = it->second;
  locks_.ReleaseAll(txn);
  for (NodeId node : attempt.ok_remote) {
    Message msg;
    msg.type = MsgType::kRemoteRollback;  // release-only: no undo recorded
    msg.txn = txn;
    msg.dst = node;
    Send(std::move(msg));
  }
  FinishCommitted(txn);
  EnqueueJob(Cost(TimeCategory::kOverhead, config_.costs.overhead_us),
             [this, txn]() { attempts_.erase(txn); });
}

void SimNode::FinishCommitted(TxnId txn) {
  auto it = attempts_.find(txn);
  if (it == attempts_.end()) return;
  ClientSlot& client = clients_[it->second.slot];
  stats_.txns_committed++;
  stats_.latency.Record(scheduler_->Now() - client.first_start_us);
  client.in_flight = false;
  if (track_acked_ && it->second.protocol_started) {
    acked_commits_.push_back(txn);
  }
  const uint32_t slot = it->second.slot;
  if (config_.open_loop.enabled) {
    // Open loop: the slot returns to the admission window; the next
    // transaction arrives when the arrival process says so.
    free_client_slots_.push_back(slot);
    return;
  }
  // Closed loop: the client immediately submits its next transaction.
  StartNewClientTxn(slot);
}

void SimNode::AbortAttempt(TxnId txn, bool send_rollbacks) {
  auto it = attempts_.find(txn);
  if (it == attempts_.end()) return;
  AttemptState& attempt = it->second;
  if (attempt.aborting || attempt.protocol_started) return;
  attempt.aborting = true;
  CancelExecTimer(attempt);
  UndoWrites(attempt.local_undo);
  locks_.ReleaseAll(txn);
  if (send_rollbacks) {
    std::unordered_set<NodeId> targets = attempt.ok_remote;
    for (NodeId n : attempt.pending_remote) targets.insert(n);
    for (NodeId node : targets) {
      Message msg;
      msg.type = MsgType::kRemoteRollback;
      msg.txn = txn;
      msg.dst = node;
      Send(std::move(msg));
    }
  }
  stats_.txns_aborted++;
  const uint32_t slot = attempt.slot;
  EnqueueJob(Cost(TimeCategory::kAbort, config_.costs.abort_cleanup_us),
             [this, txn, slot]() {
               attempts_.erase(txn);
               ScheduleRetry(slot);
             });
}

void SimNode::ScheduleRetry(uint32_t slot) {
  if (config_.open_loop.enabled &&
      (quiesced_ ||
       clients_[slot].attempts >= config_.open_loop.max_attempts)) {
    // Terminal abort: the retry budget ran out (or quiesce is draining
    // the node). Bounded retries keep the conservation law exact.
    stats_.open_loop_aborted++;
    clients_[slot].in_flight = false;
    free_client_slots_.push_back(slot);
    return;
  }
  if (quiesced_) {
    clients_[slot].in_flight = false;
    return;
  }
  const ClientSlot& client = clients_[slot];
  const uint32_t shift =
      std::min(client.attempts, config_.backoff_max_shift);
  const Micros backoff = static_cast<Micros>(
      rng_.NextDouble() * static_cast<double>(config_.backoff_base_us) *
      static_cast<double>(1ULL << shift));
  const uint64_t epoch = epoch_;
  scheduler_->ScheduleAfter(backoff + 1, [this, slot, epoch]() {
    if (crashed_ || epoch != epoch_) return;
    StartAttempt(slot);
  });
}

void SimNode::ArmExecTimer(TxnId txn) {
  auto it = attempts_.find(txn);
  if (it == attempts_.end()) return;
  const uint64_t epoch = epoch_;
  it->second.exec_timer = scheduler_->ScheduleAfter(
      config_.exec_timeout_us, [this, txn, epoch]() {
        if (crashed_ || epoch != epoch_) return;
        auto ait = attempts_.find(txn);
        if (ait == attempts_.end()) return;
        AttemptState& attempt = ait->second;
        attempt.exec_timer = 0;
        if (!attempt.protocol_started && !attempt.pending_remote.empty()) {
          AbortAttempt(txn, /*send_rollbacks=*/true);
        }
      });
}

void SimNode::CancelExecTimer(AttemptState& attempt) {
  if (attempt.exec_timer != 0) {
    scheduler_->Cancel(attempt.exec_timer);
    attempt.exec_timer = 0;
  }
}

// --------------------------------------------------------------------------
// Execution engine
// --------------------------------------------------------------------------

void SimNode::ExecLoop(std::shared_ptr<ExecContext> ctx) {
  while (ctx->idx < ctx->ops.size()) {
    const Operation& op = ctx->ops[ctx->idx];
    const LockMode mode =
        op.is_write() ? LockMode::kExclusive : LockMode::kShared;
    const AcquireResult result = locks_.Acquire(
        ctx->txn, ctx->priority_ts, op.table, op.key, mode, [this, ctx]() {
          // WAIT_DIE grant fired from another transaction's ReleaseAll.
          if (crashed_ || ctx->epoch != epoch_) return;
          ApplyOpAndContinue(ctx);
        });
    if (result == AcquireResult::kWaiting) return;  // resumed on grant
    if (result == AcquireResult::kAbort) {
      UndoWrites(ctx->undo);
      locks_.ReleaseAll(ctx->txn);
      ctx->done(false, {});
      return;
    }
    if (!ApplyOp(op, &ctx->undo)) {
      UndoWrites(ctx->undo);
      locks_.ReleaseAll(ctx->txn);
      ctx->done(false, {});
      return;
    }
    ctx->idx++;
  }
  ctx->done(true, std::move(ctx->undo));
}

void SimNode::ApplyOpAndContinue(std::shared_ptr<ExecContext> ctx) {
  if (!ApplyOp(ctx->ops[ctx->idx], &ctx->undo)) {
    UndoWrites(ctx->undo);
    locks_.ReleaseAll(ctx->txn);
    ctx->done(false, {});
    return;
  }
  ctx->idx++;
  ExecLoop(std::move(ctx));
}

bool SimNode::ApplyOp(const Operation& op, std::vector<UndoRecord>* undo) {
  Table* table = store_.GetTable(op.table);
  if (table == nullptr) return false;
  auto row = table->GetMutable(op.key);
  if (!row.ok()) return false;
  if (op.is_write()) {
    UndoRecord rec;
    rec.table = op.table;
    rec.key = op.key;
    rec.old_columns = row.value()->columns;
    rec.old_version = row.value()->version;
    undo->push_back(std::move(rec));
    row.value()->columns[0]++;
    row.value()->version++;
  }
  return true;
}

void SimNode::UndoWrites(const std::vector<UndoRecord>& undo) {
  // Reverse order so repeated writes to a row restore the oldest image.
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    Table* table = store_.GetTable(it->table);
    if (table == nullptr) continue;
    auto row = table->GetMutable(it->key);
    if (!row.ok()) continue;
    row.value()->columns = it->old_columns;
    row.value()->version = it->old_version;
  }
}

// --------------------------------------------------------------------------
// Fault injection and stats
// --------------------------------------------------------------------------

void SimNode::Crash() {
  crashed_ = true;
  epoch_++;  // invalidates every scheduled continuation of this node
  network_->CrashNode(id_);
  // Volatile state is lost; the WAL (stable storage) survives.
  locks_ = LockTable(config_.cc_policy);
  attempts_.clear();
  fragments_.clear();
  pending_rollbacks_.clear();
  for (auto& [txn, task] : timers_) scheduler_->Cancel(task);
  timers_.clear();
  job_queue_.clear();
  busy_workers_ = 0;
  engine_ = std::make_unique<CommitEngine>(config_.protocol, this,
                                           config_.commit);
  engine_->set_trace(&trace_);
  if (config_.open_loop.enabled) {
    // Admitted in-flight transactions die with the volatile state; count
    // them as terminal aborts so the conservation law survives crashes.
    free_client_slots_.clear();
    for (uint32_t slot = 0; slot < clients_.size(); ++slot) {
      if (clients_[slot].in_flight) stats_.open_loop_aborted++;
      clients_[slot].in_flight = false;
      free_client_slots_.push_back(slot);
    }
    return;
  }
  for (ClientSlot& client : clients_) client.in_flight = false;
}

void SimNode::Recover() {
  ECDB_CHECK(crashed_);
  crashed_ = false;
  network_->RecoverNode(id_);

  // Section 4.2 independent recovery over the WAL.
  for (TxnId txn : RecoveryManager::InFlightTxns(wal_)) {
    const auto last = wal_.LastFor(txn);
    switch (RecoveryManager::AnalyzeRecord(last)) {
      case RecoveryAction::kAbort:
        wal_.Append({0, txn, LogRecordType::kTransactionAbort, {}});
        if (monitor_ != nullptr) {
          monitor_->RecordApplied(txn, id_, Decision::kAbort);
        }
        break;
      case RecoveryAction::kCommit:
        wal_.Append({0, txn, LogRecordType::kTransactionCommit, {}});
        if (monitor_ != nullptr) {
          monitor_->RecordApplied(txn, id_, Decision::kCommit);
        }
        break;
      case RecoveryAction::kConsultPeers: {
        // Re-enter the commit protocol in the logged state; the armed
        // timeout triggers the termination protocol, which consults the
        // participants recorded in the WAL.
        const CohortState state = last->type == LogRecordType::kPreCommit
                                      ? CohortState::kPreCommit
                                      : CohortState::kReady;
        CowVector<NodeId> participants = last->participants;
        if (participants.empty()) {
          for (const LogRecord& r : wal_.Scan()) {
            if (r.txn == txn && !r.participants.empty()) {
              participants = r.participants;
              break;
            }
          }
        }
        engine_->ResumeAfterRecovery(txn, TxnCoordinator(txn),
                                     std::move(participants), state);
        break;
      }
    }
  }

  // Seed the fresh engine's decision ledger with every decision the WAL
  // witnessed (including the terminal records the loop above just wrote).
  // The pre-crash engine — and with it the in-memory ledger — died in
  // Crash(), but peers running the termination protocol must still get an
  // answer from this node for transactions it decided before going down;
  // without this, two recovered nodes consulting each other about an
  // already-decided transaction would defer forever.
  for (const LogRecord& r : wal_.Scan()) {
    switch (r.type) {
      case LogRecordType::kCommitDecision:
      case LogRecordType::kCommitReceived:
      case LogRecordType::kTransactionCommit:
        engine_->SeedDecision(r.txn, Decision::kCommit);
        break;
      case LogRecordType::kAbortDecision:
      case LogRecordType::kAbortReceived:
      case LogRecordType::kTransactionAbort:
        engine_->SeedDecision(r.txn, Decision::kAbort);
        break;
      default:
        break;
    }
  }

  // The node is back in service. Open loop: the crash's epoch bump killed
  // the pending arrival event, so restart the stream; closed loop: clients
  // reconnect and resume (their pre-crash transactions died with the
  // volatile state).
  if (!quiesced_) {
    if (config_.open_loop.enabled) {
      ScheduleNextArrival();
    } else {
      for (uint32_t slot = 0; slot < clients_.size(); ++slot) {
        if (!clients_[slot].in_flight) StartNewClientTxn(slot);
      }
    }
  }
}

void SimNode::BeginMeasurement() {
  stats_.Clear();
  busy_at_window_start_ = total_busy_us_;
  term_rounds_at_window_start_ = engine_->termination_rounds();
}

size_t SimNode::IdleClientCount() const {
  size_t idle = 0;
  for (const ClientSlot& client : clients_) {
    if (!client.in_flight) idle++;
  }
  return idle;
}

}  // namespace ecdb
