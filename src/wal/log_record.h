#ifndef ECDB_WAL_LOG_RECORD_H_
#define ECDB_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>

#include "common/cow_vector.h"
#include "common/types.h"

namespace ecdb {

/// Write-ahead-log entry kinds. The names follow the paper's algorithms
/// verbatim (Figure 5 and the 2PC/3PC descriptions): each protocol writes a
/// specific sequence of these, and the recovery manager's independent-
/// recovery rules (Section 4.2) key off the last entry for a transaction.
enum class LogRecordType : uint8_t {
  kBeginCommit,        // coordinator: commit protocol started
  kReady,              // cohort: voted commit
  kPreCommit,          // 3PC: entered PRE-COMMIT
  kCommitDecision,     // "global-commit-decision-reached" (coordinator / term leader)
  kAbortDecision,      // "global-abort-decision-reached"
  kCommitReceived,     // EC cohort: "global-commit-received"
  kAbortReceived,      // EC cohort: "global-abort-received"
  kTransactionCommit,  // transaction durably committed
  kTransactionAbort,   // transaction durably aborted
};

/// Returns the paper's name for the entry, e.g.
/// "global-commit-decision-reached".
std::string ToString(LogRecordType type);

/// One WAL entry. Entries are tiny and fixed-size: commit protocols log
/// control-flow milestones, not data (the storage engine is in-memory, as
/// in ExpoDB).
struct LogRecord {
  uint64_t lsn = 0;  // assigned by the log on append
  TxnId txn = kInvalidTxn;
  LogRecordType type = LogRecordType::kBeginCommit;

  /// Participant list (coordinator first), recorded with begin_commit and
  /// ready entries so a recovering node in the consult-peers case knows
  /// whom to ask (Section 4.2 requires contacting other participants).
  /// Copy-on-write: staging a WAL record shares the transaction's existing
  /// list (one refcount bump) instead of deep-copying it per log entry —
  /// the last per-transaction allocation on the commit hot path.
  CowVector<NodeId> participants;

  friend bool operator==(const LogRecord&, const LogRecord&) = default;
};

}  // namespace ecdb

#endif  // ECDB_WAL_LOG_RECORD_H_
