#ifndef ECDB_WAL_WAL_H_
#define ECDB_WAL_WAL_H_

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "wal/log_record.h"

namespace ecdb {

/// Abstract write-ahead log. One instance per node; commit protocols append
/// their milestone entries here before acting (write-ahead rule), and the
/// recovery manager scans it after a restart.
class WriteAheadLog {
 public:
  virtual ~WriteAheadLog() = default;

  /// Appends `record`, assigns and returns its LSN (monotonic from 1).
  virtual uint64_t Append(LogRecord record) = 0;

  /// Returns every record in append order.
  virtual std::vector<LogRecord> Scan() const = 0;

  /// Returns the last record logged for `txn`, if any. This is the input
  /// to the independent-recovery decision.
  virtual std::optional<LogRecord> LastFor(TxnId txn) const = 0;

  /// Number of appended records.
  virtual uint64_t Size() const = 0;
};

/// In-memory WAL used by the simulator. Survives simulated node crashes
/// (the simulator keeps the object alive across crash/recover), which
/// models stable storage exactly as the paper assumes.
class MemoryWal : public WriteAheadLog {
 public:
  MemoryWal() = default;

  uint64_t Append(LogRecord record) override;
  std::vector<LogRecord> Scan() const override;
  std::optional<LogRecord> LastFor(TxnId txn) const override;
  uint64_t Size() const override { return records_.size(); }

  /// Drops all records; used when a test re-initializes stable storage.
  void Clear() { records_.clear(); }

 private:
  std::vector<LogRecord> records_;
};

/// File-backed WAL with a fixed-width binary record format and CRC-style
/// framing check. Used by the threaded runtime examples to demonstrate
/// recovery from an on-disk log.
class FileWal : public WriteAheadLog {
 public:
  /// Opens (creating if needed) the log at `path` and replays existing
  /// records into the in-memory index.
  static Result<std::unique_ptr<FileWal>> Open(const std::string& path);

  ~FileWal() override;

  FileWal(const FileWal&) = delete;
  FileWal& operator=(const FileWal&) = delete;

  uint64_t Append(LogRecord record) override;
  std::vector<LogRecord> Scan() const override;
  std::optional<LogRecord> LastFor(TxnId txn) const override;
  uint64_t Size() const override { return records_.size(); }

  /// Flushes buffered appends to the OS.
  Status Sync();

  const std::string& path() const { return path_; }

 private:
  explicit FileWal(std::string path, std::FILE* file);

  std::string path_;
  std::FILE* file_;
  std::vector<LogRecord> records_;  // in-memory mirror for Scan/LastFor
};

}  // namespace ecdb

#endif  // ECDB_WAL_WAL_H_
