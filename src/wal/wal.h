#ifndef ECDB_WAL_WAL_H_
#define ECDB_WAL_WAL_H_

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "wal/log_record.h"

namespace ecdb {

/// Abstract write-ahead log. One instance per node; commit protocols append
/// their milestone entries here before acting (write-ahead rule), and the
/// recovery manager scans it after a restart.
class WriteAheadLog {
 public:
  virtual ~WriteAheadLog() = default;

  /// Appends `record`, assigns and returns its LSN (monotonic from 1).
  virtual uint64_t Append(LogRecord record) = 0;

  /// Appends every record in `*records` in order as one group, assigning
  /// consecutive LSNs. `*records` is drained (cleared, capacity kept) so
  /// callers recycle the buffer. Returns the LSN of the last record, or 0
  /// when the batch is empty. The base implementation is a plain Append
  /// loop; buffering logs override it to stage the whole group at once.
  virtual uint64_t AppendBatch(std::vector<LogRecord>* records);

  /// Group commit: makes every record appended since the previous Flush
  /// durable with a single device round-trip. Logs without write
  /// buffering are trivially flushed (default no-op).
  virtual Status Flush() { return Status::OK(); }

  /// Number of flushes that actually covered pending records — each one
  /// stands in for the per-append syncs group commit amortized away.
  /// Always 0 for logs without buffering.
  virtual uint64_t group_flushes() const { return 0; }

  /// Returns every record in append order.
  virtual std::vector<LogRecord> Scan() const = 0;

  /// Returns the last record logged for `txn`, if any. This is the input
  /// to the independent-recovery decision.
  virtual std::optional<LogRecord> LastFor(TxnId txn) const = 0;

  /// Number of appended records.
  virtual uint64_t Size() const = 0;
};

/// In-memory WAL used by the simulator. Survives simulated node crashes
/// (the simulator keeps the object alive across crash/recover), which
/// models stable storage exactly as the paper assumes.
class MemoryWal : public WriteAheadLog {
 public:
  MemoryWal() = default;

  uint64_t Append(LogRecord record) override;
  std::vector<LogRecord> Scan() const override;
  std::optional<LogRecord> LastFor(TxnId txn) const override;
  uint64_t Size() const override { return records_.size(); }

  /// Memory is "durable" the moment Append returns, so Flush only keeps
  /// the group-commit accounting: a flush with appends pending since the
  /// previous one counts, mirroring what a file-backed log would sync.
  Status Flush() override;
  uint64_t group_flushes() const override { return group_flushes_; }

  /// Drops all records; used when a test re-initializes stable storage.
  void Clear() { records_.clear(); }

 private:
  std::vector<LogRecord> records_;
  uint64_t appended_since_flush_ = 0;
  uint64_t group_flushes_ = 0;
};

/// File-backed WAL with a fixed-width binary record format and CRC-style
/// framing check. Used by the threaded runtime examples to demonstrate
/// recovery from an on-disk log.
class FileWal : public WriteAheadLog {
 public:
  /// Opens (creating if needed) the log at `path` and replays existing
  /// records into the in-memory index.
  static Result<std::unique_ptr<FileWal>> Open(const std::string& path);

  ~FileWal() override;

  FileWal(const FileWal&) = delete;
  FileWal& operator=(const FileWal&) = delete;

  /// Appends stage the encoded record in an internal buffer; nothing
  /// reaches the file until Flush (group commit). Scan/LastFor see staged
  /// records immediately — the write-ahead rule is enforced by the host
  /// flushing before it acts on the logged decision, not per append.
  uint64_t Append(LogRecord record) override;
  uint64_t AppendBatch(std::vector<LogRecord>* records) override;
  std::vector<LogRecord> Scan() const override;
  std::optional<LogRecord> LastFor(TxnId txn) const override;
  uint64_t Size() const override { return records_.size(); }

  /// Writes every staged record and flushes the OS buffer once — the
  /// single device round-trip that covers the whole group. No-op (and not
  /// counted) when nothing is staged.
  Status Flush() override;
  uint64_t group_flushes() const override { return group_flushes_; }

  /// Flushes buffered appends to the OS. (Group-commit alias: one Sync
  /// covers every Append since the previous one.)
  Status Sync() { return Flush(); }

  /// Crash hook for tests: discards records staged but never flushed, as
  /// a real crash would — the in-memory mirror is truncated back to the
  /// durable prefix so a subsequent Scan matches what reopen would see.
  void DropUnflushed();

  const std::string& path() const { return path_; }

 private:
  explicit FileWal(std::string path, std::FILE* file);

  std::string path_;
  std::FILE* file_;
  std::vector<LogRecord> records_;  // in-memory mirror for Scan/LastFor
  std::vector<unsigned char> pending_;  // encoded, staged since last flush
  size_t flushed_records_ = 0;          // prefix of records_ on disk
  uint64_t group_flushes_ = 0;
};

}  // namespace ecdb

#endif  // ECDB_WAL_WAL_H_
