#include "wal/wal.h"

#include <cstring>

namespace ecdb {

std::string ToString(LogRecordType type) {
  switch (type) {
    case LogRecordType::kBeginCommit:
      return "begin_commit";
    case LogRecordType::kReady:
      return "ready";
    case LogRecordType::kPreCommit:
      return "pre-commit";
    case LogRecordType::kCommitDecision:
      return "global-commit-decision-reached";
    case LogRecordType::kAbortDecision:
      return "global-abort-decision-reached";
    case LogRecordType::kCommitReceived:
      return "global-commit-received";
    case LogRecordType::kAbortReceived:
      return "global-abort-received";
    case LogRecordType::kTransactionCommit:
      return "transaction-commit";
    case LogRecordType::kTransactionAbort:
      return "transaction-abort";
  }
  return "unknown";
}

uint64_t WriteAheadLog::AppendBatch(std::vector<LogRecord>* records) {
  uint64_t last = 0;
  for (LogRecord& r : *records) last = Append(std::move(r));
  records->clear();
  return last;
}

uint64_t MemoryWal::Append(LogRecord record) {
  record.lsn = records_.size() + 1;
  records_.push_back(record);
  appended_since_flush_++;
  return record.lsn;
}

Status MemoryWal::Flush() {
  if (appended_since_flush_ > 0) {
    group_flushes_++;
    appended_since_flush_ = 0;
  }
  return Status::OK();
}

std::vector<LogRecord> MemoryWal::Scan() const { return records_; }

std::optional<LogRecord> MemoryWal::LastFor(TxnId txn) const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->txn == txn) return *it;
  }
  return std::nullopt;
}

namespace {

// On-disk framing:
// [magic u16][type u8][npart u8][txn u64][lsn u64][participants u32 x n]
// [check u32]. `check` is a simple mix of the fields, enough to catch torn
// writes at the tail.
constexpr uint16_t kRecordMagic = 0xECDB;
constexpr size_t kHeaderBytes = 2 + 1 + 1 + 8 + 8;

uint32_t Checksum(const LogRecord& r) {
  uint64_t h = r.txn * 0x9E3779B97f4A7C15ULL;
  h ^= static_cast<uint64_t>(r.type) << 32;
  h ^= r.lsn * 0xBF58476D1CE4E5B9ULL;
  for (NodeId p : r.participants) {
    h = (h ^ p) * 0x94D049BB133111EBULL;
  }
  return static_cast<uint32_t>(h ^ (h >> 32));
}

// Appends the encoding of `r` to `*out` (the staging buffer), so a whole
// group of records encodes into one contiguous write.
void EncodeRecord(const LogRecord& r, std::vector<unsigned char>* out) {
  const size_t start = out->size();
  out->resize(start + kHeaderBytes + 4 * r.participants.size() + 4);
  unsigned char* p = out->data() + start;
  std::memcpy(p, &kRecordMagic, 2);
  p[2] = static_cast<unsigned char>(r.type);
  p[3] = static_cast<unsigned char>(r.participants.size());
  std::memcpy(p + 4, &r.txn, 8);
  std::memcpy(p + 12, &r.lsn, 8);
  size_t off = kHeaderBytes;
  for (NodeId part : r.participants) {
    uint32_t v = part;
    std::memcpy(p + off, &v, 4);
    off += 4;
  }
  const uint32_t check = Checksum(r);
  std::memcpy(p + off, &check, 4);
}

// Reads one record from `file`; false on EOF or corruption.
bool ReadRecord(std::FILE* file, LogRecord* out) {
  unsigned char header[kHeaderBytes];
  if (std::fread(header, 1, kHeaderBytes, file) != kHeaderBytes) return false;
  uint16_t magic;
  std::memcpy(&magic, header, 2);
  if (magic != kRecordMagic) return false;
  out->type = static_cast<LogRecordType>(header[2]);
  const size_t npart = header[3];
  std::memcpy(&out->txn, header + 4, 8);
  std::memcpy(&out->lsn, header + 12, 8);
  out->participants.clear();
  for (size_t i = 0; i < npart; ++i) {
    uint32_t v;
    if (std::fread(&v, 1, 4, file) != 4) return false;
    out->participants.push_back(v);
  }
  uint32_t check;
  if (std::fread(&check, 1, 4, file) != 4) return false;
  return check == Checksum(*out);
}

}  // namespace

FileWal::FileWal(std::string path, std::FILE* file)
    : path_(std::move(path)), file_(file) {}

FileWal::~FileWal() {
  // Orderly shutdown is not a crash: staged records go out with the log.
  // Nothing to report a flush failure to here; the file is closing anyway.
  (void)Flush();
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<FileWal>> FileWal::Open(const std::string& path) {
  // a+b: reads allowed anywhere, writes always append.
  std::FILE* file = std::fopen(path.c_str(), "a+b");
  if (file == nullptr) {
    return Status::IOError("cannot open WAL at " + path);
  }
  auto wal = std::unique_ptr<FileWal>(new FileWal(path, file));

  // Replay existing records; stop at the first torn/corrupt frame.
  std::fseek(file, 0, SEEK_SET);
  LogRecord record;
  while (ReadRecord(file, &record)) {
    wal->records_.push_back(record);
  }
  std::fseek(file, 0, SEEK_END);
  wal->flushed_records_ = wal->records_.size();
  return wal;
}

uint64_t FileWal::Append(LogRecord record) {
  record.lsn = records_.size() + 1;
  EncodeRecord(record, &pending_);
  records_.push_back(std::move(record));
  return records_.back().lsn;
}

uint64_t FileWal::AppendBatch(std::vector<LogRecord>* records) {
  uint64_t last = 0;
  for (LogRecord& r : *records) last = Append(std::move(r));
  records->clear();
  return last;
}

std::vector<LogRecord> FileWal::Scan() const { return records_; }

std::optional<LogRecord> FileWal::LastFor(TxnId txn) const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->txn == txn) return *it;
  }
  return std::nullopt;
}

Status FileWal::Flush() {
  if (pending_.empty()) return Status::OK();
  if (std::fwrite(pending_.data(), 1, pending_.size(), file_) !=
      pending_.size()) {
    return Status::IOError("WAL group write failed");
  }
  if (std::fflush(file_) != 0) return Status::IOError("fflush failed");
  pending_.clear();
  flushed_records_ = records_.size();
  group_flushes_++;
  return Status::OK();
}

void FileWal::DropUnflushed() {
  pending_.clear();
  records_.resize(flushed_records_);
}

}  // namespace ecdb
