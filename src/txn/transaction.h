#ifndef ECDB_TXN_TRANSACTION_H_
#define ECDB_TXN_TRANSACTION_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/cow_vector.h"
#include "common/operation.h"
#include "common/types.h"

namespace ecdb {

/// Before-image of one updated row, kept while a transaction is in flight
/// so an abort can restore the row (in-place update + undo, 2PL style).
struct UndoRecord {
  TableId table = 0;
  Key key = 0;
  std::vector<uint64_t> old_columns;
  uint64_t old_version = 0;
};

/// Final fate of a transaction attempt.
enum class TxnOutcome : uint8_t {
  kInFlight,
  kCommitted,
  kAborted,   // will be retried by the client model after backoff
  kBlocked,   // commit protocol blocked (2PC under multi-failure)
};

/// Lifecycle phase of a coordinator-side transaction.
enum class TxnPhase : uint8_t {
  kExecuting,   // running operations on local/remote partitions
  kCommitting,  // commit protocol in progress
  kFinished,    // outcome decided and applied
};

/// Coordinator-side state for one transaction attempt. The stored-procedure
/// model from the paper: the client submits the full read/write set, the
/// coordinating server executes local operations, ships remote fragments,
/// then runs the commit protocol.
struct Transaction {
  TxnId id = kInvalidTxn;
  NodeId coordinator = kInvalidNode;

  /// Full operation list (the stored procedure's data accesses).
  std::vector<Operation> ops;

  /// Operations grouped by owning partition, computed at start.
  std::unordered_map<PartitionId, std::vector<Operation>> fragments;

  /// Remote nodes whose kRemoteExecOk is still outstanding.
  std::unordered_set<NodeId> pending_remote;

  /// Priority timestamp for WAIT_DIE (assigned at first start so retries
  /// keep their age and eventually win).
  uint64_t priority_ts = 0;

  Micros first_start_us = 0;    // first attempt start (latency anchor)
  Micros attempt_start_us = 0;  // current attempt start
  uint32_t attempts = 0;

  TxnPhase phase = TxnPhase::kExecuting;
  TxnOutcome outcome = TxnOutcome::kInFlight;

  /// True when any operation writes; read-only transactions skip the
  /// commit protocol entirely (paper Section 5.2).
  bool has_writes = false;

  /// True when operations span more than one partition; single-partition
  /// transactions also skip the commit protocol.
  bool is_multi_partition = false;

  /// Participant nodes (coordinator first), fixed at start of commit.
  std::vector<NodeId> participants;
};

/// Participant-side state for a remote fragment: the operations executed on
/// behalf of a coordinator plus undo information for rollback. The
/// participant list and operations arrive on a kRemoteExec message; storing
/// them as copy-on-write vectors shares the message's buffers instead of
/// deep-copying them into every fragment.
struct FragmentState {
  TxnId txn = kInvalidTxn;
  NodeId coordinator = kInvalidNode;
  CowVector<NodeId> participants;
  CowVector<Operation> ops;
  std::vector<UndoRecord> undo;
};

/// Allocates coordinator-local transaction ids.
class TxnIdAllocator {
 public:
  explicit TxnIdAllocator(NodeId node) : node_(node) {}

  TxnId Next() { return MakeTxnId(node_, seq_++); }

 private:
  NodeId node_;
  uint64_t seq_ = 1;
};

}  // namespace ecdb

#endif  // ECDB_TXN_TRANSACTION_H_
