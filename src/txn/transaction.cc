#include "txn/transaction.h"

// Transaction state is plain data; this translation unit exists so the
// module owns a compiled object and future helpers have a home.

namespace ecdb {}  // namespace ecdb
