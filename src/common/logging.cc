#include "common/logging.h"

#include <cstdarg>

#include <atomic>

namespace ecdb {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kError)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal_logging {

void LogImpl(LogLevel level, const char* file, int line, const char* fmt,
             ...) {
  // Strip directories from the path for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] ", LevelName(level), base, line);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace internal_logging

}  // namespace ecdb
