#ifndef ECDB_COMMON_RNG_H_
#define ECDB_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace ecdb {

/// Deterministic 64-bit PRNG (xoshiro256**). Every stochastic component of
/// the platform (network jitter, workload generators, client think times)
/// draws from an explicitly seeded `Rng` so runs are reproducible; nothing
/// uses `std::random_device` or global random state.
class Rng {
 public:
  /// Seeds the generator. Two `Rng`s with the same seed produce identical
  /// streams on every platform.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, bound). `bound` must be nonzero. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Derives an independent child generator; convenient for handing each
  /// component its own stream while keeping a single root seed.
  Rng Fork();

 private:
  uint64_t state_[4];
};

/// Zipfian-distributed key generator over [0, n), as used by YCSB. The skew
/// parameter `theta` follows the YCSB convention: theta near 0 is uniform
/// and theta 0.9 is extremely skewed (the paper sweeps 0.1 .. 0.9). Uses the
/// Gray et al. rejection-free method with precomputed zeta constants.
class ZipfianGenerator {
 public:
  /// Prepares a generator over `n` items with skew `theta` in [0, 1).
  ZipfianGenerator(uint64_t n, double theta);

  /// Draws the next item in [0, n). Item 0 is the hottest.
  uint64_t Next(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double half_pow_theta_;  // pow(0.5, theta), hoisted off the Next hot path
};

}  // namespace ecdb

#endif  // ECDB_COMMON_RNG_H_
