#ifndef ECDB_COMMON_OPERATION_H_
#define ECDB_COMMON_OPERATION_H_

#include <cstdint>

#include "common/types.h"

namespace ecdb {

/// Identifier of a table in the catalog.
using TableId = uint32_t;

/// Access mode of a single transactional operation.
enum class AccessMode : uint8_t {
  kRead,
  kWrite,
};

/// One read or write of a row, the unit of work inside a transaction.
/// Workloads compile transactions into vectors of operations; the execution
/// engine routes each operation to the partition owning its key.
struct Operation {
  TableId table = 0;
  Key key = 0;
  AccessMode mode = AccessMode::kRead;

  bool is_write() const { return mode == AccessMode::kWrite; }

  friend bool operator==(const Operation&, const Operation&) = default;
};

}  // namespace ecdb

#endif  // ECDB_COMMON_OPERATION_H_
