#include "common/status.h"

namespace ecdb {

namespace {

const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      return "NotFound";
    case Code::kAlreadyExists:
      return "AlreadyExists";
    case Code::kConflict:
      return "Conflict";
    case Code::kAborted:
      return "Aborted";
    case Code::kBlocked:
      return "Blocked";
    case Code::kTimedOut:
      return "TimedOut";
    case Code::kInvalidArgument:
      return "InvalidArgument";
    case Code::kIOError:
      return "IOError";
    case Code::kCorruption:
      return "Corruption";
    case Code::kUnavailable:
      return "Unavailable";
    case Code::kNotSupported:
      return "NotSupported";
    case Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ecdb
