#ifndef ECDB_COMMON_COW_VECTOR_H_
#define ECDB_COMMON_COW_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

namespace ecdb {

/// Copy-on-write wrapper around std::vector<T>. Copying a CowVector shares
/// the underlying storage (one refcount bump), so fanning a message out to
/// n recipients costs one allocation instead of n deep copies — the cost
/// that used to dominate EasyCommit's O(n^2) decision re-broadcast, where
/// every Global-* message carries the full participant list.
///
/// Reads go through const accessors (plus an implicit conversion to
/// `const std::vector<T>&`, so fields drop into existing vector-typed
/// parameters and assignments unchanged). Mutation detaches onto a private
/// copy first, so no holder can observe another holder's writes.
///
/// Thread-safety matches shared_ptr: concurrent readers of a shared
/// payload are safe (the threaded runtime passes messages across node
/// threads); a payload is only written before it is first shared or after
/// Mutable() detaches.
template <typename T>
class CowVector {
 public:
  using Vec = std::vector<T>;
  using value_type = T;
  using const_iterator = typename Vec::const_iterator;

  CowVector() = default;
  CowVector(std::initializer_list<T> init) { *this = Vec(init); }
  CowVector(const Vec& v) { *this = v; }          // NOLINT: deliberate
  CowVector(Vec&& v) { *this = std::move(v); }    // NOLINT: deliberate

  CowVector(const CowVector&) = default;             // shares storage
  CowVector(CowVector&&) noexcept = default;
  CowVector& operator=(const CowVector&) = default;  // shares storage
  CowVector& operator=(CowVector&&) noexcept = default;

  CowVector& operator=(const Vec& v) {
    data_ = v.empty() ? nullptr : std::make_shared<Vec>(v);
    return *this;
  }
  CowVector& operator=(Vec&& v) {
    data_ = v.empty() ? nullptr : std::make_shared<Vec>(std::move(v));
    return *this;
  }
  CowVector& operator=(std::initializer_list<T> init) {
    return *this = Vec(init);
  }

  bool empty() const { return data_ == nullptr || data_->empty(); }
  size_t size() const { return data_ == nullptr ? 0 : data_->size(); }
  const T& operator[](size_t i) const { return (*data_)[i]; }
  const_iterator begin() const { return vec().begin(); }
  const_iterator end() const { return vec().end(); }

  /// Read view as a plain vector (no copy).
  const Vec& vec() const { return data_ == nullptr ? EmptyVec() : *data_; }
  operator const Vec&() const { return vec(); }  // NOLINT: deliberate

  /// True when `other` currently shares this vector's storage. Used by
  /// tests to pin the payload-sharing behaviour.
  bool SharesStorageWith(const CowVector& other) const {
    return data_ != nullptr && data_ == other.data_;
  }

  /// Mutable access; detaches (clones) first if the storage is shared.
  Vec& Mutable() {
    if (data_ == nullptr) {
      data_ = std::make_shared<Vec>();
    } else if (data_.use_count() > 1) {
      data_ = std::make_shared<Vec>(*data_);
    }
    return *data_;
  }

  // Vector-style mutators (message builders and tests); all detach.
  void push_back(const T& v) { Mutable().push_back(v); }
  void push_back(T&& v) { Mutable().push_back(std::move(v)); }
  void assign(size_t n, const T& v) { Mutable().assign(n, v); }
  void resize(size_t n) { Mutable().resize(n); }
  void clear() { data_.reset(); }

  friend bool operator==(const CowVector& a, const CowVector& b) {
    return a.data_ == b.data_ || a.vec() == b.vec();
  }
  friend bool operator==(const CowVector& a, const Vec& b) {
    return a.vec() == b;
  }
  friend bool operator==(const Vec& a, const CowVector& b) {
    return a == b.vec();
  }

 private:
  static const Vec& EmptyVec() {
    static const Vec empty;
    return empty;
  }

  std::shared_ptr<Vec> data_;
};

}  // namespace ecdb

#endif  // ECDB_COMMON_COW_VECTOR_H_
