#ifndef ECDB_COMMON_TYPES_H_
#define ECDB_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>

namespace ecdb {

/// Identifier of a server node in the cluster. Node ids are dense and start
/// at zero; the simulator and the threaded runtime both index nodes by id.
using NodeId = uint32_t;

/// Identifier of a data partition. The platform is shared-nothing: every
/// partition is owned by exactly one server node.
using PartitionId = uint32_t;

/// Globally unique transaction identifier. The coordinator node id is
/// embedded in the upper bits so ids never collide across coordinators.
using TxnId = uint64_t;

/// Primary key of a row within a table. Keys are 64-bit; workloads that use
/// composite keys (e.g. TPC-C) encode them into 64 bits.
using Key = uint64_t;

/// Simulated or wall-clock time in microseconds since the epoch of the run.
using Micros = uint64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr TxnId kInvalidTxn = std::numeric_limits<TxnId>::max();

/// Builds a transaction id from the coordinating node and a local sequence
/// number. The coordinator occupies the top 16 bits.
constexpr TxnId MakeTxnId(NodeId coordinator, uint64_t seq) {
  return (static_cast<TxnId>(coordinator) << 48) | (seq & 0xFFFFFFFFFFFFULL);
}

/// Extracts the coordinating node from a transaction id.
constexpr NodeId TxnCoordinator(TxnId txn) {
  return static_cast<NodeId>(txn >> 48);
}

/// Extracts the coordinator-local sequence number from a transaction id.
constexpr uint64_t TxnSequence(TxnId txn) { return txn & 0xFFFFFFFFFFFFULL; }

/// Global decision reached by an atomic commitment protocol.
enum class Decision : uint8_t {
  kCommit,
  kAbort,
};

/// Returns "commit" or "abort".
std::string ToString(Decision decision);

/// Atomic commitment protocol selector. `kEasyCommitNoForward` is the
/// ablation variant with decision forwarding (message redundancy) disabled;
/// it exists to quantify the contribution of the paper's insight (ii).
/// `kTwoPhasePresumedAbort` / `kTwoPhasePresumedCommit` are the classic
/// 2PC log/ack optimizations (extensions beyond the paper): a missing log
/// record is presumed to mean abort (PA) or commit (PC), which removes the
/// abort-side (PA) or commit-side (PC) acknowledgments and log writes.
enum class CommitProtocol : uint8_t {
  kTwoPhase,
  kThreePhase,
  kEasyCommit,
  kEasyCommitNoForward,
  kTwoPhasePresumedAbort,
  kTwoPhasePresumedCommit,
};

/// Returns a short human-readable protocol name ("2PC", "3PC", "EC", ...).
std::string ToString(CommitProtocol protocol);

}  // namespace ecdb

#endif  // ECDB_COMMON_TYPES_H_
