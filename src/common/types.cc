#include "common/types.h"

namespace ecdb {

std::string ToString(Decision decision) {
  return decision == Decision::kCommit ? "commit" : "abort";
}

std::string ToString(CommitProtocol protocol) {
  switch (protocol) {
    case CommitProtocol::kTwoPhase:
      return "2PC";
    case CommitProtocol::kThreePhase:
      return "3PC";
    case CommitProtocol::kEasyCommit:
      return "EC";
    case CommitProtocol::kEasyCommitNoForward:
      return "EC-noforward";
    case CommitProtocol::kTwoPhasePresumedAbort:
      return "2PC-PA";
    case CommitProtocol::kTwoPhasePresumedCommit:
      return "2PC-PC";
  }
  return "unknown";
}

}  // namespace ecdb
