#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace ecdb {

namespace {

// SplitMix64, used only to expand the seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  return lo + NextBounded(hi - lo + 1);
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  assert(theta >= 0.0 && theta < 1.0);
  alpha_ = 1.0 / (1.0 - theta_);
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  half_pow_theta_ = std::pow(0.5, theta_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next(Rng& rng) const {
  // Gray et al. "Quickly generating billion-record synthetic databases".
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + half_pow_theta_) return 1;
  const double v =
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t item = static_cast<uint64_t>(v);
  if (item >= n_) item = n_ - 1;
  return item;
}

}  // namespace ecdb
