#ifndef ECDB_COMMON_LOGGING_H_
#define ECDB_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace ecdb {

/// Severity for diagnostic logging. Diagnostic output is off by default so
/// benchmarks stay quiet; tests and examples can raise the level.
enum class LogLevel : int {
  kNone = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
};

/// Returns the process-wide diagnostic level (default kError).
LogLevel GetLogLevel();

/// Sets the process-wide diagnostic level.
void SetLogLevel(LogLevel level);

namespace internal_logging {
void LogImpl(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));
}  // namespace internal_logging

}  // namespace ecdb

/// printf-style diagnostics. Usage: ECDB_LOG(kInfo, "node %u up", id);
#define ECDB_LOG(level, ...)                                              \
  do {                                                                    \
    if (::ecdb::GetLogLevel() >= ::ecdb::LogLevel::level) {               \
      ::ecdb::internal_logging::LogImpl(::ecdb::LogLevel::level,          \
                                        __FILE__, __LINE__, __VA_ARGS__); \
    }                                                                     \
  } while (0)

/// Fatal invariant check; aborts with a message when `cond` is false.
/// Used for programmer errors, never for recoverable runtime conditions.
#define ECDB_CHECK(cond, ...)                                                \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::ecdb::internal_logging::LogImpl(::ecdb::LogLevel::kError, __FILE__, \
                                        __LINE__, "CHECK failed: " #cond);  \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // ECDB_COMMON_LOGGING_H_
