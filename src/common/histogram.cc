#include "common/histogram.h"

#include <algorithm>
#include <cmath>

namespace ecdb {

namespace {

// Buckets: 0..63 map 1:1; beyond that, geometric with ratio 2^(1/16)
// (16 sub-buckets per power of two), giving <= ~4.4% relative error.
constexpr size_t kLinearBuckets = 64;
constexpr int kSubBuckets = 16;

}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

size_t Histogram::BucketFor(uint64_t value) {
  if (value < kLinearBuckets) return static_cast<size_t>(value);
  const int msb = 63 - __builtin_clzll(value);
  // Position within the power-of-two range, in sixteenths.
  const int shift = msb - 4 > 0 ? msb - 4 : 0;
  const int sub = static_cast<int>((value >> shift) & 0xF);
  const size_t idx = kLinearBuckets +
                     static_cast<size_t>(msb - 6) * kSubBuckets +
                     static_cast<size_t>(sub);
  return std::min(idx, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(size_t bucket) {
  if (bucket < kLinearBuckets) return bucket;
  const size_t rel = bucket - kLinearBuckets;
  const int msb = static_cast<int>(rel / kSubBuckets) + 6;
  const int sub = static_cast<int>(rel % kSubBuckets);
  const int shift = msb - 4 > 0 ? msb - 4 : 0;
  const uint64_t base = (1ULL << msb) + (static_cast<uint64_t>(sub) << shift);
  const uint64_t width = 1ULL << shift;
  return base + width - 1;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketFor(value)]++;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  sum_ += value;
  count_++;
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

void Histogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

double Histogram::Mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank, clamped to rank 1 so q=0 asks for the first sample
  // rather than rank 0 (which used to return the first non-empty bucket's
  // upper bound instead of the minimum).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_))));
  // Rank 1 is the smallest sample, which is tracked exactly; this also
  // makes every percentile of a single-sample histogram exact.
  if (rank <= 1) return min_;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank && buckets_[i] > 0) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

}  // namespace ecdb
