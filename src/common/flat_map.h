#ifndef ECDB_COMMON_FLAT_MAP_H_
#define ECDB_COMMON_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ecdb {

/// Default hasher for FlatMap: a full-avalanche mix (splitmix64 finalizer)
/// so power-of-two masking can use the low bits even for sequential keys
/// (row ids, transaction ids). Specialize or pass a custom hasher for
/// composite keys.
template <typename K>
struct FlatHash {
  size_t operator()(const K& key) const {
    uint64_t h = static_cast<uint64_t>(key);
    h ^= h >> 30;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 27;
    h *= 0x94D049BB133111EBULL;
    h ^= h >> 31;
    return static_cast<size_t>(h);
  }
};

/// Open-addressing hash map with linear probing over a power-of-two slot
/// array, built for the hot paths of both runtimes (storage rows, lock
/// entries, per-transaction bookkeeping). Compared with std::unordered_map:
///
///  * one flat allocation, no per-node allocation, no bucket pointer chase
///    — a lookup is a mix, a mask, and a short linear scan;
///  * erase uses backward-shift deletion, so there are no tombstones and
///    probe chains never grow stale;
///  * Clear() keeps the slot array, so a recycled map re-fills without
///    reallocating.
///
/// Contracts (pinned by tests/flat_map_test.cc):
///  * K and V must be default-constructible and movable; keys must be
///    equality-comparable.
///  * Pointers/references/iterators are invalidated by ANY mutation:
///    insertion may rehash, and Erase backward-shifts later elements of
///    the probe chain into the hole. Never hold one across a mutation.
///  * Iteration order is unspecified but deterministic: it depends only on
///    the sequence of operations, never on addresses or randomness (the
///    simulator's golden-trace determinism relies on this).
template <typename K, typename V, typename Hash = FlatHash<K>>
class FlatMap {
 public:
  struct Slot {
    K key{};
    V value{};
  };

  template <bool kConst>
  class Iter {
   public:
    using MapT = std::conditional_t<kConst, const FlatMap, FlatMap>;
    using SlotT = std::conditional_t<kConst, const Slot, Slot>;

    Iter(MapT* map, size_t idx) : map_(map), idx_(idx) { SkipEmpty(); }

    SlotT& operator*() const { return map_->slots_[idx_]; }
    SlotT* operator->() const { return &map_->slots_[idx_]; }
    Iter& operator++() {
      ++idx_;
      SkipEmpty();
      return *this;
    }
    bool operator==(const Iter& other) const { return idx_ == other.idx_; }
    bool operator!=(const Iter& other) const { return idx_ != other.idx_; }

   private:
    void SkipEmpty() {
      while (idx_ < map_->slots_.size() && !map_->used_[idx_]) ++idx_;
    }
    MapT* map_;
    size_t idx_;
  };
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of slots currently allocated (power of two, or 0).
  size_t capacity() const { return slots_.size(); }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, slots_.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, slots_.size()); }

  /// Returns the value for `key` or nullptr. Valid until the next mutation.
  V* Find(const K& key) {
    const size_t idx = IndexOf(key);
    return idx == kNpos ? nullptr : &slots_[idx].value;
  }
  const V* Find(const K& key) const {
    const size_t idx = IndexOf(key);
    return idx == kNpos ? nullptr : &slots_[idx].value;
  }

  bool Contains(const K& key) const { return IndexOf(key) != kNpos; }

  /// Returns the value for `key`, default-constructing it if absent.
  V& operator[](const K& key) {
    ReserveForInsert();
    size_t i = Hash{}(key)&mask_;
    while (used_[i]) {
      if (slots_[i].key == key) return slots_[i].value;
      i = (i + 1) & mask_;
    }
    used_[i] = 1;
    slots_[i].key = key;
    ++size_;
    return slots_[i].value;
  }

  /// Inserts (key, value) if absent. Returns {slot value, inserted}; an
  /// existing mapping is left untouched (mirrors try_emplace).
  std::pair<V*, bool> Emplace(const K& key, V&& value) {
    ReserveForInsert();
    size_t i = Hash{}(key)&mask_;
    while (used_[i]) {
      if (slots_[i].key == key) return {&slots_[i].value, false};
      i = (i + 1) & mask_;
    }
    used_[i] = 1;
    slots_[i].key = key;
    slots_[i].value = std::move(value);
    ++size_;
    return {&slots_[i].value, true};
  }

  /// Removes `key`. Backward-shift deletion: later members of the probe
  /// chain slide into the hole, so all positions stay reachable without
  /// tombstones. Returns false when absent.
  bool Erase(const K& key) {
    size_t hole = IndexOf(key);
    if (hole == kNpos) return false;
    size_t j = hole;
    for (;;) {
      j = (j + 1) & mask_;
      if (!used_[j]) break;
      // Slot j may move into the hole only if the hole still lies on j's
      // probe path, i.e. the hole is no earlier (cyclically from j's ideal
      // position) than j itself.
      const size_t ideal = Hash{}(slots_[j].key) & mask_;
      if (((j - ideal) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
    }
    slots_[hole] = Slot{};  // release the vacated slot's resources
    used_[hole] = 0;
    --size_;
    return true;
  }

  /// Empties the map but keeps the slot array for refilling.
  void Clear() {
    if (size_ != 0) {
      for (size_t i = 0; i < slots_.size(); ++i) {
        if (used_[i]) {
          slots_[i] = Slot{};
          used_[i] = 0;
        }
      }
      size_ = 0;
    }
  }

  /// Pre-sizes the table for `n` mappings so inserting up to n entries
  /// performs no rehash (bulk loaders call this before filling).
  void Reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) cap <<= 1;  // keep load factor under 3/4
    if (cap > slots_.size()) Rehash(cap);
  }

 private:
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  static constexpr size_t kMinCapacity = 16;

  size_t IndexOf(const K& key) const {
    if (size_ == 0) return kNpos;
    size_t i = Hash{}(key)&mask_;
    while (used_[i]) {
      if (slots_[i].key == key) return i;
      i = (i + 1) & mask_;
    }
    return kNpos;
  }

  void ReserveForInsert() {
    if (slots_.empty()) {
      Rehash(kMinCapacity);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(size_t new_cap) {
    std::vector<Slot> old_slots(new_cap);
    std::vector<uint8_t> old_used(new_cap, 0);
    old_slots.swap(slots_);
    old_used.swap(used_);
    mask_ = new_cap - 1;
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) continue;
      size_t j = Hash{}(old_slots[i].key) & mask_;
      while (used_[j]) j = (j + 1) & mask_;
      slots_[j] = std::move(old_slots[i]);
      used_[j] = 1;
    }
  }

  std::vector<Slot> slots_;
  std::vector<uint8_t> used_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace ecdb

#endif  // ECDB_COMMON_FLAT_MAP_H_
