#ifndef ECDB_COMMON_STATUS_H_
#define ECDB_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace ecdb {

/// Error taxonomy for operations across the platform. The set is small on
/// purpose: callers branch on a handful of recoverable conditions (e.g.
/// `kConflict` drives NO_WAIT aborts) and treat the rest as failures.
enum class Code : uint8_t {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kConflict,       // lock conflict; transaction must abort (NO_WAIT)
  kAborted,        // transaction aborted (by protocol or CC)
  kBlocked,        // commit protocol cannot make progress (2PC blocking)
  kTimedOut,
  kInvalidArgument,
  kIOError,
  kCorruption,
  kUnavailable,    // node crashed or unreachable
  kNotSupported,
  kInternal,
};

/// Result of an operation: a code plus an optional human-readable message.
/// Mirrors the RocksDB/Arrow `Status` idiom; functions that can fail return
/// `Status` (or `Result<T>`) instead of throwing.
class Status {
 public:
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status Conflict(std::string msg = "") {
    return Status(Code::kConflict, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status Blocked(std::string msg = "") {
    return Status(Code::kBlocked, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(Code::kTimedOut, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsConflict() const { return code_ == Code::kConflict; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsBlocked() const { return code_ == Code::kBlocked; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "Conflict: lock held by txn 7" or "OK".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// A value or an error. `Result<T>` is the return type of fallible functions
/// that produce a value; check `ok()` before calling `value()`.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {                 // NOLINT
    assert(!status_.ok() && "Result from Status requires an error");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace ecdb

#endif  // ECDB_COMMON_STATUS_H_
