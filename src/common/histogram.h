#ifndef ECDB_COMMON_HISTOGRAM_H_
#define ECDB_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ecdb {

/// Fixed-memory log-bucketed histogram for latency-style measurements.
/// Values are bucketed geometrically (each bucket is ~4% wider than the
/// previous), so percentile queries are O(buckets) with bounded relative
/// error regardless of sample count. Used for the paper's 99-percentile
/// transaction latency plots (Figure 11).
class Histogram {
 public:
  Histogram();

  /// Records one sample (e.g. a latency in microseconds).
  void Record(uint64_t value);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  /// Removes all samples.
  void Clear();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }

  /// Arithmetic mean of recorded samples (0 when empty).
  double Mean() const;

  /// Value at quantile `q` in [0, 1], e.g. 0.99 for p99. Returns the upper
  /// bound of the bucket containing the quantile; 0 when empty.
  uint64_t Percentile(double q) const;

 private:
  static size_t BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(size_t bucket);

  static constexpr size_t kNumBuckets = 512;

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

}  // namespace ecdb

#endif  // ECDB_COMMON_HISTOGRAM_H_
