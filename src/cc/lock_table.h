#ifndef ECDB_CC_LOCK_TABLE_H_
#define ECDB_CC_LOCK_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/flat_map.h"
#include "common/operation.h"
#include "common/types.h"
#include "sim/task.h"

namespace ecdb {

/// Lock compatibility: shared for reads, exclusive for writes.
enum class LockMode : uint8_t {
  kShared,
  kExclusive,
};

/// Outcome of a lock request.
enum class AcquireResult : uint8_t {
  kGranted,  // lock held; proceed
  kWaiting,  // queued (WAIT_DIE only); on_grant fires later
  kAbort,    // conflict; transaction must abort (NO_WAIT, or WAIT_DIE "die")
};

/// Deadlock-avoidance policy. The paper evaluates all protocols under
/// NO_WAIT ("a transaction requesting access to a locked record is
/// aborted"); WAIT_DIE is provided as an extension since ExpoDB supports
/// multiple concurrency control algorithms.
enum class CcPolicy : uint8_t {
  kNoWait,
  kWaitDie,
};

/// Per-partition record lock table. Tracks, for every locked (table, key),
/// the current holders and (under WAIT_DIE) a FIFO wait queue. Not thread
/// safe: access is serialized by the owning node, like the storage layer.
///
/// Both policies are deadlock-free by construction: NO_WAIT never waits and
/// WAIT_DIE only lets older transactions wait for younger holders, so the
/// waits-for graph cannot contain a cycle.
///
/// Hot-path layout: entries and the per-transaction held/waiting indices
/// live in open-addressing FlatMaps (no per-node allocation, no bucket
/// chains), grant callbacks are inline TaskFns (no std::function heap
/// spill), and ReleaseAll touches only the entries its transaction actually
/// holds or awaits — the waiting index replaces the previous
/// scan-every-entry queue cleanup.
class LockTable {
 public:
  /// Inline, move-only grant callback (WAIT_DIE). TaskFn's 104-byte buffer
  /// absorbs every capture the runtimes use, so queueing a waiter does not
  /// heap-allocate the way std::function did.
  using GrantCallback = TaskFn;

  explicit LockTable(CcPolicy policy) : policy_(policy) {
    entries_.Reserve(256);
    held_by_txn_.Reserve(64);
  }

  CcPolicy policy() const { return policy_; }

  /// Requests `mode` on (table, key) for `txn` whose priority timestamp is
  /// `ts` (smaller = older, only meaningful under WAIT_DIE). If the result
  /// is kWaiting, `on_grant` is invoked when the lock is eventually granted
  /// (possibly from inside another transaction's ReleaseAll).
  ///
  /// Re-acquiring a lock the transaction already holds is granted
  /// immediately; a shared->exclusive upgrade succeeds only when the
  /// transaction is the sole holder, and otherwise follows the policy.
  AcquireResult Acquire(TxnId txn, uint64_t ts, TableId table, Key key,
                        LockMode mode, GrantCallback on_grant = {});

  /// Releases every lock held or awaited by `txn`, granting queued
  /// compatible requests. Grant callbacks run inside this call.
  void ReleaseAll(TxnId txn);

  /// Number of locks currently held by `txn`.
  size_t HeldCount(TxnId txn) const;

  /// Number of (table, key) entries with at least one holder or waiter.
  size_t ActiveEntries() const { return entries_.size(); }

  /// Total times Acquire returned kAbort; feeds the abort-rate statistics.
  uint64_t conflict_aborts() const { return conflict_aborts_; }

 private:
  struct LockId {
    TableId table = 0;
    Key key = 0;
    bool operator==(const LockId&) const = default;
  };
  struct LockIdHash {
    size_t operator()(const LockId& id) const {
      uint64_t h = id.key * 0x9E3779B97f4A7C15ULL;
      h ^= static_cast<uint64_t>(id.table) << 17;
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };
  struct Holder {
    TxnId txn;
    LockMode mode;
    uint64_t ts;
  };
  struct Waiter {
    TxnId txn;
    LockMode mode;
    uint64_t ts;
    GrantCallback on_grant;
  };
  struct Entry {
    std::vector<Holder> holders;
    std::vector<Waiter> queue;  // FIFO; head at index 0
  };
  using LockIdList = std::vector<LockId>;

  static bool Compatible(LockMode held, LockMode requested) {
    return held == LockMode::kShared && requested == LockMode::kShared;
  }

  /// Grants queue heads that are now compatible with the holders.
  void PromoteWaiters(const LockId& id, Entry& entry,
                      std::vector<GrantCallback>& fired);

  /// Appends `id` to `txn`'s list in `index`, recycling pooled capacity.
  void AddToIndex(FlatMap<TxnId, LockIdList>& index, TxnId txn,
                  const LockId& id);

  /// Removes one occurrence of `id` from `txn`'s list in `index`.
  void RemoveFromIndex(FlatMap<TxnId, LockIdList>& index, TxnId txn,
                       const LockId& id);

  /// Moves `txn`'s list out of `index` (empty when absent) so the caller
  /// can iterate it safely while the index is mutated.
  LockIdList TakeList(FlatMap<TxnId, LockIdList>& index, TxnId txn);

  void RecycleList(LockIdList&& list) {
    list.clear();
    spare_lists_.push_back(std::move(list));
  }

  CcPolicy policy_;
  FlatMap<LockId, Entry, LockIdHash> entries_;
  FlatMap<TxnId, LockIdList> held_by_txn_;
  /// WAIT_DIE only: the entries on whose queue each transaction currently
  /// waits. Lets ReleaseAll remove queued requests without scanning every
  /// entry (under NO_WAIT it stays empty and the phase is skipped).
  FlatMap<TxnId, LockIdList> waiting_by_txn_;
  /// Recycled LockId lists: per-transaction index entries come and go with
  /// every attempt, so their heap buffers are pooled.
  std::vector<LockIdList> spare_lists_;
  uint64_t conflict_aborts_ = 0;
};

}  // namespace ecdb

#endif  // ECDB_CC_LOCK_TABLE_H_
