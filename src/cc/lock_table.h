#ifndef ECDB_CC_LOCK_TABLE_H_
#define ECDB_CC_LOCK_TABLE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/operation.h"
#include "common/types.h"

namespace ecdb {

/// Lock compatibility: shared for reads, exclusive for writes.
enum class LockMode : uint8_t {
  kShared,
  kExclusive,
};

/// Outcome of a lock request.
enum class AcquireResult : uint8_t {
  kGranted,  // lock held; proceed
  kWaiting,  // queued (WAIT_DIE only); on_grant fires later
  kAbort,    // conflict; transaction must abort (NO_WAIT, or WAIT_DIE "die")
};

/// Deadlock-avoidance policy. The paper evaluates all protocols under
/// NO_WAIT ("a transaction requesting access to a locked record is
/// aborted"); WAIT_DIE is provided as an extension since ExpoDB supports
/// multiple concurrency control algorithms.
enum class CcPolicy : uint8_t {
  kNoWait,
  kWaitDie,
};

/// Per-partition record lock table. Tracks, for every locked (table, key),
/// the current holders and (under WAIT_DIE) a FIFO wait queue. Not thread
/// safe: access is serialized by the owning node, like the storage layer.
///
/// Both policies are deadlock-free by construction: NO_WAIT never waits and
/// WAIT_DIE only lets older transactions wait for younger holders, so the
/// waits-for graph cannot contain a cycle.
class LockTable {
 public:
  using GrantCallback = std::function<void()>;

  explicit LockTable(CcPolicy policy) : policy_(policy) {}

  CcPolicy policy() const { return policy_; }

  /// Requests `mode` on (table, key) for `txn` whose priority timestamp is
  /// `ts` (smaller = older, only meaningful under WAIT_DIE). If the result
  /// is kWaiting, `on_grant` is invoked when the lock is eventually granted
  /// (possibly from inside another transaction's ReleaseAll).
  ///
  /// Re-acquiring a lock the transaction already holds is granted
  /// immediately; a shared->exclusive upgrade succeeds only when the
  /// transaction is the sole holder, and otherwise follows the policy.
  AcquireResult Acquire(TxnId txn, uint64_t ts, TableId table, Key key,
                        LockMode mode, GrantCallback on_grant = nullptr);

  /// Releases every lock held or awaited by `txn`, granting queued
  /// compatible requests. Grant callbacks run inside this call.
  void ReleaseAll(TxnId txn);

  /// Number of locks currently held by `txn`.
  size_t HeldCount(TxnId txn) const;

  /// Number of (table, key) entries with at least one holder or waiter.
  size_t ActiveEntries() const { return entries_.size(); }

  /// Total times Acquire returned kAbort; feeds the abort-rate statistics.
  uint64_t conflict_aborts() const { return conflict_aborts_; }

 private:
  struct LockId {
    TableId table;
    Key key;
    bool operator==(const LockId&) const = default;
  };
  struct LockIdHash {
    size_t operator()(const LockId& id) const {
      uint64_t h = id.key * 0x9E3779B97f4A7C15ULL;
      h ^= static_cast<uint64_t>(id.table) << 17;
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };
  struct Holder {
    TxnId txn;
    LockMode mode;
    uint64_t ts;
  };
  struct Waiter {
    TxnId txn;
    LockMode mode;
    uint64_t ts;
    GrantCallback on_grant;
  };
  struct Entry {
    std::vector<Holder> holders;
    std::deque<Waiter> queue;
  };

  static bool Compatible(LockMode held, LockMode requested) {
    return held == LockMode::kShared && requested == LockMode::kShared;
  }

  /// Grants queue heads that are now compatible with the holders.
  void PromoteWaiters(const LockId& id, Entry& entry,
                      std::vector<GrantCallback>& fired);

  CcPolicy policy_;
  std::unordered_map<LockId, Entry, LockIdHash> entries_;
  std::unordered_map<TxnId, std::vector<LockId>> held_by_txn_;
  uint64_t conflict_aborts_ = 0;
};

}  // namespace ecdb

#endif  // ECDB_CC_LOCK_TABLE_H_
