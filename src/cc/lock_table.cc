#include "cc/lock_table.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace ecdb {

AcquireResult LockTable::Acquire(TxnId txn, uint64_t ts, TableId table,
                                 Key key, LockMode mode,
                                 GrantCallback on_grant) {
  const LockId id{table, key};
  Entry& entry = entries_[id];

  // Already a holder?
  for (Holder& holder : entry.holders) {
    if (holder.txn != txn) continue;
    if (holder.mode == LockMode::kExclusive || mode == LockMode::kShared) {
      return AcquireResult::kGranted;  // no-op re-acquire
    }
    // Shared -> exclusive upgrade: only valid as the sole holder.
    if (entry.holders.size() == 1) {
      holder.mode = LockMode::kExclusive;
      return AcquireResult::kGranted;
    }
    // Upgrade conflicts with other shared holders; fall through to policy.
    break;
  }

  const bool compatible = std::all_of(
      entry.holders.begin(), entry.holders.end(), [&](const Holder& h) {
        return h.txn == txn || Compatible(h.mode, mode);
      });

  // A compatible request still queues behind existing waiters (fairness;
  // also prevents shared requests starving a queued exclusive).
  if (compatible && entry.queue.empty()) {
    entry.holders.push_back(Holder{txn, mode, ts});
    held_by_txn_[txn].push_back(id);
    return AcquireResult::kGranted;
  }

  if (policy_ == CcPolicy::kNoWait) {
    conflict_aborts_++;
    if (entries_[id].holders.empty() && entries_[id].queue.empty()) {
      entries_.erase(id);
    }
    return AcquireResult::kAbort;
  }

  // WAIT_DIE: wait only if older (smaller ts) than every conflicting
  // holder; otherwise die.
  for (const Holder& holder : entry.holders) {
    if (holder.txn == txn) continue;
    if (!Compatible(holder.mode, mode) && ts >= holder.ts) {
      conflict_aborts_++;
      return AcquireResult::kAbort;
    }
  }
  // FIFO queueing also makes us wait behind every queued waiter; a
  // young->old wait edge there would break the deadlock-freedom argument,
  // so the age test applies to the queue as well.
  for (const Waiter& waiter : entry.queue) {
    if (waiter.txn != txn && ts >= waiter.ts) {
      conflict_aborts_++;
      return AcquireResult::kAbort;
    }
  }
  entry.queue.push_back(Waiter{txn, mode, ts, std::move(on_grant)});
  return AcquireResult::kWaiting;
}

void LockTable::PromoteWaiters(const LockId& id, Entry& entry,
                               std::vector<GrantCallback>& fired) {
  while (!entry.queue.empty()) {
    Waiter& head = entry.queue.front();
    // The waiter's own holder entry (a queued shared->exclusive upgrade)
    // never conflicts with its own request.
    const bool compatible = std::all_of(
        entry.holders.begin(), entry.holders.end(), [&](const Holder& h) {
          return h.txn == head.txn || Compatible(h.mode, head.mode);
        });
    if (!compatible) break;
    auto self = std::find_if(
        entry.holders.begin(), entry.holders.end(),
        [&](const Holder& h) { return h.txn == head.txn; });
    if (self != entry.holders.end()) {
      // Upgrade in place; the id is already in held_by_txn_.
      if (head.mode == LockMode::kExclusive) {
        self->mode = LockMode::kExclusive;
      }
    } else {
      entry.holders.push_back(Holder{head.txn, head.mode, head.ts});
      held_by_txn_[head.txn].push_back(id);
    }
    if (head.on_grant) fired.push_back(std::move(head.on_grant));
    entry.queue.pop_front();
  }
}

void LockTable::ReleaseAll(TxnId txn) {
  std::vector<GrantCallback> fired;

  auto held_it = held_by_txn_.find(txn);
  if (held_it != held_by_txn_.end()) {
    for (const LockId& id : held_it->second) {
      auto entry_it = entries_.find(id);
      if (entry_it == entries_.end()) continue;
      Entry& entry = entry_it->second;
      entry.holders.erase(
          std::remove_if(entry.holders.begin(), entry.holders.end(),
                         [&](const Holder& h) { return h.txn == txn; }),
          entry.holders.end());
      PromoteWaiters(id, entry, fired);
      if (entry.holders.empty() && entry.queue.empty()) {
        entries_.erase(entry_it);
      }
    }
    held_by_txn_.erase(held_it);
  }

  // Remove any queued (still waiting) requests from this transaction, e.g.
  // when a waiting transaction is aborted by the protocol.
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& entry = it->second;
    const size_t before = entry.queue.size();
    entry.queue.erase(
        std::remove_if(entry.queue.begin(), entry.queue.end(),
                       [&](const Waiter& w) { return w.txn == txn; }),
        entry.queue.end());
    if (entry.queue.size() != before) {
      PromoteWaiters(it->first, entry, fired);
    }
    if (entry.holders.empty() && entry.queue.empty()) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }

  // Fire grant callbacks after the table is consistent.
  for (GrantCallback& cb : fired) cb();
}

size_t LockTable::HeldCount(TxnId txn) const {
  auto it = held_by_txn_.find(txn);
  return it == held_by_txn_.end() ? 0 : it->second.size();
}

}  // namespace ecdb
