#include "cc/lock_table.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace ecdb {

AcquireResult LockTable::Acquire(TxnId txn, uint64_t ts, TableId table,
                                 Key key, LockMode mode,
                                 GrantCallback on_grant) {
  const LockId id{table, key};
  Entry& entry = entries_[id];

  // Already a holder?
  for (Holder& holder : entry.holders) {
    if (holder.txn != txn) continue;
    if (holder.mode == LockMode::kExclusive || mode == LockMode::kShared) {
      return AcquireResult::kGranted;  // no-op re-acquire
    }
    // Shared -> exclusive upgrade: only valid as the sole holder.
    if (entry.holders.size() == 1) {
      holder.mode = LockMode::kExclusive;
      return AcquireResult::kGranted;
    }
    // Upgrade conflicts with other shared holders; fall through to policy.
    break;
  }

  const bool compatible = std::all_of(
      entry.holders.begin(), entry.holders.end(), [&](const Holder& h) {
        return h.txn == txn || Compatible(h.mode, mode);
      });

  // A compatible request still queues behind existing waiters (fairness;
  // also prevents shared requests starving a queued exclusive).
  if (compatible && entry.queue.empty()) {
    entry.holders.push_back(Holder{txn, mode, ts});
    AddToIndex(held_by_txn_, txn, id);
    return AcquireResult::kGranted;
  }

  if (policy_ == CcPolicy::kNoWait) {
    conflict_aborts_++;
    if (entry.holders.empty() && entry.queue.empty()) {
      entries_.Erase(id);  // freshly created by this request: drop it again
    }
    return AcquireResult::kAbort;
  }

  // WAIT_DIE: wait only if older (smaller ts) than every conflicting
  // holder; otherwise die.
  for (const Holder& holder : entry.holders) {
    if (holder.txn == txn) continue;
    if (!Compatible(holder.mode, mode) && ts >= holder.ts) {
      conflict_aborts_++;
      return AcquireResult::kAbort;
    }
  }
  // FIFO queueing also makes us wait behind every queued waiter; a
  // young->old wait edge there would break the deadlock-freedom argument,
  // so the age test applies to the queue as well.
  for (const Waiter& waiter : entry.queue) {
    if (waiter.txn != txn && ts >= waiter.ts) {
      conflict_aborts_++;
      return AcquireResult::kAbort;
    }
  }
  entry.queue.push_back(Waiter{txn, mode, ts, std::move(on_grant)});
  AddToIndex(waiting_by_txn_, txn, id);
  return AcquireResult::kWaiting;
}

void LockTable::PromoteWaiters(const LockId& id, Entry& entry,
                               std::vector<GrantCallback>& fired) {
  while (!entry.queue.empty()) {
    Waiter& head = entry.queue.front();
    // The waiter's own holder entry (a queued shared->exclusive upgrade)
    // never conflicts with its own request.
    const bool compatible = std::all_of(
        entry.holders.begin(), entry.holders.end(), [&](const Holder& h) {
          return h.txn == head.txn || Compatible(h.mode, head.mode);
        });
    if (!compatible) break;
    auto self = std::find_if(
        entry.holders.begin(), entry.holders.end(),
        [&](const Holder& h) { return h.txn == head.txn; });
    if (self != entry.holders.end()) {
      // Upgrade in place; the id is already in held_by_txn_.
      if (head.mode == LockMode::kExclusive) {
        self->mode = LockMode::kExclusive;
      }
    } else {
      entry.holders.push_back(Holder{head.txn, head.mode, head.ts});
      AddToIndex(held_by_txn_, head.txn, id);
    }
    RemoveFromIndex(waiting_by_txn_, head.txn, id);
    if (head.on_grant) fired.push_back(std::move(head.on_grant));
    entry.queue.erase(entry.queue.begin());
  }
}

void LockTable::AddToIndex(FlatMap<TxnId, LockIdList>& index, TxnId txn,
                           const LockId& id) {
  auto [list, inserted] = index.Emplace(txn, LockIdList());
  if (inserted && !spare_lists_.empty()) {
    *list = std::move(spare_lists_.back());
    spare_lists_.pop_back();
  }
  list->push_back(id);
}

void LockTable::RemoveFromIndex(FlatMap<TxnId, LockIdList>& index, TxnId txn,
                                const LockId& id) {
  LockIdList* list = index.Find(txn);
  if (list == nullptr) return;
  auto it = std::find(list->begin(), list->end(), id);
  if (it == list->end()) return;
  *it = list->back();
  list->pop_back();
  if (list->empty()) {
    RecycleList(std::move(*list));
    index.Erase(txn);
  }
}

LockTable::LockIdList LockTable::TakeList(FlatMap<TxnId, LockIdList>& index,
                                          TxnId txn) {
  LockIdList* list = index.Find(txn);
  if (list == nullptr) return {};
  LockIdList taken = std::move(*list);
  index.Erase(txn);
  return taken;
}

void LockTable::ReleaseAll(TxnId txn) {
  std::vector<GrantCallback> fired;

  // The lists are moved out before processing: PromoteWaiters re-enters the
  // indices (new holders, un-waited transactions) and may rehash them, so
  // no reference into a FlatMap survives across it.
  LockIdList held = TakeList(held_by_txn_, txn);
  for (const LockId& id : held) {
    Entry* entry = entries_.Find(id);
    if (entry == nullptr) continue;
    entry->holders.erase(
        std::remove_if(entry->holders.begin(), entry->holders.end(),
                       [&](const Holder& h) { return h.txn == txn; }),
        entry->holders.end());
    PromoteWaiters(id, *entry, fired);
    if (entry->holders.empty() && entry->queue.empty()) {
      entries_.Erase(id);
    }
  }
  if (!held.empty() || held.capacity() > 0) RecycleList(std::move(held));

  // Remove any queued (still waiting) requests from this transaction, e.g.
  // when a waiting transaction is aborted by the protocol. The waiting
  // index points straight at the affected entries; under NO_WAIT it is
  // always empty and this whole phase is skipped.
  if (policy_ == CcPolicy::kWaitDie) {
    LockIdList waited = TakeList(waiting_by_txn_, txn);
    for (const LockId& id : waited) {
      Entry* entry = entries_.Find(id);
      if (entry == nullptr) continue;
      const size_t before = entry->queue.size();
      entry->queue.erase(
          std::remove_if(entry->queue.begin(), entry->queue.end(),
                         [&](const Waiter& w) { return w.txn == txn; }),
          entry->queue.end());
      if (entry->queue.size() != before) {
        PromoteWaiters(id, *entry, fired);
      }
      if (entry->holders.empty() && entry->queue.empty()) {
        entries_.Erase(id);
      }
    }
    if (!waited.empty() || waited.capacity() > 0) {
      RecycleList(std::move(waited));
    }
  }

  // Fire grant callbacks after the table is consistent.
  for (GrantCallback& cb : fired) cb();
}

size_t LockTable::HeldCount(TxnId txn) const {
  const LockIdList* list = held_by_txn_.Find(txn);
  return list == nullptr ? 0 : list->size();
}

}  // namespace ecdb
