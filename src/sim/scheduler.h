#ifndef ECDB_SIM_SCHEDULER_H_
#define ECDB_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace ecdb {

/// Deterministic discrete-event scheduler: the heart of the simulated
/// cluster. Events fire in (time, insertion-order) order, so two runs with
/// the same seed replay identically. All simulated components (network
/// delivery, worker completions, protocol timeouts, client arrivals) are
/// events on one scheduler.
class Scheduler {
 public:
  using TaskId = uint64_t;
  using Task = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time in microseconds.
  Micros Now() const { return now_; }

  /// Schedules `task` to run at absolute simulated time `when` (clamped to
  /// now). Returns an id usable with `Cancel`.
  TaskId ScheduleAt(Micros when, Task task);

  /// Schedules `task` to run `delay` microseconds from now.
  TaskId ScheduleAfter(Micros delay, Task task);

  /// Cancels a pending task. Returns false if it already ran or was
  /// cancelled before.
  bool Cancel(TaskId id);

  /// Runs the next pending event, advancing the clock to its timestamp.
  /// Returns false if no events remain.
  bool RunOne();

  /// Runs all events with timestamp <= `until`, then advances the clock to
  /// `until`. Returns the number of events executed.
  size_t RunUntil(Micros until);

  /// Runs events until the queue drains or `max_events` executed.
  /// Returns the number of events executed.
  size_t RunAll(size_t max_events = SIZE_MAX);

  /// True when no runnable events remain.
  bool Empty() const { return tasks_.empty(); }

  /// Number of pending (non-cancelled) events.
  size_t PendingCount() const { return tasks_.size(); }

 private:
  struct Entry {
    Micros when;
    TaskId id;
    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;  // FIFO among same-time events
    }
  };

  Micros now_ = 0;
  TaskId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  std::unordered_map<TaskId, Task> tasks_;
};

}  // namespace ecdb

#endif  // ECDB_SIM_SCHEDULER_H_
