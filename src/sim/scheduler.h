#ifndef ECDB_SIM_SCHEDULER_H_
#define ECDB_SIM_SCHEDULER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/task.h"

namespace ecdb {

/// Deterministic discrete-event scheduler: the heart of the simulated
/// cluster. Events fire in (time, insertion-order) order, so two runs with
/// the same seed replay identically. All simulated components (network
/// delivery, worker completions, protocol timeouts, client arrivals) are
/// events on one scheduler.
///
/// Implementation notes (this is the hottest structure in the repo — every
/// simulated message and timer passes through it twice):
///
///  * The priority queue is a hand-rolled 4-ary heap of 24-byte POD
///    entries; sift operations are plain copies, and the four children of
///    a node share at most two cache lines.
///  * Tasks live inline in generation-counted slots (an append-grown array
///    recycled through a free list), so scheduling an event performs no
///    hashing, no rehash, and — for callables that fit TaskFn's inline
///    buffer — no allocation. This replaces the previous
///    priority_queue + unordered_map<TaskId, std::function> design, which
///    paid a node allocation and a hash insert/erase per event.
///  * `ScheduleAt` is a template so the callable is constructed directly in
///    its slot; the hot path lives in this header to inline into callers.
///  * `Cancel` is O(1): bumping the slot's generation invalidates the heap
///    entry in place (it is skipped lazily at pop time) and destroys the
///    captured state eagerly, matching the old map-erase semantics.
class Scheduler {
 public:
  using TaskId = uint64_t;
  using Task = TaskFn;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time in microseconds.
  Micros Now() const { return now_; }

  /// Schedules `task` to run at absolute simulated time `when` (clamped to
  /// now). Returns an id usable with `Cancel`; ids are never zero.
  template <typename F>
  TaskId ScheduleAt(Micros when, F&& task) {
    if (when < now_) when = now_;
    uint32_t slot;
    if (free_slots_.empty()) {
      slot = static_cast<uint32_t>(slots_.size());
      slots_.emplace_back();
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
    }
    Slot& s = slots_[slot];
    s.task = std::forward<F>(task);  // constructs in place (TaskFn assign)
    const TaskId id = (static_cast<TaskId>(slot) << 32) | s.gen;
    heap_.push_back(Entry{when, next_seq_++, id});
    SiftUp(heap_.size() - 1);
    ++live_count_;
    return id;
  }

  /// Schedules `task` to run `delay` microseconds from now.
  template <typename F>
  TaskId ScheduleAfter(Micros delay, F&& task) {
    return ScheduleAt(now_ + delay, std::forward<F>(task));
  }

  /// Cancels a pending task. Returns false if it already ran or was
  /// cancelled before.
  bool Cancel(TaskId id) {
    const uint32_t slot = SlotOf(id);
    if (slot >= slots_.size() || slots_[slot].gen != GenOf(id)) {
      return false;  // already ran, already cancelled, or never issued
    }
    // Lazy cancellation: the heap entry stays (skipped at pop time via the
    // generation check) but the task is destroyed now, so captured
    // resources are released immediately. Keeps Cancel O(1).
    slots_[slot].task = Task();
    RetireSlot(slot);
    --live_count_;
    return true;
  }

  /// Installs a hook invoked between events: at the entry of every run
  /// call (so work produced outside any event is folded in before the
  /// scheduler decides what is next or whether it is idle) and after each
  /// executed event. The transport coalescing layer uses this to flush
  /// per-destination send buffers at step boundaries; the hook may
  /// schedule new events. A raw function pointer keeps the idle cost of
  /// the feature to one null check per step.
  void SetPostStepHook(void (*hook)(void*), void* ctx) {
    post_step_hook_ = hook;
    post_step_ctx_ = ctx;
  }

  /// Runs the next pending event, advancing the clock to its timestamp.
  /// Returns false if no events remain.
  bool RunOne() {
    if (post_step_hook_ != nullptr) post_step_hook_(post_step_ctx_);
    if (PeekLive() == nullptr) return false;
    RunHead();
    if (post_step_hook_ != nullptr) post_step_hook_(post_step_ctx_);
    return true;
  }

  /// Runs all events with timestamp <= `until`, then advances the clock to
  /// `until`. Returns the number of events executed.
  size_t RunUntil(Micros until);

  /// Runs events until the queue drains or `max_events` executed.
  /// Returns the number of events executed.
  size_t RunAll(size_t max_events = SIZE_MAX);

  /// True when no runnable events remain.
  bool Empty() const { return live_count_ == 0; }

  /// Number of pending (non-cancelled) events.
  size_t PendingCount() const { return live_count_; }

 private:
  /// Heap entry: trivially copyable so sifts are raw 24-byte moves. `seq`
  /// is a global insertion counter giving FIFO order among same-time
  /// events; `id` packs (slot << 32) | generation.
  struct Entry {
    Micros when;
    uint64_t seq;
    TaskId id;
  };

  /// Task storage. The generation is bumped whenever the slot's task runs
  /// or is cancelled, so stale heap entries (and stale TaskIds held by
  /// callers) are recognized in O(1) without a lookup table.
  struct Slot {
    uint32_t gen = 1;  // never 0: TaskId 0 stays an "unset" sentinel
    Task task;
  };

  static bool Earlier(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;  // FIFO among same-time events
  }

  static uint32_t SlotOf(TaskId id) { return static_cast<uint32_t>(id >> 32); }
  static uint32_t GenOf(TaskId id) { return static_cast<uint32_t>(id); }

  /// The single cancelled-entry skip point: pops stale heads until the top
  /// of the heap is a live event (or the heap drains). Every pop path —
  /// RunOne, RunUntil, RunAll — funnels through here.
  const Entry* PeekLive() {
    while (!heap_.empty()) {
      const Entry& head = heap_[0];
      if (slots_[SlotOf(head.id)].gen == GenOf(head.id)) return &head;
      PopHeap();  // stale: cancelled (or slot since recycled)
    }
    return nullptr;
  }

  /// Pops the (live) head, retires its slot, and runs its task.
  /// ConsumeInvoke moves the capture to the callee's frame and empties the
  /// slot before user code runs, so slot storage may grow (the task may
  /// schedule more events) and the slot may be recycled while it executes;
  /// cancelling the running task's own id during execution fails, exactly
  /// as with the old erase-then-invoke sequence.
  void RunHead() {
    const Entry head = heap_[0];
    const uint32_t slot = SlotOf(head.id);
    now_ = head.when;
    RetireSlot(slot);
    --live_count_;
    PopHeap();
    slots_[slot].task.ConsumeInvoke();
  }

  /// Removes heap_[0], restoring the heap property.
  void PopHeap() {
    const size_t last = heap_.size() - 1;
    if (last > 0) {
      heap_[0] = heap_[last];
      heap_.pop_back();
      SiftDown(0);
    } else {
      heap_.pop_back();
    }
  }

  /// Returns a slot (whose task must already be empty) to the free list,
  /// bumping the generation so outstanding ids/entries for it go stale.
  void RetireSlot(uint32_t slot) {
    Slot& s = slots_[slot];
    if (++s.gen == 0) s.gen = 1;
    free_slots_.push_back(slot);
  }

  void SiftUp(size_t i) {
    const Entry e = heap_[i];
    while (i > 0) {
      const size_t parent = (i - 1) >> 2;
      if (!Earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void SiftDown(size_t i) {
    const size_t n = heap_.size();
    const Entry e = heap_[i];
    for (;;) {
      const size_t first = 4 * i + 1;
      if (first >= n) break;
      size_t best = first;
      const size_t limit = first + 4 < n ? first + 4 : n;
      for (size_t c = first + 1; c < limit; ++c) {
        if (Earlier(heap_[c], heap_[best])) best = c;
      }
      if (!Earlier(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  void (*post_step_hook_)(void*) = nullptr;
  void* post_step_ctx_ = nullptr;

  Micros now_ = 0;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
};

}  // namespace ecdb

#endif  // ECDB_SIM_SCHEDULER_H_
