#ifndef ECDB_SIM_SCHEDULER_H_
#define ECDB_SIM_SCHEDULER_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/task.h"

namespace ecdb {

/// Event-queue implementation behind the Scheduler. Both back ends honor
/// the same contract — events fire in exact (time, insertion-order) order —
/// so a run is bit-identical under either; they differ only in complexity:
///
///  * kHeap: hand-rolled 4-ary heap, O(log n) per event with a very small
///    constant. Best at the scale the protocol tests and small clusters
///    run at, and the default.
///  * kTimerWheel: hierarchical timer wheel (6 levels x 64 slots), O(1)
///    amortized schedule/dispatch. At 10^4 nodes a single broadcast step
///    keeps millions of events pending; the heap's log factor (and its
///    sift traffic) dominates there, the wheel does not.
enum class SchedulerBackend : uint8_t {
  kHeap,
  kTimerWheel,
};

/// Deterministic discrete-event scheduler: the heart of the simulated
/// cluster. Events fire in (time, insertion-order) order, so two runs with
/// the same seed replay identically. All simulated components (network
/// delivery, worker completions, protocol timeouts, client arrivals) are
/// events on one scheduler.
///
/// Implementation notes (this is the hottest structure in the repo — every
/// simulated message and timer passes through it twice):
///
///  * The default priority queue is a hand-rolled 4-ary heap of 24-byte
///    POD entries; sift operations are plain copies, and the four children
///    of a node share at most two cache lines. A hierarchical timer-wheel
///    backend (see SchedulerBackend) can be selected for very large
///    simulations; it preserves the exact event order.
///  * Tasks live inline in generation-counted slots (an append-grown array
///    recycled through a free list), so scheduling an event performs no
///    hashing, no rehash, and — for callables that fit TaskFn's inline
///    buffer — no allocation. This replaces the previous
///    priority_queue + unordered_map<TaskId, std::function> design, which
///    paid a node allocation and a hash insert/erase per event.
///  * `ScheduleAt` is a template so the callable is constructed directly in
///    its slot; the hot path lives in this header to inline into callers.
///  * `Cancel` is O(1): bumping the slot's generation invalidates the queue
///    entry in place (it is skipped lazily at pop time) and destroys the
///    captured state eagerly, matching the old map-erase semantics.
class Scheduler {
 public:
  using TaskId = uint64_t;
  using Task = TaskFn;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time in microseconds.
  Micros Now() const { return now_; }

  /// Selects the event-queue backend. Only legal while no events are
  /// pending (typically right after construction): the two structures do
  /// not share entries, so switching mid-run would strand events.
  void SetBackend(SchedulerBackend backend);
  SchedulerBackend backend() const { return backend_; }

  /// Schedules `task` to run at absolute simulated time `when` (clamped to
  /// now). Returns an id usable with `Cancel`; ids are never zero.
  template <typename F>
  TaskId ScheduleAt(Micros when, F&& task) {
    if (when < now_) when = now_;
    uint32_t slot;
    if (free_slots_.empty()) {
      slot = static_cast<uint32_t>(slots_.size());
      slots_.emplace_back();
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
    }
    Slot& s = slots_[slot];
    s.task = std::forward<F>(task);  // constructs in place (TaskFn assign)
    const TaskId id = (static_cast<TaskId>(slot) << 32) | s.gen;
    const Entry e{when, next_seq_++, id};
    if (backend_ == SchedulerBackend::kHeap) {
      heap_.push_back(e);
      SiftUp(heap_.size() - 1);
    } else {
      WheelInsert(e);
    }
    ++live_count_;
    return id;
  }

  /// Schedules `task` to run `delay` microseconds from now.
  template <typename F>
  TaskId ScheduleAfter(Micros delay, F&& task) {
    return ScheduleAt(now_ + delay, std::forward<F>(task));
  }

  /// Cancels a pending task. Returns false if it already ran or was
  /// cancelled before.
  bool Cancel(TaskId id) {
    const uint32_t slot = SlotOf(id);
    if (slot >= slots_.size() || slots_[slot].gen != GenOf(id)) {
      return false;  // already ran, already cancelled, or never issued
    }
    // Lazy cancellation: the queue entry stays (skipped at pop time via the
    // generation check) but the task is destroyed now, so captured
    // resources are released immediately. Keeps Cancel O(1).
    slots_[slot].task = Task();
    RetireSlot(slot);
    --live_count_;
    return true;
  }

  /// Installs a hook invoked between events: at the entry of every run
  /// call (so work produced outside any event is folded in before the
  /// scheduler decides what is next or whether it is idle) and after each
  /// executed event. The transport coalescing layer uses this to flush
  /// per-destination send buffers at step boundaries; the hook may
  /// schedule new events. A raw function pointer keeps the idle cost of
  /// the feature to one null check per step.
  void SetPostStepHook(void (*hook)(void*), void* ctx) {
    post_step_hook_ = hook;
    post_step_ctx_ = ctx;
  }

  /// Runs the next pending event, advancing the clock to its timestamp.
  /// Returns false if no events remain.
  bool RunOne() {
    if (post_step_hook_ != nullptr) post_step_hook_(post_step_ctx_);
    if (PeekLive() == nullptr) return false;
    RunHead();
    if (post_step_hook_ != nullptr) post_step_hook_(post_step_ctx_);
    return true;
  }

  /// Runs all events with timestamp <= `until`, then advances the clock to
  /// `until`. Returns the number of events executed.
  size_t RunUntil(Micros until);

  /// Runs events until the queue drains or `max_events` executed.
  /// Returns the number of events executed.
  size_t RunAll(size_t max_events = SIZE_MAX);

  /// True when no runnable events remain.
  bool Empty() const { return live_count_ == 0; }

  /// Number of pending (non-cancelled) events.
  size_t PendingCount() const { return live_count_; }

 private:
  /// Queue entry: trivially copyable so moves are raw 24-byte copies. `seq`
  /// is a global insertion counter giving FIFO order among same-time
  /// events; `id` packs (slot << 32) | generation.
  struct Entry {
    Micros when;
    uint64_t seq;
    TaskId id;
  };

  /// Task storage. The generation is bumped whenever the slot's task runs
  /// or is cancelled, so stale queue entries (and stale TaskIds held by
  /// callers) are recognized in O(1) without a lookup table.
  struct Slot {
    uint32_t gen = 1;  // never 0: TaskId 0 stays an "unset" sentinel
    Task task;
  };

  // Timer-wheel geometry: 6 levels x 64 slots covers 2^36 us (~19 hours of
  // simulated time) from the anchor before the overflow list engages.
  static constexpr size_t kWheelLevels = 6;
  static constexpr unsigned kSlotBits = 6;
  static constexpr size_t kSlotsPerLevel = size_t{1} << kSlotBits;
  static constexpr uint64_t kSlotMask = kSlotsPerLevel - 1;

  static bool Earlier(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;  // FIFO among same-time events
  }

  static uint32_t SlotOf(TaskId id) { return static_cast<uint32_t>(id >> 32); }
  static uint32_t GenOf(TaskId id) { return static_cast<uint32_t>(id); }

  bool LiveEntry(const Entry& e) const {
    return slots_[SlotOf(e.id)].gen == GenOf(e.id);
  }

  /// The single cancelled-entry skip point: discards stale entries until
  /// the next pending event is live (or the queue drains). Every pop path —
  /// RunOne, RunUntil, RunAll — funnels through here.
  const Entry* PeekLive() {
    if (backend_ == SchedulerBackend::kHeap) {
      while (!heap_.empty()) {
        const Entry& head = heap_[0];
        if (LiveEntry(head)) return &head;
        PopHeap();  // stale: cancelled (or slot since recycled)
      }
      return nullptr;
    }
    return PeekLiveWheel();
  }

  /// Pops the (live) head, retires its slot, and runs its task.
  /// ConsumeInvoke moves the capture to the callee's frame and empties the
  /// slot before user code runs, so slot storage may grow (the task may
  /// schedule more events) and the slot may be recycled while it executes;
  /// cancelling the running task's own id during execution fails, exactly
  /// as with the old erase-then-invoke sequence.
  void RunHead() {
    Entry head;
    if (backend_ == SchedulerBackend::kHeap) {
      head = heap_[0];
      PopHeap();
    } else {
      head = staged_[staged_pos_++];
    }
    const uint32_t slot = SlotOf(head.id);
    now_ = head.when;
    RetireSlot(slot);
    --live_count_;
    slots_[slot].task.ConsumeInvoke();
  }

  /// Removes heap_[0], restoring the heap property.
  void PopHeap() {
    const size_t last = heap_.size() - 1;
    if (last > 0) {
      heap_[0] = heap_[last];
      heap_.pop_back();
      SiftDown(0);
    } else {
      heap_.pop_back();
    }
  }

  /// Returns a slot (whose task must already be empty) to the free list,
  /// bumping the generation so outstanding ids/entries for it go stale.
  void RetireSlot(uint32_t slot) {
    Slot& s = slots_[slot];
    if (++s.gen == 0) s.gen = 1;
    free_slots_.push_back(slot);
  }

  void SiftUp(size_t i) {
    const Entry e = heap_[i];
    while (i > 0) {
      const size_t parent = (i - 1) >> 2;
      if (!Earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void SiftDown(size_t i) {
    const size_t n = heap_.size();
    const Entry e = heap_[i];
    for (;;) {
      const size_t first = 4 * i + 1;
      if (first >= n) break;
      size_t best = first;
      const size_t limit = first + 4 < n ? first + 4 : n;
      for (size_t c = first + 1; c < limit; ++c) {
        if (Earlier(heap_[c], heap_[best])) best = c;
      }
      if (!Earlier(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  // --- Timer-wheel backend (see scheduler.cc for the ordering argument) ---
  void WheelInsert(const Entry& e);
  void WheelRoute(const Entry& e);
  const Entry* PeekLiveWheel();
  bool StageNext();
  bool RebaseOverflow();
  void RewindTo(Micros t);

  void (*post_step_hook_)(void*) = nullptr;
  void* post_step_ctx_ = nullptr;

  SchedulerBackend backend_ = SchedulerBackend::kHeap;
  Micros now_ = 0;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;

  // Wheel state. `wheel_cur_` is the routing anchor: every entry in level
  // `l` agrees with it on all bits above the level's window, every entry in
  // `overflow_` disagrees with it in the top window. `staged_` holds the
  // earliest level-0 bucket (one distinct timestamp), sorted by seq;
  // entries are consumed through `staged_pos_`.
  Micros wheel_cur_ = 0;
  std::array<uint64_t, kWheelLevels> occupied_{};
  std::array<std::array<std::vector<Entry>, kSlotsPerLevel>, kWheelLevels>
      wheel_;
  std::vector<Entry> overflow_;
  std::vector<Entry> staged_;
  size_t staged_pos_ = 0;
  std::vector<Entry> wheel_scratch_;
};

}  // namespace ecdb

#endif  // ECDB_SIM_SCHEDULER_H_
