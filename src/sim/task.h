#ifndef ECDB_SIM_TASK_H_
#define ECDB_SIM_TASK_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace ecdb {

/// Move-only callable with a large inline buffer, built for the scheduler's
/// hot path. Differences from std::function<void()>:
///
///  * 104-byte small-buffer capacity — std::function spills to the heap at
///    16 bytes, which made every event that captures a Message or an undo
///    list a heap allocation;
///  * move-only, so captured state (shared payloads, undo records) is
///    moved between buffers, never copied;
///  * trivially-copyable captures (the common `[this, txn, epoch]` timer
///    shape) relocate via a constant-size memcpy with no dispatch beyond
///    one indirect call.
///
/// Callables larger than the buffer fall back to a single heap allocation;
/// the stored pointer then relocates as a trivial 8-byte copy.
class TaskFn {
 public:
  static constexpr size_t kInlineBytes = 104;

  TaskFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, TaskFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  TaskFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  TaskFn(TaskFn&& other) noexcept { MoveFrom(other); }

  TaskFn& operator=(TaskFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  TaskFn(const TaskFn&) = delete;
  TaskFn& operator=(const TaskFn&) = delete;

  /// Assign a new callable, constructing it directly in the buffer. This is
  /// the scheduler's storage path: no temporary TaskFn, no relocation.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, TaskFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  TaskFn& operator=(F&& f) {
    using D = std::decay_t<F>;
    Reset();
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
    return *this;
  }

  ~TaskFn() { Reset(); }

  void operator()() { ops_->invoke(buf_); }

  /// Runs the callable exactly once and leaves this TaskFn empty, in one
  /// indirect call (versus three for move-out + invoke + destroy). The
  /// capture is moved to the callee's frame and this object is already
  /// empty before user code runs, so the invoked task may freely overwrite
  /// or relocate the storage this TaskFn lives in (the scheduler recycles
  /// slots this way).
  void ConsumeInvoke() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->consume(buf_);
  }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-constructs the callable into `dst` and destroys it in `src`.
    void (*relocate)(void* dst, void* src);
    /// nullptr when the stored callable is trivially destructible.
    void (*destroy)(void* self);
    /// Moves the callable out of `src`, destroys the source, then invokes
    /// the moved copy. `src` is dead before the callable runs.
    void (*consume)(void* src);
  };

  template <typename D>
  static D* As(void* p) {
    return std::launder(reinterpret_cast<D*>(p));
  }

  template <typename D>
  static void InvokeInline(void* self) {
    (*As<D>(self))();
  }

  template <typename D>
  static void RelocateInline(void* dst, void* src) {
    if constexpr (std::is_trivially_copyable_v<D>) {
      std::memcpy(dst, src, sizeof(D));
    } else {
      ::new (dst) D(std::move(*As<D>(src)));
      As<D>(src)->~D();
    }
  }

  template <typename D>
  static void DestroyInline(void* self) {
    As<D>(self)->~D();
  }

  template <typename D>
  static void ConsumeInline(void* src) {
    if constexpr (std::is_trivially_copyable_v<D> &&
                  std::is_trivially_destructible_v<D>) {
      alignas(D) unsigned char local[sizeof(D)];
      std::memcpy(local, src, sizeof(D));
      (*As<D>(local))();
    } else {
      D local(std::move(*As<D>(src)));
      As<D>(src)->~D();
      local();
    }
  }

  template <typename D>
  static void InvokeHeap(void* self) {
    (**As<D*>(self))();
  }

  static void RelocatePointer(void* dst, void* src) {
    std::memcpy(dst, src, sizeof(void*));
  }

  template <typename D>
  static void DestroyHeap(void* self) {
    delete *As<D*>(self);
  }

  template <typename D>
  static void ConsumeHeap(void* src) {
    D* p = *As<D*>(src);
    (*p)();
    delete p;
  }

  template <typename D>
  static constexpr Ops kInlineOps{
      &InvokeInline<D>, &RelocateInline<D>,
      std::is_trivially_destructible_v<D> ? nullptr : &DestroyInline<D>,
      &ConsumeInline<D>};

  template <typename D>
  static constexpr Ops kHeapOps{&InvokeHeap<D>, &RelocatePointer,
                                &DestroyHeap<D>, &ConsumeHeap<D>};

  void MoveFrom(TaskFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr && ops_->destroy != nullptr) ops_->destroy(buf_);
    ops_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace ecdb

#endif  // ECDB_SIM_TASK_H_
