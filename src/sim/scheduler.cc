#include "sim/scheduler.h"

#include <utility>

namespace ecdb {

Scheduler::TaskId Scheduler::ScheduleAt(Micros when, Task task) {
  if (when < now_) when = now_;
  const TaskId id = next_id_++;
  queue_.push(Entry{when, id});
  tasks_.emplace(id, std::move(task));
  return id;
}

Scheduler::TaskId Scheduler::ScheduleAfter(Micros delay, Task task) {
  return ScheduleAt(now_ + delay, std::move(task));
}

bool Scheduler::Cancel(TaskId id) {
  // Lazy cancellation: the queue entry stays but the task is removed, so
  // RunOne skips it. This keeps Cancel O(1).
  return tasks_.erase(id) > 0;
}

bool Scheduler::RunOne() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    auto it = tasks_.find(entry.id);
    if (it == tasks_.end()) continue;  // cancelled
    Task task = std::move(it->second);
    tasks_.erase(it);
    now_ = entry.when;
    task();
    return true;
  }
  return false;
}

size_t Scheduler::RunUntil(Micros until) {
  size_t executed = 0;
  while (!queue_.empty()) {
    // Skip cancelled heads so the peeked timestamp is a live event.
    const Entry entry = queue_.top();
    if (tasks_.find(entry.id) == tasks_.end()) {
      queue_.pop();
      continue;
    }
    if (entry.when > until) break;
    RunOne();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

size_t Scheduler::RunAll(size_t max_events) {
  size_t executed = 0;
  while (executed < max_events && RunOne()) ++executed;
  return executed;
}

}  // namespace ecdb
