#include "sim/scheduler.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace ecdb {

size_t Scheduler::RunUntil(Micros until) {
  size_t executed = 0;
  if (post_step_hook_ != nullptr) post_step_hook_(post_step_ctx_);
  const Entry* head;
  while ((head = PeekLive()) != nullptr && head->when <= until) {
    RunHead();
    ++executed;
    if (post_step_hook_ != nullptr) post_step_hook_(post_step_ctx_);
  }
  if (now_ < until) now_ = until;
  return executed;
}

size_t Scheduler::RunAll(size_t max_events) {
  size_t executed = 0;
  if (post_step_hook_ != nullptr) post_step_hook_(post_step_ctx_);
  while (executed < max_events && PeekLive() != nullptr) {
    RunHead();
    ++executed;
    if (post_step_hook_ != nullptr) post_step_hook_(post_step_ctx_);
  }
  return executed;
}

void Scheduler::SetBackend(SchedulerBackend backend) {
  ECDB_CHECK(live_count_ == 0);  // switching would strand pending events
  backend_ = backend;
  // Drop any stale (cancelled) entries the old backend still holds.
  heap_.clear();
  staged_.clear();
  staged_pos_ = 0;
  overflow_.clear();
  for (auto& level : wheel_) {
    for (auto& bucket : level) bucket.clear();
  }
  occupied_.fill(0);
  wheel_cur_ = now_;
}

// ---------------------------------------------------------------------------
// Timer-wheel backend.
//
// Ordering argument. The anchor `wheel_cur_` never exceeds the timestamp of
// any entry in the wheel, and it advances only inside StageNext — always to
// the minimum pending timestamp. An entry routes to the first level whose
// *parent* window (the bits above the level's 6-bit slot field) matches the
// anchor's; entries beyond the top window go to `overflow_`. Two facts
// follow:
//
//  1. Within a level, a lower slot index means an earlier timestamp (the
//     slot field is a bit field of the timestamp and the higher bits are
//     pinned to the anchor's), so `countr_zero` of the occupancy bitmap
//     finds the earliest bucket.
//  2. Any entry at level l+1 disagrees with the anchor in bit field l —
//     otherwise the anchor entered the entry's level-l window, which only
//     happens by staging/cascading the entry's own bucket first. Hence
//     every entry at a higher level is strictly later than every entry the
//     lowest occupied level can hold, and scanning levels bottom-up is
//     globally earliest-first. The same argument puts every overflow entry
//     after every wheel entry.
//
// A level-0 bucket therefore holds exactly one distinct timestamp (slot
// field == all remaining bits). Staging sorts it by insertion seq — a
// cascade can append entries out of seq order — which restores the exact
// (when, seq) total order the heap produces. Inserts that land on the
// staged timestamp append to the staged bucket (seq is globally monotonic,
// so sortedness is preserved); inserts *earlier* than the anchor — possible
// when RunUntil stopped the clock short of an already-staged bucket — rebase
// the whole wheel via RewindTo.
// ---------------------------------------------------------------------------

void Scheduler::WheelInsert(const Entry& e) {
  if (staged_pos_ < staged_.size()) {
    const Micros staged_when = staged_[staged_pos_].when;
    if (e.when == staged_when) {
      staged_.push_back(e);
      return;
    }
    if (e.when < staged_when) RewindTo(e.when);
  } else if (e.when < wheel_cur_) {
    RewindTo(e.when);
  }
  WheelRoute(e);
}

void Scheduler::WheelRoute(const Entry& e) {
  for (size_t level = 0; level < kWheelLevels; ++level) {
    const unsigned parent_shift = kSlotBits * static_cast<unsigned>(level + 1);
    if ((e.when >> parent_shift) == (wheel_cur_ >> parent_shift)) {
      const size_t slot =
          (e.when >> (kSlotBits * static_cast<unsigned>(level))) & kSlotMask;
      wheel_[level][slot].push_back(e);
      occupied_[level] |= uint64_t{1} << slot;
      return;
    }
  }
  overflow_.push_back(e);
}

const Scheduler::Entry* Scheduler::PeekLiveWheel() {
  for (;;) {
    while (staged_pos_ < staged_.size()) {
      const Entry& e = staged_[staged_pos_];
      if (LiveEntry(e)) return &e;
      ++staged_pos_;  // cancelled: skip lazily, slot already retired
    }
    staged_.clear();
    staged_pos_ = 0;
    if (!StageNext()) return nullptr;
  }
}

bool Scheduler::StageNext() {
  for (;;) {
    size_t level = 0;
    while (level < kWheelLevels && occupied_[level] == 0) ++level;
    if (level == kWheelLevels) {
      if (!RebaseOverflow()) return false;
      continue;
    }
    const size_t slot = static_cast<size_t>(std::countr_zero(occupied_[level]));
    std::vector<Entry>& bucket = wheel_[level][slot];
    occupied_[level] &= ~(uint64_t{1} << slot);
    if (level == 0) {
      // One distinct timestamp per level-0 bucket; sort by seq to restore
      // insertion order (cascades append out of seq order).
      staged_.swap(bucket);  // bucket keeps staged_'s old capacity
      staged_pos_ = 0;
      wheel_cur_ = staged_.front().when;
      std::sort(staged_.begin(), staged_.end(),
                [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
      return true;
    }
    // Cascade: advance the anchor to the bucket's earliest live timestamp
    // and re-route. The minimum lands in level 0; every other entry agrees
    // with the new anchor through bit field `level`, so it routes strictly
    // lower — the loop terminates.
    wheel_scratch_.swap(bucket);
    size_t live = 0;
    for (const Entry& e : wheel_scratch_) {
      if (LiveEntry(e)) wheel_scratch_[live++] = e;
    }
    wheel_scratch_.resize(live);
    if (!wheel_scratch_.empty()) {
      Micros min_when = wheel_scratch_[0].when;
      for (const Entry& e : wheel_scratch_) {
        min_when = std::min(min_when, e.when);
      }
      wheel_cur_ = min_when;
      for (const Entry& e : wheel_scratch_) WheelRoute(e);
    }
    wheel_scratch_.clear();
  }
}

bool Scheduler::RebaseOverflow() {
  size_t live = 0;
  for (const Entry& e : overflow_) {
    if (LiveEntry(e)) overflow_[live++] = e;
  }
  overflow_.resize(live);
  if (overflow_.empty()) return false;
  Micros min_when = overflow_[0].when;
  for (const Entry& e : overflow_) min_when = std::min(min_when, e.when);
  wheel_cur_ = min_when;
  // Migrate entries whose top window now matches the anchor; WheelRoute
  // cannot push back into overflow_ for those, so in-place compaction is
  // safe.
  constexpr unsigned kTopShift = kSlotBits * kWheelLevels;
  size_t keep = 0;
  for (size_t i = 0; i < overflow_.size(); ++i) {
    const Entry e = overflow_[i];
    if ((e.when >> kTopShift) == (wheel_cur_ >> kTopShift)) {
      WheelRoute(e);
    } else {
      overflow_[keep++] = e;
    }
  }
  overflow_.resize(keep);
  return true;
}

void Scheduler::RewindTo(Micros t) {
  // Full rebase: gather everything in the wheel (plus the unconsumed tail
  // of the staged bucket), reset the anchor, and re-route. O(pending), but
  // only reachable between run calls (an insert earlier than an already-
  // staged bucket), never from the event loop itself. Overflow entries
  // stay put: their top window mismatched an anchor >= t, so it still
  // mismatches t.
  wheel_scratch_.clear();
  for (size_t i = staged_pos_; i < staged_.size(); ++i) {
    wheel_scratch_.push_back(staged_[i]);
  }
  staged_.clear();
  staged_pos_ = 0;
  for (size_t level = 0; level < kWheelLevels; ++level) {
    uint64_t occ = occupied_[level];
    occupied_[level] = 0;
    while (occ != 0) {
      const size_t slot = static_cast<size_t>(std::countr_zero(occ));
      occ &= occ - 1;
      std::vector<Entry>& bucket = wheel_[level][slot];
      wheel_scratch_.insert(wheel_scratch_.end(), bucket.begin(), bucket.end());
      bucket.clear();
    }
  }
  wheel_cur_ = t;
  for (const Entry& e : wheel_scratch_) WheelRoute(e);
  wheel_scratch_.clear();
}

}  // namespace ecdb
