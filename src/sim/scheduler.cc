#include "sim/scheduler.h"

namespace ecdb {

size_t Scheduler::RunUntil(Micros until) {
  size_t executed = 0;
  if (post_step_hook_ != nullptr) post_step_hook_(post_step_ctx_);
  const Entry* head;
  while ((head = PeekLive()) != nullptr && head->when <= until) {
    RunHead();
    ++executed;
    if (post_step_hook_ != nullptr) post_step_hook_(post_step_ctx_);
  }
  if (now_ < until) now_ = until;
  return executed;
}

size_t Scheduler::RunAll(size_t max_events) {
  size_t executed = 0;
  if (post_step_hook_ != nullptr) post_step_hook_(post_step_ctx_);
  while (executed < max_events && PeekLive() != nullptr) {
    RunHead();
    ++executed;
    if (post_step_hook_ != nullptr) post_step_hook_(post_step_ctx_);
  }
  return executed;
}

}  // namespace ecdb
