#include "sim/scheduler.h"

namespace ecdb {

size_t Scheduler::RunUntil(Micros until) {
  size_t executed = 0;
  const Entry* head;
  while ((head = PeekLive()) != nullptr && head->when <= until) {
    RunHead();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

size_t Scheduler::RunAll(size_t max_events) {
  size_t executed = 0;
  while (executed < max_events && RunOne()) ++executed;
  return executed;
}

}  // namespace ecdb
