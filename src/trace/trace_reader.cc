#include "trace/trace_reader.h"

#include <fstream>
#include <istream>
#include <sstream>

namespace ecdb {
namespace {

// Finds `"key":` in `line` and returns the character offset just past the
// colon, or npos. Keys in our schema never appear inside string values
// except "detail", which is always last, so a plain search is safe as long
// as we search for the quoted, colon-suffixed form.
size_t FindValue(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return std::string::npos;
  return pos + needle.size();
}

bool ParseU64(const std::string& line, const std::string& key, uint64_t* out) {
  const size_t pos = FindValue(line, key);
  if (pos == std::string::npos) return false;
  uint64_t v = 0;
  size_t i = pos;
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return false;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    v = v * 10 + static_cast<uint64_t>(line[i] - '0');
    ++i;
  }
  *out = v;
  return true;
}

bool ParseString(const std::string& line, const std::string& key,
                 std::string* out) {
  size_t pos = FindValue(line, key);
  if (pos == std::string::npos || pos >= line.size() || line[pos] != '"') {
    return false;
  }
  ++pos;
  std::string v;
  while (pos < line.size() && line[pos] != '"') {
    if (line[pos] == '\\' && pos + 1 < line.size()) ++pos;
    v += line[pos];
    ++pos;
  }
  if (pos >= line.size()) return false;
  *out = v;
  return true;
}

bool TypeFromName(const std::string& name, TraceEventType* out) {
  for (size_t i = 0; i < kNumTraceEventTypes; ++i) {
    const auto t = static_cast<TraceEventType>(i);
    if (ToString(t) == name) {
      *out = t;
      return true;
    }
  }
  return false;
}

}  // namespace

bool ReadJsonlTrace(std::istream& in, ParsedTrace* out, std::string* error) {
  out->meta = TraceMeta{};
  out->events.clear();
  std::string line;
  size_t lineno = 0;
  bool saw_meta = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (!saw_meta) {
      if (line.find("\"meta\"") == std::string::npos) {
        if (error) *error = "line 1: missing meta header";
        return false;
      }
      ParseString(line, "runtime", &out->meta.runtime);
      ParseString(line, "protocol", &out->meta.protocol);
      uint64_t n = 0;
      if (ParseU64(line, "num_nodes", &n)) {
        out->meta.num_nodes = static_cast<uint32_t>(n);
      }
      saw_meta = true;
      continue;
    }
    TraceEvent ev;
    std::string type_name;
    uint64_t at = 0, node = 0, txn = 0, peer = 0, arg = 0, a = 0, b = 0;
    if (!ParseU64(line, "at", &at) || !ParseU64(line, "node", &node) ||
        !ParseString(line, "type", &type_name) ||
        !ParseU64(line, "txn", &txn)) {
      if (error) {
        std::ostringstream os;
        os << "line " << lineno << ": malformed event";
        *error = os.str();
      }
      return false;
    }
    if (!TypeFromName(type_name, &ev.type)) {
      if (error) {
        std::ostringstream os;
        os << "line " << lineno << ": unknown event type '" << type_name
           << "'";
        *error = os.str();
      }
      return false;
    }
    ParseU64(line, "peer", &peer);
    ParseU64(line, "arg", &arg);
    ParseU64(line, "a", &a);
    ParseU64(line, "b", &b);
    ev.at = at;
    ev.node = static_cast<NodeId>(node);
    ev.txn = txn;
    ev.peer = static_cast<NodeId>(peer);
    ev.arg = arg;
    ev.a = static_cast<uint8_t>(a);
    ev.b = static_cast<uint8_t>(b);
    out->events.push_back(ev);
  }
  if (!saw_meta) {
    if (error) *error = "empty trace";
    return false;
  }
  return true;
}

bool ReadJsonlTraceFile(const std::string& path, ParsedTrace* out,
                        std::string* error) {
  std::ifstream f(path);
  if (!f) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  return ReadJsonlTrace(f, out, error);
}

}  // namespace ecdb
