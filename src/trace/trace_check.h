#ifndef ECDB_TRACE_TRACE_CHECK_H_
#define ECDB_TRACE_TRACE_CHECK_H_

#include <string>
#include <vector>

#include "trace/trace_reader.h"

namespace ecdb {

/// Result of an offline invariant check over a parsed trace.
struct TraceCheckResult {
  bool ok = true;
  bool strict = false;        // true when the invariant applied (EC trace)
  uint64_t applies_checked = 0;
  std::vector<std::string> violations;
};

/// Checks EasyCommit's defining ordering invariant — "first transmit, then
/// commit" (paper §3): every local decision apply on a node must be
/// preceded, on that same node, by that node's own decision transmit for
/// the same transaction. The check is strict only for protocol "EC";
/// other protocols (including the EC-noforward ablation, where
/// participants intentionally skip forwarding) legitimately apply without
/// transmitting, so the checker reports strict=false and passes.
TraceCheckResult CheckTransmitBeforeApply(const ParsedTrace& trace);

}  // namespace ecdb

#endif  // ECDB_TRACE_TRACE_CHECK_H_
