#ifndef ECDB_TRACE_TRACE_READER_H_
#define ECDB_TRACE_TRACE_READER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace_event.h"
#include "trace/trace_export.h"

namespace ecdb {

/// A JSONL trace loaded back into memory for offline inspection/checking.
struct ParsedTrace {
  TraceMeta meta;
  std::vector<TraceEvent> events;  // in file order (time-sorted at export)
};

/// Parses a JSONL trace produced by WriteJsonl. Returns false (with a
/// message in *error) on malformed input. The parser is deliberately
/// specific to our exporter's fixed schema — it is not a general JSON
/// parser — but tolerates unknown keys so the schema can grow.
bool ReadJsonlTrace(std::istream& in, ParsedTrace* out, std::string* error);
bool ReadJsonlTraceFile(const std::string& path, ParsedTrace* out,
                        std::string* error);

}  // namespace ecdb

#endif  // ECDB_TRACE_TRACE_READER_H_
