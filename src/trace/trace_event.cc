#include "trace/trace_event.h"

namespace ecdb {

std::string ToString(TraceEventType type) {
  switch (type) {
    case TraceEventType::kTxnState:
      return "TxnState";
    case TraceEventType::kMsgSend:
      return "MsgSend";
    case TraceEventType::kMsgRecv:
      return "MsgRecv";
    case TraceEventType::kTimerArm:
      return "TimerArm";
    case TraceEventType::kTimerFire:
      return "TimerFire";
    case TraceEventType::kTimerCancel:
      return "TimerCancel";
    case TraceEventType::kWalWrite:
      return "WalWrite";
    case TraceEventType::kTermRoundStart:
      return "TermRoundStart";
    case TraceEventType::kTermRoundOutcome:
      return "TermRoundOutcome";
    case TraceEventType::kDecisionTransmit:
      return "DecisionTransmit";
    case TraceEventType::kDecisionApply:
      return "DecisionApply";
    case TraceEventType::kCleanup:
      return "Cleanup";
  }
  return "Unknown";
}

std::string ToString(TermOutcome outcome) {
  switch (outcome) {
    case TermOutcome::kDeferred:
      return "deferred";
    case TermOutcome::kBlocked:
      return "blocked";
    case TermOutcome::kLedAbort:
      return "led-abort";
    case TermOutcome::kLedCommit:
      return "led-commit";
  }
  return "unknown";
}

}  // namespace ecdb
