#include "trace/trace_check.h"

#include <set>
#include <sstream>
#include <utility>

namespace ecdb {

TraceCheckResult CheckTransmitBeforeApply(const ParsedTrace& trace) {
  TraceCheckResult result;
  result.strict = trace.meta.protocol == "EC";
  if (!result.strict) return result;

  // Events are time-sorted at export with per-node recording order
  // preserved for ties, so a single forward pass sees each node's events
  // in the order that node produced them.
  std::set<std::pair<NodeId, TxnId>> transmitted;
  for (const TraceEvent& ev : trace.events) {
    if (ev.type == TraceEventType::kDecisionTransmit) {
      transmitted.emplace(ev.node, ev.txn);
    } else if (ev.type == TraceEventType::kDecisionApply) {
      ++result.applies_checked;
      if (!transmitted.count({ev.node, ev.txn})) {
        result.ok = false;
        std::ostringstream os;
        os << "node " << ev.node << " applied txn " << TxnCoordinator(ev.txn)
           << ":" << TxnSequence(ev.txn) << " at t=" << ev.at
           << "us without a preceding decision transmit";
        result.violations.push_back(os.str());
      }
    }
  }
  return result;
}

}  // namespace ecdb
