#ifndef ECDB_TRACE_TRACE_EVENT_H_
#define ECDB_TRACE_TRACE_EVENT_H_

#include <cstdint>
#include <string>
#include <type_traits>

#include "common/types.h"

namespace ecdb {

/// What a TraceEvent describes. One enum covers both runtimes: protocol
/// state transitions (including the paper's hidden TRANSMIT-A/TRANSMIT-C
/// states, Figure 6), message causality, timers, WAL writes and the
/// termination protocol. The `arg`/`a`/`b` payload fields are interpreted
/// per type (see the field comments on TraceEvent).
enum class TraceEventType : uint8_t {
  kTxnState,          // a = new CohortState, b = previous CohortState
  kMsgSend,           // peer = dst, a = MsgType, arg = per-sender seq
  kMsgRecv,           // peer = src, a = MsgType, arg = sender's seq
  kTimerArm,          // arg = delay_us
  kTimerFire,         //
  kTimerCancel,       //
  kWalWrite,          // a = LogRecordType
  kTermRoundStart,    // arg = attempt number (1-based)
  kTermRoundOutcome,  // a = TermOutcome
  kDecisionTransmit,  // a = Decision, arg = number of recipients
  kDecisionApply,     // a = Decision
  kCleanup,           //
};

inline constexpr size_t kNumTraceEventTypes =
    static_cast<size_t>(TraceEventType::kCleanup) + 1;

/// Returns a short name like "TxnState" or "DecisionTransmit". The names
/// are part of the JSONL schema (docs/OBSERVABILITY.md): exporters write
/// them and TraceReader parses them back.
std::string ToString(TraceEventType type);

/// How a termination round concluded on the initiating node.
enum class TermOutcome : uint8_t {
  kDeferred,   // another node leads (or the coordinator is still deciding)
  kBlocked,    // 2PC cooperative termination: all READY, coordinator down
  kLedAbort,   // this node led and decided abort
  kLedCommit,  // this node led and decided commit
};

std::string ToString(TermOutcome outcome);

/// One fixed-size POD trace event. The record path stores these into a
/// preallocated ring, so the struct must stay trivially copyable and free
/// of owning members; anything variable-sized is encoded into the integer
/// payload fields and decoded at export time.
struct TraceEvent {
  Micros at = 0;               // per-node clock (see docs/OBSERVABILITY.md)
  TxnId txn = kInvalidTxn;
  uint64_t arg = 0;            // per-type payload (seq, delay, count, ...)
  NodeId node = 0;             // recording node
  NodeId peer = kInvalidNode;  // counterpart node for send/recv
  TraceEventType type = TraceEventType::kTxnState;
  uint8_t a = 0;               // per-type payload (state, msg type, ...)
  uint8_t b = 0;               // per-type payload (previous state)

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent is stored in a preallocated ring buffer");

}  // namespace ecdb

#endif  // ECDB_TRACE_TRACE_EVENT_H_
