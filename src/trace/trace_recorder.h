#ifndef ECDB_TRACE_TRACE_RECORDER_H_
#define ECDB_TRACE_TRACE_RECORDER_H_

#include <cstdint>
#include <vector>

#include "trace/trace_event.h"

// Compile-time kill switch: -DECDB_TRACE=OFF at configure time builds the
// record path down to nothing (Record() is an empty inline, enabled() is a
// constant false, every `if (trace_.enabled())` call site folds away).
// Defaults to on; the CMake option sets it explicitly on the ecdb target.
#ifndef ECDB_TRACE_ENABLED
#define ECDB_TRACE_ENABLED 1
#endif

namespace ecdb {

/// Per-node ring buffer of protocol trace events.
///
/// Designed for the hot path of both runtimes: recording is one branch on
/// the runtime enable flag plus a store into a preallocated power-of-two
/// ring — no allocation, no locking (each recorder is owned by one node
/// and, in the threaded runtime, touched only from that node's thread).
/// When the ring wraps, the oldest events are overwritten and counted in
/// dropped(); exports therefore always see the most recent window.
///
/// Tracing is off unless Enable() is called, and the whole record path can
/// additionally be compiled out with the ECDB_TRACE=OFF build option.
class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit TraceRecorder(NodeId node = 0) : node_(node) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void set_node(NodeId node) { node_ = node; }
  NodeId node() const { return node_; }

#if ECDB_TRACE_ENABLED
  /// Allocates the ring (capacity rounded up to a power of two) and turns
  /// recording on. Safe to call again to resize/restart.
  void Enable(size_t capacity = kDefaultCapacity) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    ring_.assign(cap, TraceEvent{});
    mask_ = cap - 1;
    total_ = 0;
    seq_ = 0;
    enabled_ = true;
  }

  void Disable() { enabled_ = false; }

  bool enabled() const { return enabled_; }

  /// Records one event. Allocation-free: one branch + one ring store.
  void Record(TraceEventType type, Micros at, TxnId txn, uint64_t arg = 0,
              NodeId peer = kInvalidNode, uint8_t a = 0, uint8_t b = 0) {
    if (!enabled_) return;
    TraceEvent& ev = ring_[total_ & mask_];
    ev.at = at;
    ev.txn = txn;
    ev.arg = arg;
    ev.node = node_;
    ev.peer = peer;
    ev.type = type;
    ev.a = a;
    ev.b = b;
    total_++;
  }

  /// Next per-sender message sequence number (stamped into
  /// Message::trace_seq so receive events can name the exact send).
  uint64_t NextSeq() { return ++seq_; }

  /// Events recorded and still in the ring, oldest first.
  std::vector<TraceEvent> Events() const {
    std::vector<TraceEvent> out;
    if (ring_.empty()) return out;
    const uint64_t cap = ring_.size();
    const uint64_t n = total_ < cap ? total_ : cap;
    out.reserve(n);
    const uint64_t start = total_ - n;
    for (uint64_t i = 0; i < n; ++i) {
      out.push_back(ring_[(start + i) & mask_]);
    }
    return out;
  }

  /// Events overwritten because the ring wrapped.
  uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }

  /// Total events ever recorded (including dropped).
  uint64_t total() const { return total_; }
#else
  // Kill-switch build: the record path compiles to nothing. Enable() is
  // still callable so host code needs no #ifs, but stays inert.
  void Enable(size_t = kDefaultCapacity) {}
  void Disable() {}
  bool enabled() const { return false; }
  void Record(TraceEventType, Micros, TxnId, uint64_t = 0,
              NodeId = kInvalidNode, uint8_t = 0, uint8_t = 0) {}
  uint64_t NextSeq() { return 0; }
  std::vector<TraceEvent> Events() const { return {}; }
  uint64_t dropped() const { return 0; }
  uint64_t total() const { return 0; }
#endif

 private:
  NodeId node_;
#if ECDB_TRACE_ENABLED
  bool enabled_ = false;
  uint64_t total_ = 0;
  uint64_t seq_ = 0;
  uint64_t mask_ = 0;
  std::vector<TraceEvent> ring_;
#endif
};

}  // namespace ecdb

#endif  // ECDB_TRACE_TRACE_RECORDER_H_
