#ifndef ECDB_TRACE_TRACE_EXPORT_H_
#define ECDB_TRACE_TRACE_EXPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace_event.h"
#include "trace/trace_recorder.h"

namespace ecdb {

/// Run-level context written into every export so an offline tool (or the
/// invariant checker) knows what it is looking at without side channels.
struct TraceMeta {
  std::string runtime;   // "sim", "thread" or "testbed"
  std::string protocol;  // ToString(CommitProtocol), e.g. "EC"
  uint32_t num_nodes = 0;
};

/// Merges per-node recorder contents into one time-ordered stream. The
/// sort is stable over a node-by-node concatenation, so events with equal
/// timestamps keep each node's recording order — which is what makes the
/// exported order deterministic and lets the offline checker reason about
/// same-instant transmit-before-apply sequences.
std::vector<TraceEvent> CollectEvents(
    const std::vector<const TraceRecorder*>& recorders);

/// Human/grep-friendly decode of one event's payload, e.g.
/// "INITIAL -> READY" or "send Prepare to 3 seq 12".
std::string DescribeEvent(const TraceEvent& ev);

/// JSONL export: one meta line, then one fixed-key-order JSON object per
/// event. Byte-deterministic for a given (meta, events) input — pinned by
/// tests/determinism_test.cc.
void WriteJsonl(const TraceMeta& meta, const std::vector<TraceEvent>& events,
                std::ostream& out);
bool WriteJsonlFile(const TraceMeta& meta,
                    const std::vector<TraceEvent>& events,
                    const std::string& path);

/// Chrome trace-event JSON (load in Perfetto or chrome://tracing): one
/// named track per node (thread_name metadata + instant events) and one
/// async span per transaction stretching from its first to its last traced
/// event.
void WriteChromeTrace(const TraceMeta& meta,
                      const std::vector<TraceEvent>& events,
                      std::ostream& out);
bool WriteChromeTraceFile(const TraceMeta& meta,
                          const std::vector<TraceEvent>& events,
                          const std::string& path);

}  // namespace ecdb

#endif  // ECDB_TRACE_TRACE_EXPORT_H_
