#include "trace/trace_export.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "net/message.h"
#include "wal/log_record.h"

namespace ecdb {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::vector<TraceEvent> CollectEvents(
    const std::vector<const TraceRecorder*>& recorders) {
  std::vector<TraceEvent> all;
  size_t n = 0;
  for (const TraceRecorder* r : recorders) {
    if (r != nullptr) n += r->Events().size();
  }
  all.reserve(n);
  for (const TraceRecorder* r : recorders) {
    if (r == nullptr) continue;
    std::vector<TraceEvent> evs = r->Events();
    all.insert(all.end(), evs.begin(), evs.end());
  }
  // Stable so that same-timestamp events keep each node's recording order
  // (e.g. an EC decision-transmit recorded before the same-instant apply).
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     return x.at < y.at;
                   });
  return all;
}

std::string DescribeEvent(const TraceEvent& ev) {
  std::ostringstream os;
  switch (ev.type) {
    case TraceEventType::kTxnState:
      os << ToString(static_cast<CohortState>(ev.b)) << " -> "
         << ToString(static_cast<CohortState>(ev.a));
      break;
    case TraceEventType::kMsgSend:
      os << "send " << ToString(static_cast<MsgType>(ev.a)) << " to "
         << ev.peer << " seq " << ev.arg;
      break;
    case TraceEventType::kMsgRecv:
      os << "recv " << ToString(static_cast<MsgType>(ev.a)) << " from "
         << ev.peer << " seq " << ev.arg;
      break;
    case TraceEventType::kTimerArm:
      os << "arm timer +" << ev.arg << "us";
      break;
    case TraceEventType::kTimerFire:
      os << "timer fired";
      break;
    case TraceEventType::kTimerCancel:
      os << "timer cancelled";
      break;
    case TraceEventType::kWalWrite:
      os << "wal " << ToString(static_cast<LogRecordType>(ev.a));
      break;
    case TraceEventType::kTermRoundStart:
      os << "termination round " << ev.arg;
      break;
    case TraceEventType::kTermRoundOutcome:
      os << "termination " << ToString(static_cast<TermOutcome>(ev.a));
      break;
    case TraceEventType::kDecisionTransmit:
      os << "transmit " << ToString(static_cast<Decision>(ev.a)) << " to "
         << ev.arg << " peers";
      break;
    case TraceEventType::kDecisionApply:
      os << "apply " << ToString(static_cast<Decision>(ev.a));
      break;
    case TraceEventType::kCleanup:
      os << "cleanup";
      break;
  }
  return os.str();
}

void WriteJsonl(const TraceMeta& meta, const std::vector<TraceEvent>& events,
                std::ostream& out) {
  out << "{\"meta\":{\"runtime\":\"" << JsonEscape(meta.runtime)
      << "\",\"protocol\":\"" << JsonEscape(meta.protocol)
      << "\",\"num_nodes\":" << meta.num_nodes << "}}\n";
  for (const TraceEvent& ev : events) {
    out << "{\"at\":" << ev.at << ",\"node\":" << ev.node << ",\"type\":\""
        << ToString(ev.type) << "\",\"txn\":" << ev.txn
        << ",\"peer\":" << ev.peer << ",\"arg\":" << ev.arg
        << ",\"a\":" << static_cast<unsigned>(ev.a)
        << ",\"b\":" << static_cast<unsigned>(ev.b) << ",\"detail\":\""
        << JsonEscape(DescribeEvent(ev)) << "\"}\n";
  }
}

bool WriteJsonlFile(const TraceMeta& meta,
                    const std::vector<TraceEvent>& events,
                    const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  WriteJsonl(meta, events, f);
  return static_cast<bool>(f);
}

void WriteChromeTrace(const TraceMeta& meta,
                      const std::vector<TraceEvent>& events,
                      std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"runtime\":\""
      << JsonEscape(meta.runtime) << "\",\"protocol\":\""
      << JsonEscape(meta.protocol) << "\"},\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };
  // One named track per node.
  for (uint32_t n = 0; n < meta.num_nodes; ++n) {
    comma();
    out << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << n
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"node " << n
        << "\"}}";
  }
  // One async span per transaction, from first to last traced event.
  struct Span {
    Micros begin;
    Micros end;
  };
  std::map<TxnId, Span> spans;
  for (const TraceEvent& ev : events) {
    if (ev.txn == kInvalidTxn) continue;
    auto [it, inserted] = spans.try_emplace(ev.txn, Span{ev.at, ev.at});
    if (!inserted) {
      it->second.begin = std::min(it->second.begin, ev.at);
      it->second.end = std::max(it->second.end, ev.at);
    }
  }
  for (const auto& [txn, span] : spans) {
    comma();
    out << "{\"ph\":\"b\",\"pid\":0,\"tid\":"
        << static_cast<uint32_t>(TxnCoordinator(txn)) << ",\"cat\":\"txn\","
        << "\"id\":" << txn << ",\"name\":\"txn " << TxnCoordinator(txn)
        << ":" << TxnSequence(txn) << "\",\"ts\":" << span.begin << "}";
    comma();
    out << "{\"ph\":\"e\",\"pid\":0,\"tid\":"
        << static_cast<uint32_t>(TxnCoordinator(txn)) << ",\"cat\":\"txn\","
        << "\"id\":" << txn << ",\"name\":\"txn " << TxnCoordinator(txn)
        << ":" << TxnSequence(txn) << "\",\"ts\":" << span.end << "}";
  }
  // Every event as an instant on its node's track.
  for (const TraceEvent& ev : events) {
    comma();
    out << "{\"ph\":\"i\",\"pid\":0,\"tid\":" << ev.node << ",\"s\":\"t\","
        << "\"name\":\"" << ToString(ev.type) << "\",\"ts\":" << ev.at
        << ",\"args\":{\"txn\":" << ev.txn << ",\"detail\":\""
        << JsonEscape(DescribeEvent(ev)) << "\"}}";
  }
  out << "\n]}\n";
}

bool WriteChromeTraceFile(const TraceMeta& meta,
                          const std::vector<TraceEvent>& events,
                          const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  WriteChromeTrace(meta, events, f);
  return static_cast<bool>(f);
}

}  // namespace ecdb
