#ifndef ECDB_STATS_METRICS_H_
#define ECDB_STATS_METRICS_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "common/types.h"

namespace ecdb {

/// Where a simulated worker thread's time goes. The categories are the
/// paper's Figure 12 breakdown, verbatim.
enum class TimeCategory : uint8_t {
  kUsefulWork,  // computation for read/write operations
  kTxnManager,  // maintaining transaction-associated resources
  kIndex,       // index access
  kAbort,       // cleaning up aborted transactions
  kIdle,        // worker has no task
  kCommit,      // executing the commit protocol
  kOverhead,    // fetching/cleaning the transaction table
};

inline constexpr size_t kNumTimeCategories = 7;

/// Returns the paper's label, e.g. "Useful Work".
std::string ToString(TimeCategory category);

/// Per-node counters for one measurement window.
struct NodeStats {
  uint64_t txns_committed = 0;
  uint64_t txns_aborted = 0;   // aborted attempts (restarted later)
  uint64_t txns_blocked = 0;
  uint64_t commit_protocol_runs = 0;

  /// Termination-protocol rounds initiated by this node in the window
  /// (nonzero only under failures or very aggressive timeouts).
  uint64_t termination_rounds = 0;

  /// Open-loop load accounting (all zero under the closed loop). Every
  /// arrival is counted exactly once as offered and ends in exactly one of
  /// three ways — committed, rejected at admission, or terminally aborted
  /// (retry budget exhausted, quiesce drained it, or a crash killed it) —
  /// so at drain time: offered == committed + rejected + terminal aborts.
  uint64_t open_loop_offered = 0;
  uint64_t open_loop_rejected = 0;
  uint64_t open_loop_aborted = 0;  // terminal (not per-attempt) aborts

  /// Microseconds of worker time per category (Figure 12).
  std::array<uint64_t, kNumTimeCategories> time_us{};

  /// End-to-end latency (first start to final commit) of committed
  /// transactions, in microseconds.
  Histogram latency;

  /// Phase-latency breakdown of the commit protocol for commit-bound
  /// transactions (see CommitPhase in commit/commit_env.h): time to
  /// collect votes (coordinator), time from READY to the decision's
  /// arrival (participants), and time from local apply to cleanup.
  Histogram phase_vote;
  Histogram phase_transmit;
  Histogram phase_apply;

  void AddTime(TimeCategory category, uint64_t us) {
    time_us[static_cast<size_t>(category)] += us;
  }
  uint64_t TimeIn(TimeCategory category) const {
    return time_us[static_cast<size_t>(category)];
  }

  void Merge(const NodeStats& other);
  void Clear();
};

/// Cluster-level result of a benchmark window.
struct ClusterStats {
  NodeStats total;               // merged over nodes
  double duration_seconds = 0;   // measurement window length
  uint32_t num_nodes = 0;

  /// Network-level loss accounting (whole run, not just the window):
  /// messages a crashed node would have sent (suppressed at the source)
  /// and messages addressed to a crashed node (dropped at the sink).
  uint64_t net_messages_from_crashed = 0;
  uint64_t net_messages_to_crashed = 0;

  /// Transport coalescing + group commit accounting (whole run; all zero
  /// when the coalescing knob is off). `net_frames_sent` counts framed
  /// batches put on the wire and `net_messages_coalesced` the messages
  /// that rode behind another in the same frame — their ratio is the
  /// effective batch factor. `duplicate_decisions_suppressed` counts
  /// Global-* receipts short-circuited because the transaction was
  /// already decided locally (EC's O(n^2) redundancy; counted regardless
  /// of the knob). `wal_group_flushes` counts WAL flushes that covered
  /// pending records — each one stands in for the per-append syncs group
  /// commit amortized away. Engine-derived counters reset when a crash
  /// recreates a node's engine, like termination_rounds.
  uint64_t net_frames_sent = 0;
  uint64_t net_messages_coalesced = 0;
  uint64_t duplicate_decisions_suppressed = 0;
  uint64_t wal_group_flushes = 0;

  /// Offered (open-loop arrival) transactions per second of (simulated)
  /// time; 0 under the closed loop.
  double OfferedRate() const {
    return duration_seconds > 0
               ? static_cast<double>(total.open_loop_offered) /
                     duration_seconds
               : 0.0;
  }

  /// Committed transactions per second of (simulated) time.
  double Throughput() const {
    return duration_seconds > 0
               ? static_cast<double>(total.txns_committed) / duration_seconds
               : 0.0;
  }

  /// Aborted attempts per committed transaction.
  double AbortRate() const {
    const double c = static_cast<double>(total.txns_committed);
    return c > 0 ? static_cast<double>(total.txns_aborted) / c : 0.0;
  }

  /// Fraction of worker time in `category`, over all categories.
  double TimeFraction(TimeCategory category) const;
};

}  // namespace ecdb

#endif  // ECDB_STATS_METRICS_H_
