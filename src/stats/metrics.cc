#include "stats/metrics.h"

namespace ecdb {

std::string ToString(TimeCategory category) {
  switch (category) {
    case TimeCategory::kUsefulWork:
      return "Useful Work";
    case TimeCategory::kTxnManager:
      return "Txn Manager";
    case TimeCategory::kIndex:
      return "Index";
    case TimeCategory::kAbort:
      return "Abort";
    case TimeCategory::kIdle:
      return "Idle";
    case TimeCategory::kCommit:
      return "Commit";
    case TimeCategory::kOverhead:
      return "Overhead";
  }
  return "Unknown";
}

void NodeStats::Merge(const NodeStats& other) {
  txns_committed += other.txns_committed;
  txns_aborted += other.txns_aborted;
  txns_blocked += other.txns_blocked;
  commit_protocol_runs += other.commit_protocol_runs;
  termination_rounds += other.termination_rounds;
  open_loop_offered += other.open_loop_offered;
  open_loop_rejected += other.open_loop_rejected;
  open_loop_aborted += other.open_loop_aborted;
  for (size_t i = 0; i < kNumTimeCategories; ++i) {
    time_us[i] += other.time_us[i];
  }
  latency.Merge(other.latency);
  phase_vote.Merge(other.phase_vote);
  phase_transmit.Merge(other.phase_transmit);
  phase_apply.Merge(other.phase_apply);
}

void NodeStats::Clear() {
  txns_committed = 0;
  txns_aborted = 0;
  txns_blocked = 0;
  commit_protocol_runs = 0;
  termination_rounds = 0;
  open_loop_offered = 0;
  open_loop_rejected = 0;
  open_loop_aborted = 0;
  time_us.fill(0);
  latency.Clear();
  phase_vote.Clear();
  phase_transmit.Clear();
  phase_apply.Clear();
}

double ClusterStats::TimeFraction(TimeCategory category) const {
  uint64_t sum = 0;
  for (size_t i = 0; i < kNumTimeCategories; ++i) sum += total.time_us[i];
  if (sum == 0) return 0.0;
  return static_cast<double>(total.TimeIn(category)) /
         static_cast<double>(sum);
}

}  // namespace ecdb
