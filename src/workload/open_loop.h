#ifndef ECDB_WORKLOAD_OPEN_LOOP_H_
#define ECDB_WORKLOAD_OPEN_LOOP_H_

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"

namespace ecdb {

/// Arrival process for open-loop load generation.
enum class ArrivalProcess : uint8_t {
  kPoisson,    // exponential inter-arrival gaps (memoryless)
  kFixedRate,  // exact 1/rate spacing (deterministic pacing)
};

/// Open-loop client model: transactions arrive at a configured rate per
/// node, independent of completions — the load the ROADMAP north-star
/// ("heavy traffic from millions of users") actually sees, as opposed to
/// the closed loop where each client waits for its previous transaction.
/// Under overload the open loop exposes queueing collapse (p99 blows up,
/// committed rate plateaus below offered rate) that a closed loop
/// structurally cannot show.
struct OpenLoopConfig {
  /// Off: clients run the classic closed loop.
  bool enabled = false;

  ArrivalProcess process = ArrivalProcess::kPoisson;

  /// Mean arrival rate per server node, in transactions per second.
  double arrivals_per_sec_per_node = 1000.0;

  /// Admission control: arrivals beyond this many in-flight transactions
  /// on a node are rejected (counted, not queued) — per-client
  /// backpressure, so an overloaded node sheds load instead of growing an
  /// unbounded queue.
  uint32_t max_in_flight_per_node = 256;

  /// An admitted transaction that keeps aborting is retried (with the
  /// usual backoff) at most this many times, then terminally aborted.
  /// Bounded retries keep the conservation law exact at drain time:
  /// offered == committed + terminally aborted + rejected.
  uint32_t max_attempts = 8;
};

/// Deterministic per-seed arrival-gap generator. Each node owns one,
/// seeded from the cluster seed stream, so the full arrival schedule —
/// and with it the whole simulation — replays bit-identically for a given
/// (seed, rate, process).
class ArrivalSchedule {
 public:
  ArrivalSchedule(const OpenLoopConfig& config, uint64_t seed);

  /// Microseconds until the next arrival (>= 1, so arrival events always
  /// make progress).
  Micros NextGapUs();

 private:
  ArrivalProcess process_;
  double mean_gap_us_;
  double carry_ = 0.0;  // fixed-rate: fractional microseconds carried over
  Rng rng_;
};

}  // namespace ecdb

#endif  // ECDB_WORKLOAD_OPEN_LOOP_H_
