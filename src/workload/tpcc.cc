#include "workload/tpcc.h"

#include <algorithm>

#include "common/logging.h"

namespace ecdb {

namespace {
// Column counts are nominal; payload contents are not consulted by the
// evaluation, only row identity matters for locking.
constexpr uint32_t kWarehouseCols = 9;
constexpr uint32_t kDistrictCols = 11;
constexpr uint32_t kCustomerCols = 21;
constexpr uint32_t kStockCols = 17;
constexpr uint32_t kItemCols = 5;
}  // namespace

TpccWorkload::TpccWorkload(TpccConfig config) : config_(config) {
  ECDB_CHECK(config_.num_partitions >= 1);
  ECDB_CHECK(config_.warehouses_per_partition >= 1);
  ECDB_CHECK(config_.min_order_lines >= 1);
  ECDB_CHECK(config_.max_order_lines >= config_.min_order_lines);
}

// Encoding: key = row_number * P + partition, so key % P == partition.
// Row numbers are unique within each table+warehouse.

Key TpccWorkload::WarehouseKey(uint32_t w) const {
  const uint32_t P = config_.num_partitions;
  return static_cast<Key>(w / P) * P + (w % P);
}

Key TpccWorkload::DistrictKey(uint32_t w, uint32_t d) const {
  const uint32_t P = config_.num_partitions;
  const uint64_t row =
      static_cast<uint64_t>(w / P) * config_.districts_per_warehouse + d;
  return row * P + (w % P);
}

Key TpccWorkload::CustomerKey(uint32_t w, uint32_t d, uint32_t c) const {
  const uint32_t P = config_.num_partitions;
  const uint64_t row = (static_cast<uint64_t>(w / P) *
                            config_.districts_per_warehouse +
                        d) *
                           config_.customers_per_district +
                       c;
  return row * P + (w % P);
}

Key TpccWorkload::StockKey(uint32_t w, uint32_t item) const {
  const uint32_t P = config_.num_partitions;
  const uint64_t row = static_cast<uint64_t>(w / P) * config_.items + item;
  return row * P + (w % P);
}

Key TpccWorkload::ItemKey(PartitionId reader_home, uint32_t item) const {
  // ITEM is replicated: each partition stores a full copy and readers
  // address their local copy, so item reads never leave the node.
  return static_cast<Key>(item) * config_.num_partitions + reader_home;
}

void TpccWorkload::LoadPartition(PartitionStore* store,
                                 const KeyPartitioner& partitioner) {
  ECDB_CHECK(partitioner.num_partitions() == config_.num_partitions);
  ECDB_CHECK(store->CreateTable(kWarehouse, "warehouse", kWarehouseCols).ok());
  ECDB_CHECK(store->CreateTable(kDistrict, "district", kDistrictCols).ok());
  ECDB_CHECK(store->CreateTable(kCustomer, "customer", kCustomerCols).ok());
  ECDB_CHECK(store->CreateTable(kStock, "stock", kStockCols).ok());
  ECDB_CHECK(store->CreateTable(kItem, "item", kItemCols).ok());

  // Pre-size the row indices so the bulk load below never rehashes.
  const uint64_t local_warehouses = config_.warehouses_per_partition;
  const uint64_t districts = local_warehouses * config_.districts_per_warehouse;
  store->GetTable(kWarehouse)->Reserve(local_warehouses);
  store->GetTable(kDistrict)->Reserve(districts);
  store->GetTable(kCustomer)->Reserve(districts *
                                      config_.customers_per_district);
  store->GetTable(kStock)->Reserve(local_warehouses * config_.items);
  store->GetTable(kItem)->Reserve(config_.items);

  const PartitionId part = store->id();
  for (uint32_t w = 0; w < total_warehouses(); ++w) {
    if (PartitionOfWarehouse(w) != part) continue;
    ECDB_CHECK(store->GetTable(kWarehouse)->Insert(WarehouseKey(w)).ok());
    for (uint32_t d = 0; d < config_.districts_per_warehouse; ++d) {
      ECDB_CHECK(store->GetTable(kDistrict)->Insert(DistrictKey(w, d)).ok());
      for (uint32_t c = 0; c < config_.customers_per_district; ++c) {
        ECDB_CHECK(
            store->GetTable(kCustomer)->Insert(CustomerKey(w, d, c)).ok());
      }
    }
    for (uint32_t i = 0; i < config_.items; ++i) {
      ECDB_CHECK(store->GetTable(kStock)->Insert(StockKey(w, i)).ok());
    }
  }
  // Replicated ITEM copy for this partition.
  for (uint32_t i = 0; i < config_.items; ++i) {
    ECDB_CHECK(store->GetTable(kItem)->Insert(ItemKey(part, i)).ok());
  }
}

uint32_t TpccWorkload::HomeWarehouse(PartitionId home, Rng& rng) const {
  const uint32_t idx = static_cast<uint32_t>(
      rng.NextBounded(config_.warehouses_per_partition));
  return idx * config_.num_partitions + home;
}

TxnRequest TpccWorkload::NextTxn(PartitionId home, Rng& rng) {
  return rng.NextBernoulli(config_.payment_fraction) ? MakePayment(home, rng)
                                                     : MakeNewOrder(home, rng);
}

TxnRequest TpccWorkload::MakePayment(PartitionId home, Rng& rng) {
  // Payment: update local warehouse YTD, local district YTD, then the
  // customer's balance — 15% of customers belong to a remote warehouse.
  TxnRequest request;
  const uint32_t w = HomeWarehouse(home, rng);
  const uint32_t d = static_cast<uint32_t>(
      rng.NextBounded(config_.districts_per_warehouse));

  request.ops.push_back(
      {kWarehouse, WarehouseKey(w), AccessMode::kWrite});
  request.ops.push_back({kDistrict, DistrictKey(w, d), AccessMode::kWrite});

  uint32_t cw = w;
  if (total_warehouses() > 1 &&
      rng.NextBernoulli(config_.payment_remote_probability)) {
    do {
      cw = static_cast<uint32_t>(rng.NextBounded(total_warehouses()));
    } while (cw == w);
  }
  const uint32_t cd = static_cast<uint32_t>(
      rng.NextBounded(config_.districts_per_warehouse));
  const uint32_t c = static_cast<uint32_t>(
      rng.NextBounded(config_.customers_per_district));
  request.ops.push_back(
      {kCustomer, CustomerKey(cw, cd, c), AccessMode::kWrite});
  return request;
}

TxnRequest TpccWorkload::MakeNewOrder(PartitionId home, Rng& rng) {
  // NewOrder: read local warehouse, read+modify the district (order id
  // counter), then for each order line read the (replicated) item and
  // update the supplying warehouse's stock — 1% of lines supply remotely.
  TxnRequest request;
  const uint32_t w = HomeWarehouse(home, rng);
  const uint32_t d = static_cast<uint32_t>(
      rng.NextBounded(config_.districts_per_warehouse));

  request.ops.push_back({kWarehouse, WarehouseKey(w), AccessMode::kRead});
  request.ops.push_back({kDistrict, DistrictKey(w, d), AccessMode::kWrite});

  const uint32_t lines = static_cast<uint32_t>(rng.NextInRange(
      config_.min_order_lines, config_.max_order_lines));
  for (uint32_t l = 0; l < lines; ++l) {
    const uint32_t item =
        static_cast<uint32_t>(rng.NextBounded(config_.items));
    request.ops.push_back({kItem, ItemKey(home, item), AccessMode::kRead});

    uint32_t sw = w;
    if (total_warehouses() > 1 &&
        rng.NextBernoulli(config_.neworder_remote_item_probability)) {
      do {
        sw = static_cast<uint32_t>(rng.NextBounded(total_warehouses()));
      } while (sw == w);
    }
    const Key stock_key = StockKey(sw, item);
    // The same (warehouse, item) stock row may repeat across order lines;
    // keep one write (re-acquisition is a no-op but duplicate undo entries
    // would restore stale values on rollback).
    const bool dup = std::any_of(
        request.ops.begin(), request.ops.end(), [&](const Operation& op) {
          return op.table == kStock && op.key == stock_key;
        });
    if (!dup) {
      request.ops.push_back({kStock, stock_key, AccessMode::kWrite});
    }
  }
  return request;
}

}  // namespace ecdb
