#include "workload/open_loop.h"

#include <algorithm>
#include <cmath>

namespace ecdb {

ArrivalSchedule::ArrivalSchedule(const OpenLoopConfig& config, uint64_t seed)
    : process_(config.process),
      mean_gap_us_(config.arrivals_per_sec_per_node > 0.0
                       ? 1e6 / config.arrivals_per_sec_per_node
                       : 1e12),
      rng_(seed) {}

Micros ArrivalSchedule::NextGapUs() {
  double gap;
  if (process_ == ArrivalProcess::kPoisson) {
    // Exponential inter-arrival. 1 - U is in (0, 1], so the log is finite.
    gap = -std::log(1.0 - rng_.NextDouble()) * mean_gap_us_;
  } else {
    gap = mean_gap_us_;
  }
  // Quantize to integer microseconds, carrying the fraction so the
  // long-run rate is exact (a fixed 333.3us gap must not round to 333).
  gap += carry_;
  double whole = std::floor(gap);
  carry_ = gap - whole;
  const double clamped = std::clamp(whole, 1.0, 9e15);
  return static_cast<Micros>(clamped);
}

}  // namespace ecdb
