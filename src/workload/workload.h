#ifndef ECDB_WORKLOAD_WORKLOAD_H_
#define ECDB_WORKLOAD_WORKLOAD_H_

#include <vector>

#include "common/operation.h"
#include "common/rng.h"
#include "common/types.h"
#include "storage/table.h"

namespace ecdb {

/// A client's transaction request: the stored procedure's full read/write
/// set, compiled to operations. (ExpoDB transactions are stored procedures;
/// the data accesses are what the execution engine and commit protocol
/// see.)
struct TxnRequest {
  std::vector<Operation> ops;

  bool HasWrites() const {
    for (const Operation& op : ops) {
      if (op.is_write()) return true;
    }
    return false;
  }
};

/// A benchmark workload: knows how to populate each partition and how to
/// generate transaction requests for clients attached to a given node.
/// Implementations must be deterministic given the Rng stream.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Creates this workload's tables in `store` and loads the rows owned by
  /// partition `store->id()`.
  virtual void LoadPartition(PartitionStore* store,
                             const KeyPartitioner& partitioner) = 0;

  /// Generates the next transaction for a client homed at `home`. The
  /// transaction's first accessed partition is the home partition (the
  /// coordinating server), as in Deneva/ExpoDB.
  virtual TxnRequest NextTxn(PartitionId home, Rng& rng) = 0;
};

}  // namespace ecdb

#endif  // ECDB_WORKLOAD_WORKLOAD_H_
