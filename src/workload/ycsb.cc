#include "workload/ycsb.h"

#include <algorithm>

#include "common/logging.h"

namespace ecdb {

YcsbWorkload::YcsbWorkload(YcsbConfig config)
    : config_(config), zipf_(config.rows_per_partition, config.theta) {
  ECDB_CHECK(config_.partitions_per_txn >= 1);
  ECDB_CHECK(config_.partitions_per_txn <= config_.num_partitions);
  ECDB_CHECK(config_.ops_per_txn >= config_.partitions_per_txn);
  // Distinct-key sampling must be able to terminate.
  ECDB_CHECK(config_.rows_per_partition >= config_.ops_per_txn);
}

void YcsbWorkload::LoadPartition(PartitionStore* store,
                                 const KeyPartitioner& partitioner) {
  ECDB_CHECK(partitioner.num_partitions() == config_.num_partitions);
  ECDB_CHECK(store->CreateTable(kTableId, "usertable", config_.columns).ok());
  Table* table = store->GetTable(kTableId);
  table->Reserve(config_.rows_per_partition);  // no rehash mid-load
  for (uint64_t row = 0; row < config_.rows_per_partition; ++row) {
    ECDB_CHECK(table->Insert(EncodeKey(store->id(), row)).ok());
  }
}

TxnRequest YcsbWorkload::NextTxn(PartitionId home, Rng& rng) {
  // Choose the partitions: home first, then distinct others.
  std::vector<PartitionId> parts;
  parts.reserve(config_.partitions_per_txn);
  parts.push_back(home);
  while (parts.size() < config_.partitions_per_txn) {
    const PartitionId p =
        static_cast<PartitionId>(rng.NextBounded(config_.num_partitions));
    if (std::find(parts.begin(), parts.end(), p) == parts.end()) {
      parts.push_back(p);
    }
  }

  // Operations round-robin across partitions; each transaction accesses
  // distinct keys (YCSB rows are picked Zipfian within the partition).
  TxnRequest request;
  request.ops.reserve(config_.ops_per_txn);
  for (uint32_t i = 0; i < config_.ops_per_txn; ++i) {
    const PartitionId part = parts[i % parts.size()];
    Operation op;
    op.table = kTableId;
    op.mode = rng.NextBernoulli(config_.write_fraction) ? AccessMode::kWrite
                                                        : AccessMode::kRead;
    // Retry until the key is new to this transaction; duplicates would
    // make lock acquisition order-dependent without adding contention.
    for (;;) {
      op.key = EncodeKey(part, zipf_.Next(rng));
      const bool dup =
          std::any_of(request.ops.begin(), request.ops.end(),
                      [&](const Operation& o) { return o.key == op.key; });
      if (!dup) break;
    }
    request.ops.push_back(op);
  }
  return request;
}

}  // namespace ecdb
