#ifndef ECDB_WORKLOAD_YCSB_H_
#define ECDB_WORKLOAD_YCSB_H_

#include <cstdint>

#include "workload/workload.h"

namespace ecdb {

/// YCSB configuration, following Section 6.1. The paper's table has 16M
/// rows per partition x 1KB rows; contention behaviour is governed by the
/// Zipfian skew and access pattern, not absolute size, so the default row
/// count is scaled down (documented substitution in DESIGN.md).
struct YcsbConfig {
  uint32_t num_partitions = 16;

  /// Rows stored per partition.
  uint64_t rows_per_partition = 65536;

  /// Operations per transaction (the paper uses 10; 16 in Section 6.3).
  uint32_t ops_per_txn = 10;

  /// Partitions touched per transaction (paper default 2).
  uint32_t partitions_per_txn = 2;

  /// Probability an operation is a write (paper sweeps 10%..90% in
  /// Section 6.5; 50% is the 1:1 read-write ratio of Section 6.3).
  double write_fraction = 0.5;

  /// Zipfian skew (theta): ~0.1 uniform .. 0.9 extremely skewed.
  double theta = 0.6;

  /// Columns per row (the YCSB schema has 10 data columns).
  uint32_t columns = 10;
};

/// The Yahoo! Cloud Serving Benchmark as used in the paper: single table,
/// Zipfian-skewed accesses, every transaction multi-partition (single-
/// partition transactions exercise no commit protocol).
class YcsbWorkload : public Workload {
 public:
  static constexpr TableId kTableId = 0;

  explicit YcsbWorkload(YcsbConfig config);

  void LoadPartition(PartitionStore* store,
                     const KeyPartitioner& partitioner) override;

  TxnRequest NextTxn(PartitionId home, Rng& rng) override;

  const YcsbConfig& config() const { return config_; }

  /// Global key of local row `row` in partition `part`: keys are striped
  /// so key % num_partitions == part (matching KeyPartitioner).
  Key EncodeKey(PartitionId part, uint64_t row) const {
    return static_cast<Key>(row) * config_.num_partitions + part;
  }

 private:
  YcsbConfig config_;
  ZipfianGenerator zipf_;
};

}  // namespace ecdb

#endif  // ECDB_WORKLOAD_YCSB_H_
