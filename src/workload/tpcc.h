#ifndef ECDB_WORKLOAD_TPCC_H_
#define ECDB_WORKLOAD_TPCC_H_

#include <cstdint>

#include "workload/workload.h"

namespace ecdb {

/// TPC-C configuration matching Section 6.1: ExpoDB supports the Payment
/// and NewOrder transactions; tables are partitioned by warehouse id and
/// the read-only ITEM table is replicated at every node.
struct TpccConfig {
  uint32_t num_partitions = 16;

  /// Warehouses per partition (node).
  uint32_t warehouses_per_partition = 4;

  /// Fraction of transactions that are Payment (rest NewOrder).
  double payment_fraction = 0.5;

  /// Probability a Payment customer belongs to a remote warehouse
  /// (paper: 0.15).
  double payment_remote_probability = 0.15;

  /// Per-order-line probability that the supplying warehouse is remote
  /// (TPC-C: 0.01, which makes ~10% of NewOrders multi-partition; the
  /// paper reports ~10% of NewOrder updates requiring remote access).
  double neworder_remote_item_probability = 0.01;

  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 64;  // scaled down from 3000
  uint32_t items = 1024;                 // scaled down from 100000
  uint32_t min_order_lines = 5;
  uint32_t max_order_lines = 15;
};

/// TPC-C (Payment + NewOrder) over warehouse-partitioned tables. Key
/// encoding stripes keys so KeyPartitioner's `key % P` routes each row to
/// the partition owning its warehouse; the replicated ITEM table uses the
/// reader's home partition so item reads are always local.
class TpccWorkload : public Workload {
 public:
  enum TableIds : TableId {
    kWarehouse = 0,
    kDistrict = 1,
    kCustomer = 2,
    kStock = 3,
    kItem = 4,  // read-only, replicated at every partition
  };

  explicit TpccWorkload(TpccConfig config);

  void LoadPartition(PartitionStore* store,
                     const KeyPartitioner& partitioner) override;

  TxnRequest NextTxn(PartitionId home, Rng& rng) override;

  const TpccConfig& config() const { return config_; }

  uint32_t total_warehouses() const {
    return config_.num_partitions * config_.warehouses_per_partition;
  }

  /// Partition owning warehouse `w`.
  PartitionId PartitionOfWarehouse(uint32_t w) const {
    return w % config_.num_partitions;
  }

  // Key encodings (row-number striped by partition, see class comment).
  Key WarehouseKey(uint32_t w) const;
  Key DistrictKey(uint32_t w, uint32_t d) const;
  Key CustomerKey(uint32_t w, uint32_t d, uint32_t c) const;
  Key StockKey(uint32_t w, uint32_t item) const;
  Key ItemKey(PartitionId reader_home, uint32_t item) const;

 private:
  TxnRequest MakePayment(PartitionId home, Rng& rng);
  TxnRequest MakeNewOrder(PartitionId home, Rng& rng);

  /// A warehouse homed on partition `home`.
  uint32_t HomeWarehouse(PartitionId home, Rng& rng) const;

  TpccConfig config_;
};

}  // namespace ecdb

#endif  // ECDB_WORKLOAD_TPCC_H_
