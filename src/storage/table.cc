#include "storage/table.h"

#include <utility>

namespace ecdb {

Table::Table(TableId id, std::string name, uint32_t num_columns)
    : id_(id), name_(std::move(name)), num_columns_(num_columns) {}

Status Table::Insert(Key key) {
  return InsertWith(key, std::vector<uint64_t>(num_columns_, 0));
}

Status Table::InsertWith(Key key, std::vector<uint64_t> columns) {
  columns.resize(num_columns_, 0);
  Row row;
  row.key = key;
  row.columns = std::move(columns);
  auto [it, inserted] = rows_.emplace(key, std::move(row));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("key already in table " + name_);
  }
  return Status::OK();
}

Result<const Row*> Table::Get(Key key) const {
  auto it = rows_.find(key);
  if (it == rows_.end()) return Status::NotFound();
  return &it->second;
}

Result<Row*> Table::GetMutable(Key key) {
  auto it = rows_.find(key);
  if (it == rows_.end()) return Status::NotFound();
  return &it->second;
}

Status Table::Erase(Key key) {
  if (rows_.erase(key) == 0) return Status::NotFound();
  return Status::OK();
}

Status PartitionStore::CreateTable(TableId id, const std::string& name,
                                   uint32_t num_columns) {
  auto [it, inserted] = tables_.emplace(id, Table(id, name, num_columns));
  (void)it;
  if (!inserted) return Status::AlreadyExists("table id in use");
  return Status::OK();
}

Table* PartitionStore::GetTable(TableId id) {
  auto it = tables_.find(id);
  return it == tables_.end() ? nullptr : &it->second;
}

const Table* PartitionStore::GetTable(TableId id) const {
  auto it = tables_.find(id);
  return it == tables_.end() ? nullptr : &it->second;
}

}  // namespace ecdb
