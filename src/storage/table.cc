#include "storage/table.h"

#include <utility>

namespace ecdb {

Table::Table(TableId id, std::string name, uint32_t num_columns)
    : id_(id), name_(std::move(name)), num_columns_(num_columns) {}

Status Table::Insert(Key key) {
  return InsertWith(key, std::vector<uint64_t>(num_columns_, 0));
}

Status Table::InsertWith(Key key, std::vector<uint64_t> columns) {
  columns.resize(num_columns_, 0);
  Row row;
  row.key = key;
  row.columns = std::move(columns);
  auto [slot, inserted] = rows_.Emplace(key, std::move(row));
  (void)slot;
  if (!inserted) {
    return Status::AlreadyExists("key already in table " + name_);
  }
  return Status::OK();
}

Result<const Row*> Table::Get(Key key) const {
  const Row* row = rows_.Find(key);
  if (row == nullptr) return Status::NotFound();
  return row;
}

Result<Row*> Table::GetMutable(Key key) {
  Row* row = rows_.Find(key);
  if (row == nullptr) return Status::NotFound();
  return row;
}

Status Table::Erase(Key key) {
  if (!rows_.Erase(key)) return Status::NotFound();
  return Status::OK();
}

Status PartitionStore::CreateTable(TableId id, const std::string& name,
                                   uint32_t num_columns) {
  auto [slot, inserted] = tables_.Emplace(id, Table(id, name, num_columns));
  (void)slot;
  if (!inserted) return Status::AlreadyExists("table id in use");
  return Status::OK();
}

Table* PartitionStore::GetTable(TableId id) { return tables_.Find(id); }

const Table* PartitionStore::GetTable(TableId id) const {
  return tables_.Find(id);
}

}  // namespace ecdb
