#ifndef ECDB_STORAGE_TABLE_H_
#define ECDB_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "common/operation.h"
#include "common/status.h"
#include "common/types.h"

namespace ecdb {

/// A row: primary key plus fixed-width columns. The evaluation workloads
/// never inspect payload bytes, so columns are modeled as 64-bit words; a
/// YCSB row (10 x 100B fields) is simulated with configurable column count.
struct Row {
  Key key = 0;
  std::vector<uint64_t> columns;

  /// Bumped on every committed write; lets tests verify atomicity (all of a
  /// transaction's writes applied or none).
  uint64_t version = 0;
};

/// Hash-indexed in-memory table, single-partition. Not thread-safe: in both
/// runtimes a partition is touched only by its owning node (shared-nothing),
/// and the threaded runtime serializes access through the node's event loop.
/// Rows live in an open-addressing FlatMap, so the per-operation row lookup
/// (the innermost step of every transaction) is a mix + mask + short probe
/// with no bucket chain to chase.
class Table {
 public:
  /// Empty placeholder table (needed by FlatMap slot storage); only tables
  /// made through the value constructor are ever reachable via GetTable.
  Table() = default;

  /// Creates a table whose rows have `num_columns` columns.
  Table(TableId id, std::string name, uint32_t num_columns);

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }
  uint32_t num_columns() const { return num_columns_; }
  size_t size() const { return rows_.size(); }

  /// Pre-sizes the row index for `n` rows so a bulk load performs no
  /// rehash mid-fill (the workload loaders call this before inserting).
  void Reserve(size_t n) { rows_.Reserve(n); }

  /// Inserts a row with all columns zero. Fails with AlreadyExists.
  Status Insert(Key key);

  /// Inserts a row with the given column values (padded/truncated to the
  /// schema width). Fails with AlreadyExists.
  Status InsertWith(Key key, std::vector<uint64_t> columns);

  /// Returns the row or NotFound. The pointer is valid only until the next
  /// mutation of the table: Insert can rehash the row index and Erase
  /// backward-shifts rows into the vacated slot, either of which moves rows
  /// in memory. Do not hold it across Insert/InsertWith/Erase/Reserve.
  Result<const Row*> Get(Key key) const;

  /// Mutable access for the execution engine. Returns NotFound if absent.
  /// Same validity contract as Get.
  Result<Row*> GetMutable(Key key);

  /// Removes a row; NotFound if absent.
  Status Erase(Key key);

 private:
  TableId id_ = 0;
  std::string name_;
  uint32_t num_columns_ = 0;
  FlatMap<Key, Row> rows_;
};

/// All tables owned by one partition. A node hosts exactly one partition in
/// the paper's deployment (partition-per-server), which we mirror.
class PartitionStore {
 public:
  explicit PartitionStore(PartitionId id) : id_(id) {}

  PartitionId id() const { return id_; }

  /// Creates a table; the same (id, schema) must be created on every
  /// partition that stores a slice of it. Fails with AlreadyExists.
  Status CreateTable(TableId id, const std::string& name,
                     uint32_t num_columns);

  /// Returns the table or nullptr. The pointer is valid until the next
  /// CreateTable (which may rehash the table index).
  Table* GetTable(TableId id);
  const Table* GetTable(TableId id) const;

  size_t num_tables() const { return tables_.size(); }

 private:
  PartitionId id_;
  FlatMap<TableId, Table> tables_;
};

/// Maps a key to the partition that owns it. The paper's ExpoDB hashes keys
/// to partitions; YCSB uses key % partitions and TPC-C partitions by
/// warehouse. A `KeyPartitioner` captures that policy.
class KeyPartitioner {
 public:
  explicit KeyPartitioner(uint32_t num_partitions)
      : num_partitions_(num_partitions) {}

  uint32_t num_partitions() const { return num_partitions_; }

  /// Default policy: modulo. Workloads that encode the partition into the
  /// key (TPC-C warehouse id) arrange their key encoding so this is exact.
  PartitionId PartitionOf(Key key) const {
    return static_cast<PartitionId>(key % num_partitions_);
  }

 private:
  uint32_t num_partitions_;
};

}  // namespace ecdb

#endif  // ECDB_STORAGE_TABLE_H_
