#ifndef ECDB_NET_MESSAGE_H_
#define ECDB_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/cow_vector.h"
#include "common/operation.h"
#include "common/types.h"

namespace ecdb {

/// Wire-level message kinds exchanged between nodes. The first group is the
/// commit-protocol vocabulary shared by 2PC, 3PC and EasyCommit; the second
/// group implements the termination protocol (leader election + state
/// query); the last group carries transaction execution between partitions.
enum class MsgType : uint8_t {
  // --- Atomic commitment ---
  kPrepare,       // coordinator -> cohorts: start voting
  kVoteCommit,    // cohort -> coordinator
  kVoteAbort,     // cohort -> coordinator
  kPreCommit,     // 3PC only: coordinator -> cohorts (Prepare-to-Commit)
  kPreCommitAck,  // 3PC only: cohort -> coordinator
  kGlobalCommit,  // global decision; in EC also forwarded cohort->everyone
  kGlobalAbort,   // global decision; in EC also forwarded cohort->everyone
  kAck,           // 2PC/3PC: cohort acknowledges global decision

  // --- Termination protocol (run by active nodes after a timeout) ---
  kTermElect,         // announce election for a transaction's leadership
  kTermStateRequest,  // leader -> active participants: report your state
  kTermStateReply,    // participant -> leader: state + known decision

  // --- Transaction execution ---
  kRemoteExec,      // coordinator -> remote partition: run these operations
  kRemoteExecOk,    // remote partition -> coordinator: fragment succeeded
  kRemoteExecFail,  // remote partition -> coordinator: conflict, must abort
  kRemoteRollback,  // coordinator -> remote partition: undo fragment

  /// Sentinel: number of wire message types. Keep last. Sizing per-type
  /// counter arrays off this (never off the last named enumerator) means a
  /// new message type can't silently alias another type's counter slot.
  kMsgTypeCount,
};

/// Returns a short name like "Prepare" or "GlobalCommit".
std::string ToString(MsgType type);

/// Commit-protocol state of a cohort as reported to a termination-protocol
/// leader. Mirrors the paper's state diagrams (Figures 1, 2, 4 and the
/// expanded Figure 6 with the hidden TRANSMIT states).
enum class CohortState : uint8_t {
  kInitial,    // has not voted yet
  kReady,      // voted commit, awaiting decision
  kWait,       // coordinator only: collecting votes
  kPreCommit,  // 3PC only: received Prepare-to-Commit
  kTransmitA,  // EC hidden state: decision=abort known, still forwarding
  kTransmitC,  // EC hidden state: decision=commit known, still forwarding
  kAborted,    // terminal
  kCommitted,  // terminal
};

/// Returns a short name like "READY" or "TRANSMIT-C".
std::string ToString(CohortState state);

/// A message between two nodes. One flat struct serves every message kind;
/// unused fields stay at their defaults. (The real system serializes over
/// TCP; here the struct *is* the wire format, and `ApproximateBytes` models
/// its serialized size for network accounting.)
struct Message {
  MsgType type = MsgType::kPrepare;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  TxnId txn = kInvalidTxn;

  /// All transaction participants (coordinator first). The paper extends
  /// the Global-* messages with exactly this field so EC cohorts know whom
  /// to forward the decision to (Section 5.3); we also piggyback it on
  /// Prepare so cohorts can run the termination protocol.
  ///
  /// Copy-on-write: copying a Message shares this list, so broadcasting a
  /// decision to n cohorts (and EC's n^2 cohort re-broadcast) performs one
  /// allocation total, not one deep copy per recipient.
  CowVector<NodeId> participants;

  /// True when a Global-* message is a cohort-side forward (EC second
  /// phase) rather than the coordinator's original transmission.
  bool forwarded = false;

  /// Termination protocol payload: reporting node's state and, if it knows
  /// one, the global decision.
  CohortState term_state = CohortState::kInitial;
  bool has_decision = false;
  Decision decision = Decision::kAbort;

  /// Execution payload for kRemoteExec. Copy-on-write, like participants.
  CowVector<Operation> ops;

  /// kRemoteExec: whether the whole transaction performs writes anywhere
  /// (write-free multi-partition transactions skip the commit protocol, so
  /// the fragment must not wait for a Prepare).
  bool txn_has_writes = false;

  /// kRemoteExec: the transaction's WAIT_DIE priority timestamp.
  uint64_t priority_ts = 0;

  /// Per-sender trace sequence number, stamped by hosts when tracing is
  /// enabled so a receive event can name the exact send it pairs with.
  /// Observability-only: excluded from ApproximateBytes (a real system
  /// would ship it in a debug header, not the protocol payload).
  uint64_t trace_seq = 0;

  /// Estimated serialized size in bytes, used by the network model.
  size_t ApproximateBytes() const;
};

}  // namespace ecdb

#endif  // ECDB_NET_MESSAGE_H_
