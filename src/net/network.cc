#include "net/network.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace ecdb {

SimNetwork::SimNetwork(Scheduler* scheduler, NetworkConfig config,
                       uint64_t seed)
    : scheduler_(scheduler), config_(config), rng_(seed) {}

void SimNetwork::RegisterNode(NodeId node, Handler handler) {
  if (node >= handlers_.size()) handlers_.resize(node + 1);
  handlers_[node] = std::move(handler);
}

bool SimNetwork::LinkDown(NodeId a, NodeId b) const {
  if (links_down_.empty()) return false;
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  return links_down_.count(LinkKey(lo, hi)) > 0;
}

Micros SimNetwork::SampleLatency(const Message& msg, size_t bytes) {
  Micros latency = config_.base_latency_us;
  if (config_.jitter_us > 0) {
    latency += rng_.NextBounded(config_.jitter_us + 1);
  }
  if (config_.per_byte_us > 0.0) {
    latency += static_cast<Micros>(config_.per_byte_us *
                                   static_cast<double>(bytes));
  }
  if (!extra_delay_.empty()) {
    auto it = extra_delay_.find(LinkKey(msg.src, msg.dst));
    if (it != extra_delay_.end()) latency += it->second;
  }
  return latency;
}

void SimNetwork::Send(Message msg) {
  if (send_filter_ && !send_filter_(msg)) return;

  // A crashed node cannot put a message on the wire, so nothing it "sends"
  // reaches the traffic counters — only the dedicated from-crashed counter.
  // Checked before any accounting so the message-complexity ablations don't
  // credit dead nodes with network work.
  if (IsCrashed(msg.src)) {
    stats_.messages_from_crashed++;
    return;
  }

  const size_t bytes = msg.ApproximateBytes();  // computed once per send
  stats_.messages_sent++;
  stats_.bytes_sent += bytes;
  stats_.per_type[msg.type]++;

  if (LinkDown(msg.src, msg.dst)) {
    stats_.messages_dropped++;
    return;
  }
  if (config_.drop_probability > 0.0 &&
      rng_.NextBernoulli(config_.drop_probability)) {
    stats_.messages_dropped++;
    return;
  }

  const Micros latency = SampleLatency(msg, bytes);
  scheduler_->ScheduleAfter(latency, [this, m = std::move(msg)]() {
    // Crash state is evaluated at delivery time: messages in flight toward
    // a node that crashes meanwhile are lost, matching fail-stop semantics.
    if (IsCrashed(m.dst)) {
      stats_.messages_to_crashed++;
      return;
    }
    if (interceptor_ && !interceptor_(m)) {
      stats_.messages_dropped++;
      return;
    }
    if (m.dst >= handlers_.size() || !handlers_[m.dst]) {
      ECDB_LOG(kWarn, "message to unregistered node %u dropped", m.dst);
      return;
    }
    stats_.messages_delivered++;
    handlers_[m.dst](m);
  });
}

void SimNetwork::CrashNode(NodeId node) {
  if (node >= crashed_.size()) crashed_.resize(node + 1, 0);
  crashed_[node] = 1;
}

void SimNetwork::RecoverNode(NodeId node) {
  if (node < crashed_.size()) crashed_[node] = 0;
}

void SimNetwork::SetLinkDown(NodeId a, NodeId b, bool down) {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  if (down) {
    links_down_.insert(LinkKey(lo, hi));
  } else {
    links_down_.erase(LinkKey(lo, hi));
  }
}

void SimNetwork::SetExtraDelay(NodeId a, NodeId b, Micros extra_us) {
  if (extra_us == 0) {
    extra_delay_.erase(LinkKey(a, b));
  } else {
    extra_delay_[LinkKey(a, b)] = extra_us;
  }
}

void SimNetwork::SetDeliveryInterceptor(DeliveryInterceptor interceptor) {
  interceptor_ = std::move(interceptor);
}

void SimNetwork::SetSendFilter(SendFilter filter) {
  send_filter_ = std::move(filter);
}

}  // namespace ecdb
