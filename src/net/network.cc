#include "net/network.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace ecdb {

SimNetwork::SimNetwork(Scheduler* scheduler, NetworkConfig config,
                       uint64_t seed)
    : scheduler_(scheduler), config_(config), rng_(seed) {}

void SimNetwork::RegisterNode(NodeId node, Handler handler) {
  if (node >= handlers_.size()) handlers_.resize(node + 1);
  handlers_[node] = std::move(handler);
}

bool SimNetwork::LinkDown(NodeId a, NodeId b) const {
  if (links_down_.empty()) return false;
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  return links_down_.Contains(LinkKey(lo, hi));
}

Micros SimNetwork::SampleLatency(const Message& msg, size_t bytes) {
  Micros latency = config_.base_latency_us;
  if (config_.jitter_us > 0) {
    latency += rng_.NextBounded(config_.jitter_us + 1);
  }
  if (config_.per_byte_us > 0.0) {
    latency += static_cast<Micros>(config_.per_byte_us *
                                   static_cast<double>(bytes));
  }
  if (!extra_delay_.empty()) {
    const Micros* extra = extra_delay_.Find(LinkKey(msg.src, msg.dst));
    if (extra != nullptr) latency += *extra;
  }
  return latency;
}

void SimNetwork::Send(Message msg) {
  if (send_filter_ && !send_filter_(msg)) return;

  // A crashed node cannot put a message on the wire, so nothing it "sends"
  // reaches the traffic counters — only the dedicated from-crashed counter.
  // Checked before any accounting so the message-complexity ablations don't
  // credit dead nodes with network work.
  if (IsCrashed(msg.src)) {
    stats_.messages_from_crashed++;
    return;
  }

  const size_t bytes = msg.ApproximateBytes();  // computed once per send
  stats_.messages_sent++;
  stats_.bytes_sent += bytes;
  stats_.per_type[msg.type]++;

  if (LinkDown(msg.src, msg.dst)) {
    stats_.messages_dropped++;
    return;
  }

  if (coalesce_) {
    // Loss and latency are per-frame decisions: drawn at flush time, once
    // per frame, so they move to FlushCoalesced.
    AppendToFrame(std::move(msg));
    return;
  }

  if (config_.drop_probability > 0.0 &&
      rng_.NextBernoulli(config_.drop_probability)) {
    stats_.messages_dropped++;
    return;
  }

  const Micros latency = SampleLatency(msg, bytes);
  scheduler_->ScheduleAfter(latency, [this, m = std::move(msg)]() {
    // Crash state is evaluated at delivery time: messages in flight toward
    // a node that crashes meanwhile are lost, matching fail-stop semantics.
    if (IsCrashed(m.dst)) {
      stats_.messages_to_crashed++;
      return;
    }
    if (interceptor_ && !interceptor_(m)) {
      stats_.messages_dropped++;
      return;
    }
    if (m.dst >= handlers_.size() || !handlers_[m.dst]) {
      ECDB_LOG(kWarn, "message to unregistered node %u dropped", m.dst);
      return;
    }
    stats_.messages_delivered++;
    handlers_[m.dst](m);
  });
}

void SimNetwork::EnableCoalescing(bool on) {
  if (on == coalesce_) return;
  if (!on) FlushCoalesced();  // open frames still go out coalesced
  coalesce_ = on;
  if (on) {
    scheduler_->SetPostStepHook(&SimNetwork::FlushHookThunk, this);
  } else {
    scheduler_->SetPostStepHook(nullptr, nullptr);
  }
}

void SimNetwork::AppendToFrame(Message msg) {
  // One hash probe per message: an existing live entry means this step
  // already opened a frame on the link. The table holds only links that
  // ever carried coalesced traffic — O(active links), not O(n^2) — and a
  // flush invalidates all entries at once via the epoch stamp.
  LinkSlot& slot = slot_by_link_[LinkKey(msg.src, msg.dst)];
  if (slot.epoch == flush_epoch_) {
    open_frames_[slot.idx].frame.messages.push_back(std::move(msg));
    return;
  }
  if (num_open_ == open_frames_.size()) open_frames_.emplace_back();
  slot.epoch = flush_epoch_;
  slot.idx = static_cast<uint32_t>(num_open_);
  OpenFrame& of = open_frames_[num_open_++];
  of.frame.src = msg.src;
  of.frame.dst = msg.dst;
  of.frame.messages.push_back(std::move(msg));
}

Micros SimNetwork::FrameLatency(const MessageFrame& frame) {
  Micros latency = config_.base_latency_us;
  if (config_.jitter_us > 0) {
    latency += rng_.NextBounded(config_.jitter_us + 1);
  }
  if (config_.per_byte_us > 0.0) {
    // The frame ships one header for all its messages; charge the actual
    // wire size, which is where coalescing's bandwidth saving shows up.
    latency += static_cast<Micros>(config_.per_byte_us *
                                   static_cast<double>(frame.WireBytes()));
  }
  if (!extra_delay_.empty()) {
    const Micros* extra = extra_delay_.Find(LinkKey(frame.src, frame.dst));
    if (extra != nullptr) latency += *extra;
  }
  return latency;
}

uint32_t SimNetwork::AcquireFlightBatch() {
  if (!free_flight_.empty()) {
    const uint32_t idx = free_flight_.back();
    free_flight_.pop_back();
    return idx;
  }
  flight_.emplace_back();
  return static_cast<uint32_t>(flight_.size() - 1);
}

void SimNetwork::FlushCoalesced() {
  if (num_open_ == 0) return;
  const size_t n = num_open_;
  num_open_ = 0;
  flush_epoch_++;  // invalidates every LinkSlot in O(1)
  // Pass 1, in frame-creation order so the RNG stream is deterministic:
  // one loss coin and one latency sample per frame.
  for (size_t i = 0; i < n; ++i) {
    OpenFrame& of = open_frames_[i];
    stats_.frames_sent++;
    stats_.messages_coalesced += of.frame.messages.size() - 1;
    if (config_.drop_probability > 0.0 &&
        rng_.NextBernoulli(config_.drop_probability)) {
      // A lost frame loses every message inside it.
      stats_.messages_dropped += of.frame.messages.size();
      of.frame.messages.clear();
      of.consumed = true;
      continue;
    }
    of.consumed = false;
    of.latency = FrameLatency(of.frame);
  }
  // Pass 2: frames arriving at the same instant share one delivery event —
  // on a jitter-free network this collapses a whole broadcast step into a
  // single scheduler entry.
  for (size_t i = 0; i < n; ++i) {
    if (open_frames_[i].consumed) continue;
    const Micros latency = open_frames_[i].latency;
    const uint32_t bi = AcquireFlightBatch();
    FlightBatch& batch = flight_[bi];
    for (size_t j = i; j < n; ++j) {
      OpenFrame& of = open_frames_[j];
      if (of.consumed || of.latency != latency) continue;
      if (batch.used == batch.frames.size()) batch.frames.emplace_back();
      MessageFrame& slot = batch.frames[batch.used++];
      slot.src = of.frame.src;
      slot.dst = of.frame.dst;
      slot.messages.swap(of.frame.messages);  // both keep their capacity
      of.frame.messages.clear();
      of.consumed = true;
    }
    scheduler_->ScheduleAfter(latency, [this, bi]() { DeliverBatch(bi); });
  }
}

void SimNetwork::DeliverBatch(uint32_t batch_idx) {
  FlightBatch& batch = flight_[batch_idx];
  for (size_t i = 0; i < batch.used; ++i) {
    MessageFrame& frame = batch.frames[i];
    for (Message& m : frame.messages) {
      // Per-message delivery checks, matching the uncoalesced path: the
      // interceptor may crash the destination mid-frame, so crash state is
      // re-read for every message.
      if (IsCrashed(frame.dst)) {
        stats_.messages_to_crashed++;
        continue;
      }
      if (interceptor_ && !interceptor_(m)) {
        stats_.messages_dropped++;
        continue;
      }
      if (frame.dst >= handlers_.size() || !handlers_[frame.dst]) {
        ECDB_LOG(kWarn, "message to unregistered node %u dropped", frame.dst);
        continue;
      }
      stats_.messages_delivered++;
      handlers_[frame.dst](m);
    }
    frame.messages.clear();
  }
  batch.used = 0;
  free_flight_.push_back(batch_idx);
}

void SimNetwork::CrashNode(NodeId node) {
  if (node >= crashed_.size()) crashed_.resize(node + 1, 0);
  crashed_[node] = 1;
}

void SimNetwork::RecoverNode(NodeId node) {
  if (node < crashed_.size()) crashed_[node] = 0;
}

void SimNetwork::SetLinkDown(NodeId a, NodeId b, bool down) {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  if (down) {
    links_down_[LinkKey(lo, hi)] = 1;
  } else {
    links_down_.Erase(LinkKey(lo, hi));
  }
}

void SimNetwork::SetExtraDelay(NodeId a, NodeId b, Micros extra_us) {
  if (extra_us == 0) {
    extra_delay_.Erase(LinkKey(a, b));
  } else {
    extra_delay_[LinkKey(a, b)] = extra_us;
  }
}

void SimNetwork::SetDeliveryInterceptor(DeliveryInterceptor interceptor) {
  interceptor_ = std::move(interceptor);
}

void SimNetwork::SetSendFilter(SendFilter filter) {
  send_filter_ = std::move(filter);
}

}  // namespace ecdb
