#include "net/channel.h"

#include <utility>

namespace ecdb {

void MessageChannel::Push(Message msg) {
  bool was_empty;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    was_empty = queue_.empty();
    queue_.push_back(std::move(msg));
  }
  // Only the empty -> non-empty transition can have a sleeping consumer:
  // PopAll drains the whole queue under the lock, so while messages remain
  // the consumer is awake and will swap them out without waiting.
  if (was_empty) cv_.notify_one();
}

bool MessageChannel::PopAll(std::vector<Message>* out,
                            std::chrono::microseconds timeout) {
  out->clear();
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.empty() && !closed_) {
    cv_.wait_for(lock, timeout, [this] { return !queue_.empty() || closed_; });
  }
  if (queue_.empty()) return false;  // timed out, or closed and drained
  // Swap rather than move: the consumer's drained buffer becomes the next
  // produce buffer, so steady state runs allocation-free in both
  // directions.
  queue_.swap(*out);
  return true;
}

bool MessageChannel::Pop(Message* out, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, timeout,
                    [this] { return !queue_.empty() || closed_; })) {
    return false;
  }
  if (queue_.empty()) return false;  // closed and drained
  *out = std::move(queue_.front());
  queue_.erase(queue_.begin());
  return true;
}

bool MessageChannel::TryPop(Message* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.erase(queue_.begin());
  return true;
}

void MessageChannel::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t MessageChannel::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

ThreadNetwork::ThreadNetwork(size_t num_nodes)
    : channels_(num_nodes), crashed_(num_nodes) {
  for (auto& ch : channels_) ch = std::make_unique<MessageChannel>();
  for (auto& c : crashed_) c.store(false, std::memory_order_relaxed);
}

void ThreadNetwork::Send(Message msg) {
  if (msg.dst >= channels_.size()) return;
  if (crashed_[msg.src].load(std::memory_order_relaxed)) {
    from_crashed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (crashed_[msg.dst].load(std::memory_order_relaxed)) {
    to_crashed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  channels_[msg.dst]->Push(std::move(msg));
}

void ThreadNetwork::CrashNode(NodeId node) {
  crashed_[node].store(true, std::memory_order_relaxed);
}

void ThreadNetwork::RecoverNode(NodeId node) {
  crashed_[node].store(false, std::memory_order_relaxed);
}

bool ThreadNetwork::IsCrashed(NodeId node) const {
  return crashed_[node].load(std::memory_order_relaxed);
}

void ThreadNetwork::Shutdown() {
  for (auto& ch : channels_) ch->Close();
}

}  // namespace ecdb
