#include "net/channel.h"

#include <algorithm>
#include <utility>

namespace ecdb {
namespace {

// SplitMix64: cheap, well-mixed hash for thread-safe loss sampling (a
// shared Rng would need a lock on the Send path).
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

void MessageChannel::Push(Message msg) {
  bool was_empty;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    was_empty = queue_.empty();
    queue_.push_back(std::move(msg));
  }
  // Only the empty -> non-empty transition can have a sleeping consumer:
  // PopAll drains the whole queue under the lock, so while messages remain
  // the consumer is awake and will swap them out without waiting.
  if (was_empty) cv_.notify_one();
}

void MessageChannel::PushBatch(std::vector<Message>* msgs) {
  if (msgs->empty()) return;
  bool was_empty;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      msgs->clear();
      return;
    }
    was_empty = queue_.empty();
    for (Message& m : *msgs) queue_.push_back(std::move(m));
  }
  msgs->clear();
  if (was_empty) cv_.notify_one();
}

bool MessageChannel::PopAll(std::vector<Message>* out,
                            std::chrono::microseconds timeout) {
  out->clear();
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.empty() && !closed_) {
    cv_.wait_for(lock, timeout, [this] { return !queue_.empty() || closed_; });
  }
  if (queue_.empty()) return false;  // timed out, or closed and drained
  // Swap rather than move: the consumer's drained buffer becomes the next
  // produce buffer, so steady state runs allocation-free in both
  // directions.
  queue_.swap(*out);
  return true;
}

bool MessageChannel::Pop(Message* out, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, timeout,
                    [this] { return !queue_.empty() || closed_; })) {
    return false;
  }
  if (queue_.empty()) return false;  // closed and drained
  *out = std::move(queue_.front());
  queue_.erase(queue_.begin());
  return true;
}

bool MessageChannel::TryPop(Message* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.erase(queue_.begin());
  return true;
}

void MessageChannel::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t MessageChannel::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

ThreadNetwork::ThreadNetwork(size_t num_nodes)
    : channels_(num_nodes), crashed_(num_nodes) {
  for (auto& ch : channels_) ch = std::make_unique<MessageChannel>();
  for (auto& c : crashed_) c.store(false, std::memory_order_relaxed);
}

ThreadNetwork::~ThreadNetwork() { Shutdown(); }

void ThreadNetwork::Send(Message msg) {
  if (msg.dst >= channels_.size()) return;
  if (crashed_[msg.src].load(std::memory_order_relaxed)) {
    from_crashed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (faults_armed_.load(std::memory_order_acquire)) {
    FaultSend(std::move(msg));
    return;
  }
  if (crashed_[msg.dst].load(std::memory_order_relaxed)) {
    to_crashed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  channels_[msg.dst]->Push(std::move(msg));
}

void ThreadNetwork::SendBatch(NodeId src, NodeId dst,
                              std::vector<Message>* msgs) {
  if (msgs->empty()) return;
  if (dst >= channels_.size()) {
    msgs->clear();
    return;
  }
  if (crashed_[src].load(std::memory_order_relaxed)) {
    from_crashed_.fetch_add(msgs->size(), std::memory_order_relaxed);
    msgs->clear();
    return;
  }
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  coalesced_.fetch_add(msgs->size() - 1, std::memory_order_relaxed);
  if (faults_armed_.load(std::memory_order_acquire)) {
    // Fault semantics (loss, link cuts, delays) stay per message.
    for (Message& m : *msgs) FaultSend(std::move(m));
    msgs->clear();
    return;
  }
  if (crashed_[dst].load(std::memory_order_relaxed)) {
    to_crashed_.fetch_add(msgs->size(), std::memory_order_relaxed);
    msgs->clear();
    return;
  }
  channels_[dst]->PushBatch(msgs);
}

void ThreadNetwork::FaultSend(Message msg) {
  // Counter order mirrors SimNetwork: a message the loss model or a cut
  // link eats *was* sent (counts in sent and dropped); one that hits a
  // crashed destination counts in sent and to_crashed.
  sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(msg.ApproximateBytes(), std::memory_order_relaxed);
  per_type_[static_cast<size_t>(msg.type)].fetch_add(
      1, std::memory_order_relaxed);

  bool down;
  double loss;
  Micros delay;
  {
    std::lock_guard<std::mutex> lock(fault_mu_);
    const uint64_t uk = UndirectedKey(msg.src, msg.dst);
    down = links_down_.count(uk) != 0;
    loss = loss_probability_;
    auto ll = link_loss_.find(uk);
    if (ll != link_loss_.end()) loss = std::max(loss, ll->second);
    auto ed = extra_delay_.find(DirectedKey(msg.src, msg.dst));
    delay = ed != extra_delay_.end() ? ed->second : 0;
  }
  if (down) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (loss > 0.0) {
    const uint64_t n = fault_counter_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t seed = fault_seed_.load(std::memory_order_relaxed);
    if (HashToUnit(SplitMix64(seed ^ n)) < loss) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  if (delay > 0) {
    {
      std::lock_guard<std::mutex> lock(delay_mu_);
      if (!delay_stop_) {
        delayed_.push_back(
            {std::chrono::steady_clock::now() +
                 std::chrono::microseconds(delay),
             std::move(msg)});
      }
    }
    delay_cv_.notify_one();
    return;
  }
  Deliver(std::move(msg));
}

void ThreadNetwork::Deliver(Message msg) {
  if (crashed_[msg.dst].load(std::memory_order_relaxed)) {
    to_crashed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  channels_[msg.dst]->Push(std::move(msg));
  delivered_.fetch_add(1, std::memory_order_relaxed);
}

void ThreadNetwork::DelayPump() {
  std::unique_lock<std::mutex> lock(delay_mu_);
  while (!delay_stop_) {
    if (delayed_.empty()) {
      delay_cv_.wait(lock);
      continue;
    }
    auto min_it = std::min_element(
        delayed_.begin(), delayed_.end(),
        [](const DelayedMessage& a, const DelayedMessage& b) {
          return a.due < b.due;
        });
    if (min_it->due > std::chrono::steady_clock::now()) {
      delay_cv_.wait_until(lock, min_it->due);
      continue;  // re-scan: the set may have changed while waiting
    }
    Message msg = std::move(min_it->msg);
    *min_it = std::move(delayed_.back());
    delayed_.pop_back();
    lock.unlock();
    Deliver(std::move(msg));
    lock.lock();
  }
}

void ThreadNetwork::EnsurePumpLocked() {
  if (!delay_thread_.joinable()) {
    delay_thread_ = std::thread([this] { DelayPump(); });
  }
}

void ThreadNetwork::SetLinkDown(NodeId a, NodeId b, bool down) {
  {
    std::lock_guard<std::mutex> lock(fault_mu_);
    if (down) {
      links_down_.insert(UndirectedKey(a, b));
    } else {
      links_down_.erase(UndirectedKey(a, b));
    }
  }
  Arm();
}

void ThreadNetwork::SetLossProbability(double p) {
  {
    std::lock_guard<std::mutex> lock(fault_mu_);
    loss_probability_ = p;
  }
  Arm();
}

void ThreadNetwork::SetLinkLoss(NodeId a, NodeId b, double p) {
  {
    std::lock_guard<std::mutex> lock(fault_mu_);
    if (p > 0.0) {
      link_loss_[UndirectedKey(a, b)] = p;
    } else {
      link_loss_.erase(UndirectedKey(a, b));
    }
  }
  Arm();
}

void ThreadNetwork::SetExtraDelay(NodeId a, NodeId b, Micros extra_us) {
  {
    std::lock_guard<std::mutex> lock(fault_mu_);
    if (extra_us > 0) {
      extra_delay_[DirectedKey(a, b)] = extra_us;
    } else {
      extra_delay_.erase(DirectedKey(a, b));
    }
  }
  if (extra_us > 0) {
    std::lock_guard<std::mutex> lock(delay_mu_);
    if (!delay_stop_) EnsurePumpLocked();
  }
  Arm();
}

void ThreadNetwork::SetFaultSeed(uint64_t seed) {
  fault_seed_.store(seed, std::memory_order_relaxed);
}

void ThreadNetwork::ClearFaults() {
  std::lock_guard<std::mutex> lock(fault_mu_);
  loss_probability_ = 0.0;
  links_down_.clear();
  link_loss_.clear();
  extra_delay_.clear();
}

NetworkStats ThreadNetwork::stats() const {
  NetworkStats s;
  s.messages_sent = sent_.load(std::memory_order_relaxed);
  s.messages_delivered = delivered_.load(std::memory_order_relaxed);
  s.messages_dropped = dropped_.load(std::memory_order_relaxed);
  s.messages_to_crashed = to_crashed_.load(std::memory_order_relaxed);
  s.messages_from_crashed = from_crashed_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_.load(std::memory_order_relaxed);
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.messages_coalesced = coalesced_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < per_type_.size(); ++i) {
    s.per_type[static_cast<MsgType>(i)] =
        per_type_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void ThreadNetwork::CrashNode(NodeId node) {
  crashed_[node].store(true, std::memory_order_relaxed);
}

void ThreadNetwork::RecoverNode(NodeId node) {
  crashed_[node].store(false, std::memory_order_relaxed);
}

bool ThreadNetwork::IsCrashed(NodeId node) const {
  return crashed_[node].load(std::memory_order_relaxed);
}

void ThreadNetwork::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(delay_mu_);
    delay_stop_ = true;
    delayed_.clear();  // pending delayed messages die with the network
  }
  delay_cv_.notify_all();
  if (delay_thread_.joinable()) delay_thread_.join();
  for (auto& ch : channels_) ch->Close();
}

}  // namespace ecdb
