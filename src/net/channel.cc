#include "net/channel.h"

#include <utility>

namespace ecdb {

void MessageChannel::Push(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
}

bool MessageChannel::Pop(Message* out, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, timeout,
                    [this] { return !queue_.empty() || closed_; })) {
    return false;
  }
  if (queue_.empty()) return false;  // closed and drained
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

bool MessageChannel::TryPop(Message* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void MessageChannel::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t MessageChannel::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

ThreadNetwork::ThreadNetwork(size_t num_nodes)
    : channels_(num_nodes), crashed_(num_nodes) {
  for (auto& ch : channels_) ch = std::make_unique<MessageChannel>();
  for (auto& c : crashed_) c.store(false, std::memory_order_relaxed);
}

void ThreadNetwork::Send(Message msg) {
  if (msg.dst >= channels_.size()) return;
  if (crashed_[msg.src].load(std::memory_order_relaxed)) return;
  if (crashed_[msg.dst].load(std::memory_order_relaxed)) return;
  channels_[msg.dst]->Push(std::move(msg));
}

void ThreadNetwork::CrashNode(NodeId node) {
  crashed_[node].store(true, std::memory_order_relaxed);
}

void ThreadNetwork::RecoverNode(NodeId node) {
  crashed_[node].store(false, std::memory_order_relaxed);
}

bool ThreadNetwork::IsCrashed(NodeId node) const {
  return crashed_[node].load(std::memory_order_relaxed);
}

void ThreadNetwork::Shutdown() {
  for (auto& ch : channels_) ch->Close();
}

}  // namespace ecdb
