#ifndef ECDB_NET_NETWORK_H_
#define ECDB_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/flat_map.h"
#include "common/rng.h"
#include "common/types.h"
#include "net/frame.h"
#include "net/message.h"
#include "sim/scheduler.h"

namespace ecdb {

/// Point-to-point latency and loss model for the simulated network.
struct NetworkConfig {
  /// Mean one-way latency between two distinct nodes, in microseconds.
  /// Default approximates an intra-datacenter LAN hop.
  Micros base_latency_us = 400;

  /// Uniform jitter added to each delivery: U[0, jitter_us].
  Micros jitter_us = 100;

  /// Probability that any given message is silently dropped. The paper's
  /// Section 4 discusses commit protocols under message loss; this knob
  /// exercises that analysis.
  double drop_probability = 0.0;

  /// Per-byte transfer cost (models bandwidth); 0 disables it.
  double per_byte_us = 0.0;
};

/// Dense per-message-type counters. Replaces an unordered_map<MsgType,
/// uint64_t> on the Send hot path with a flat array indexed by the enum;
/// keeps the map-flavored accessors (`at`, `count`, `operator[]`) the
/// ablations and tests already use. `at` of a never-sent type reads 0
/// instead of throwing; `count` reports whether the type was ever counted.
class MsgTypeCounts {
 public:
  static constexpr size_t kNumTypes =
      static_cast<size_t>(MsgType::kMsgTypeCount);
  static_assert(kNumTypes == static_cast<size_t>(MsgType::kRemoteRollback) + 1,
                "MsgType enumerators must stay contiguous with the "
                "kMsgTypeCount sentinel last");

  uint64_t& operator[](MsgType t) { return counts_[Index(t)]; }
  uint64_t at(MsgType t) const { return counts_[Index(t)]; }
  size_t count(MsgType t) const { return counts_[Index(t)] != 0 ? 1 : 0; }

 private:
  static size_t Index(MsgType t) { return static_cast<size_t>(t); }

  std::array<uint64_t, kNumTypes> counts_{};
};

/// Counters describing network activity; used by the message-complexity
/// ablation (EC is O(n^2), 2PC/3PC are O(n)).
///
/// A message from a crashed source never entered the network, so it counts
/// *only* in `messages_from_crashed` — not in `messages_sent`, `bytes_sent`
/// or `per_type`. (Messages the loss model or a cut link eats *were* sent;
/// they count in both `messages_sent` and `messages_dropped`.)
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;       // by the loss model
  uint64_t messages_to_crashed = 0;    // destination was down
  uint64_t messages_from_crashed = 0;  // source was down at send time
  uint64_t bytes_sent = 0;

  /// Coalescing layer: frames put on the wire and the sends they saved
  /// (messages that rode in a frame behind an earlier one). Zero when
  /// coalescing is off; `messages_sent - messages_coalesced == frames_sent`
  /// over any window where every open frame has been flushed.
  uint64_t frames_sent = 0;
  uint64_t messages_coalesced = 0;

  MsgTypeCounts per_type;
};

/// Simulated message-passing network. Delivery is asynchronous: `Send`
/// schedules a delivery event on the shared `Scheduler` after a sampled
/// latency. Fault injection covers the failure models discussed in the
/// paper: node crashes (fail-stop), recovery, message loss, link cuts and
/// targeted per-link delays (the Section 4 message-delay scenario).
class SimNetwork {
 public:
  using Handler = std::function<void(const Message&)>;

  SimNetwork(Scheduler* scheduler, NetworkConfig config, uint64_t seed);
  ~SimNetwork() {
    // Uninstall the flush hook so a scheduler outliving this network can't
    // call into freed memory.
    if (coalesce_) scheduler_->SetPostStepHook(nullptr, nullptr);
  }

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Registers the delivery callback for `node`. Must be called before any
  /// message addressed to `node` is delivered.
  void RegisterNode(NodeId node, Handler handler);

  /// Sends `msg` from `msg.src` to `msg.dst`. The message is dropped if the
  /// source is currently crashed, the destination is crashed *at delivery
  /// time*, the link is cut, or the loss model fires.
  void Send(Message msg);

  // --- Fault injection ---

  /// Fail-stop crash: the node stops sending and receiving. In-flight
  /// messages to it are dropped at delivery time.
  void CrashNode(NodeId node);

  /// Brings a crashed node back. (Protocol-level recovery is the recovery
  /// manager's job; the network only resumes delivery.)
  void RecoverNode(NodeId node);

  bool IsCrashed(NodeId node) const {
    return node < crashed_.size() && crashed_[node] != 0;
  }

  /// Cuts or restores the bidirectional link between `a` and `b`.
  void SetLinkDown(NodeId a, NodeId b, bool down);

  /// Adds a fixed extra delay to every message on the (a -> b) direction.
  void SetExtraDelay(NodeId a, NodeId b, Micros extra_us);

  /// Installs a hook invoked just before each delivery; returning false
  /// suppresses the delivery. Tests use this to crash nodes at exact
  /// protocol points or to reorder/drop specific messages.
  using DeliveryInterceptor = std::function<bool(const Message&)>;
  void SetDeliveryInterceptor(DeliveryInterceptor interceptor);

  /// Installs a hook invoked at Send() time, before the message enters the
  /// network; returning false suppresses the send. Crashing a node from
  /// inside this hook models fail-stop mid-broadcast: the current and all
  /// later sends of the loop never leave the node (the paper's "coordinator
  /// fails after transmitting to X but before Y and Z").
  using SendFilter = std::function<bool(const Message&)>;
  void SetSendFilter(SendFilter filter);

  /// Changes the Bernoulli loss rate mid-run (chaos loss bursts). Only
  /// affects messages sent after the call; in-flight deliveries stand.
  void SetDropProbability(double p) { config_.drop_probability = p; }

  /// Transport-level coalescing: when on, Send() appends to a per-(src,dst)
  /// open frame instead of scheduling a delivery event per message, and the
  /// scheduler's post-step hook flushes every open frame at the end of the
  /// step that produced it. Flushing draws one loss coin and one jitter
  /// sample per *frame* (a dropped frame loses every message inside it) and
  /// collapses frames with the same arrival time into a single delivery
  /// event — EasyCommit's O(n^2) transmit phase becomes O(n) frames and,
  /// on a jitter-free network, O(1) scheduler events per step. Per-message
  /// semantics preserved at the edges: send filter, crashed-source, link
  /// cuts and byte accounting still apply at Send() time; crashed-dest and
  /// the delivery interceptor at delivery time. Turning it off flushes any
  /// open frames first.
  void EnableCoalescing(bool on);
  bool coalescing() const { return coalesce_; }

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats(); }

  const NetworkConfig& config() const { return config_; }

 private:
  /// An open frame accumulating this step's messages toward one
  /// destination. Pooled: slots (and their message vectors' capacity) are
  /// recycled across steps. `latency`/`consumed` are FlushCoalesced
  /// scratch.
  struct OpenFrame {
    Micros latency = 0;
    bool consumed = false;
    MessageFrame frame;
  };

  /// Open-frame slot for one (src,dst) link. Epoch-stamped so a flush
  /// invalidates every entry in O(1); an entry is live only when its epoch
  /// matches `flush_epoch_`. A batched delivery event runs every
  /// recipient's handler in one scheduler step, so a single step can open
  /// O(n^2) frames (the EC transmit phase) — lookup must be O(1), not a
  /// scan over open frames.
  struct LinkSlot {
    uint64_t epoch = 0;
    uint32_t idx = 0;
  };

  /// Frames sharing one arrival time, delivered by one scheduler event.
  /// Pooled and referenced from the event by index, so scheduling a
  /// delivery allocates nothing in steady state.
  struct FlightBatch {
    std::vector<MessageFrame> frames;
    size_t used = 0;
  };

  Micros SampleLatency(const Message& msg, size_t bytes);
  Micros FrameLatency(const MessageFrame& frame);
  bool LinkDown(NodeId a, NodeId b) const;
  void AppendToFrame(Message msg);
  void FlushCoalesced();
  void DeliverBatch(uint32_t batch_idx);
  uint32_t AcquireFlightBatch();

  static void FlushHookThunk(void* self) {
    static_cast<SimNetwork*>(self)->FlushCoalesced();
  }

  static uint64_t LinkKey(NodeId a, NodeId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  Scheduler* scheduler_;
  NetworkConfig config_;
  Rng rng_;
  std::vector<Handler> handlers_;    // indexed by NodeId
  std::vector<uint8_t> crashed_;     // indexed by NodeId; 1 = down
  // All per-link state is keyed by packed (src,dst) and sized by *active*
  // links — links that actually carried traffic or were explicitly faulted
  // — never by num_nodes^2. (The previous stride^2 slot table cost 268 MB
  // at n=4096 before a single message moved.)
  FlatMap<uint64_t, uint8_t> links_down_;    // undirected, min/max key
  FlatMap<uint64_t, Micros> extra_delay_;    // directed
  DeliveryInterceptor interceptor_;
  SendFilter send_filter_;
  NetworkStats stats_;

  bool coalesce_ = false;
  std::vector<OpenFrame> open_frames_;  // [0, num_open_) are this step's
  size_t num_open_ = 0;
  FlatMap<uint64_t, LinkSlot> slot_by_link_;  // links with traffic, ever
  uint64_t flush_epoch_ = 1;
  std::vector<FlightBatch> flight_;
  std::vector<uint32_t> free_flight_;
};

}  // namespace ecdb

#endif  // ECDB_NET_NETWORK_H_
