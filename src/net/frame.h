#ifndef ECDB_NET_FRAME_H_
#define ECDB_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/message.h"

namespace ecdb {

/// A transport frame: every protocol message one node emitted toward one
/// destination within a single scheduler step (simulator) or mailbox drain
/// (threaded runtime), packed into one network-level unit. The coalescing
/// layer delivers (and drops) frames atomically — a lost frame loses every
/// message inside it, exactly like a lost TCP segment carrying a batch.
struct MessageFrame {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::vector<Message> messages;

  /// Serialized size of the frame: header plus the per-message encodings.
  /// This is what the byte-accounting and per-byte latency models charge
  /// for a coalesced send.
  size_t WireBytes() const;

  void Clear() {
    src = kInvalidNode;
    dst = kInvalidNode;
    messages.clear();
  }
};

/// Serializes `frame` into `out` (appended; callers reuse the buffer). The
/// in-memory transports hand Message structs around directly — this codec
/// exists so the wire format is pinned by tests and available to a real
/// socket transport, and so WireBytes() has a ground truth.
void EncodeFrame(const MessageFrame& frame, std::vector<uint8_t>* out);

/// Parses one frame from `data`. Returns false (leaving `out` untouched
/// beyond scratch) on a short buffer, bad magic, checksum mismatch, or
/// trailing garbage.
bool DecodeFrame(const uint8_t* data, size_t size, MessageFrame* out);

inline bool DecodeFrame(const std::vector<uint8_t>& data, MessageFrame* out) {
  return DecodeFrame(data.data(), data.size(), out);
}

}  // namespace ecdb

#endif  // ECDB_NET_FRAME_H_
