#ifndef ECDB_NET_CHANNEL_H_
#define ECDB_NET_CHANNEL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "net/message.h"

namespace ecdb {

/// Thread-safe blocking message queue: the mailbox of one node in the
/// threaded runtime. Multiple producers, single consumer.
///
/// Built as a two-queue swap mailbox: producers append to a flat vector
/// under a short critical section; the consumer swaps the whole vector out
/// with `PopAll` and drains it lock-free. A producer signals the condition
/// variable only on the empty -> non-empty transition, so a burst of n
/// messages costs n short lock holds but at most one wake — under load the
/// consumer is already draining and producers never touch the futex.
class MessageChannel {
 public:
  MessageChannel() = default;
  MessageChannel(const MessageChannel&) = delete;
  MessageChannel& operator=(const MessageChannel&) = delete;

  /// Enqueues a message; wakes a blocked consumer if the mailbox was empty.
  /// No-op after Close().
  void Push(Message msg);

  /// Swaps the entire mailbox contents into `*out` (cleared first; its
  /// capacity is recycled as the next produce buffer), blocking up to
  /// `timeout` for the first message. Returns false on timeout or when the
  /// channel is closed and drained. This is the consumer hot path: one
  /// lock + one swap per burst, regardless of burst size.
  bool PopAll(std::vector<Message>* out, std::chrono::microseconds timeout);

  /// Dequeues the next message, blocking up to `timeout`. Returns false on
  /// timeout or when the channel is closed and drained. One-at-a-time
  /// compatibility path (tests, simple consumers); the runtime uses PopAll.
  bool Pop(Message* out, std::chrono::milliseconds timeout);

  /// Non-blocking dequeue. Returns false when empty.
  bool TryPop(Message* out);

  /// Closes the channel; blocked consumers wake up once it drains.
  void Close();

  size_t Size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Message> queue_;
  bool closed_ = false;
};

/// Message router for the threaded in-process runtime: one mailbox per
/// node, `Send` routes by destination id. Crashing a node stops delivery to
/// and from it, giving the same fail-stop semantics as the simulator.
class ThreadNetwork {
 public:
  explicit ThreadNetwork(size_t num_nodes);

  /// Routes `msg` to the mailbox of `msg.dst`. Messages involving crashed
  /// nodes are dropped (fail-stop) and counted in `messages_from_crashed`
  /// / `messages_to_crashed`, mirroring the simulator's NetworkStats.
  void Send(Message msg);

  /// The receiving mailbox of `node`.
  MessageChannel& channel(NodeId node) { return *channels_[node]; }

  void CrashNode(NodeId node);
  void RecoverNode(NodeId node);
  bool IsCrashed(NodeId node) const;

  /// Messages dropped because the source was crashed at send time.
  uint64_t messages_from_crashed() const {
    return from_crashed_.load(std::memory_order_relaxed);
  }
  /// Messages dropped because the destination was crashed at send time.
  uint64_t messages_to_crashed() const {
    return to_crashed_.load(std::memory_order_relaxed);
  }

  /// Closes every mailbox; node threads drain and exit.
  void Shutdown();

  size_t num_nodes() const { return channels_.size(); }

 private:
  std::vector<std::unique_ptr<MessageChannel>> channels_;
  std::vector<std::atomic<bool>> crashed_;
  std::atomic<uint64_t> from_crashed_{0};
  std::atomic<uint64_t> to_crashed_{0};
};

}  // namespace ecdb

#endif  // ECDB_NET_CHANNEL_H_
