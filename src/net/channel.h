#ifndef ECDB_NET_CHANNEL_H_
#define ECDB_NET_CHANNEL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "net/message.h"

namespace ecdb {

/// Thread-safe blocking message queue: the mailbox of one node in the
/// threaded runtime. Multiple producers, single consumer.
class MessageChannel {
 public:
  MessageChannel() = default;
  MessageChannel(const MessageChannel&) = delete;
  MessageChannel& operator=(const MessageChannel&) = delete;

  /// Enqueues a message; wakes a blocked consumer. No-op after Close().
  void Push(Message msg);

  /// Dequeues the next message, blocking up to `timeout`. Returns false on
  /// timeout or when the channel is closed and drained.
  bool Pop(Message* out, std::chrono::milliseconds timeout);

  /// Non-blocking dequeue. Returns false when empty.
  bool TryPop(Message* out);

  /// Closes the channel; blocked consumers wake up once it drains.
  void Close();

  size_t Size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool closed_ = false;
};

/// Message router for the threaded in-process runtime: one mailbox per
/// node, `Send` routes by destination id. Crashing a node stops delivery to
/// and from it, giving the same fail-stop semantics as the simulator.
class ThreadNetwork {
 public:
  explicit ThreadNetwork(size_t num_nodes);

  /// Routes `msg` to the mailbox of `msg.dst`. Messages involving crashed
  /// nodes are silently dropped (fail-stop).
  void Send(Message msg);

  /// The receiving mailbox of `node`.
  MessageChannel& channel(NodeId node) { return *channels_[node]; }

  void CrashNode(NodeId node);
  void RecoverNode(NodeId node);
  bool IsCrashed(NodeId node) const;

  /// Closes every mailbox; node threads drain and exit.
  void Shutdown();

  size_t num_nodes() const { return channels_.size(); }

 private:
  std::vector<std::unique_ptr<MessageChannel>> channels_;
  std::vector<std::atomic<bool>> crashed_;
};

}  // namespace ecdb

#endif  // ECDB_NET_CHANNEL_H_
