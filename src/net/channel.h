#ifndef ECDB_NET_CHANNEL_H_
#define ECDB_NET_CHANNEL_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "net/message.h"
#include "net/network.h"

namespace ecdb {

/// Thread-safe blocking message queue: the mailbox of one node in the
/// threaded runtime. Multiple producers, single consumer.
///
/// Built as a two-queue swap mailbox: producers append to a flat vector
/// under a short critical section; the consumer swaps the whole vector out
/// with `PopAll` and drains it lock-free. A producer signals the condition
/// variable only on the empty -> non-empty transition, so a burst of n
/// messages costs n short lock holds but at most one wake — under load the
/// consumer is already draining and producers never touch the futex.
class MessageChannel {
 public:
  MessageChannel() = default;
  MessageChannel(const MessageChannel&) = delete;
  MessageChannel& operator=(const MessageChannel&) = delete;

  /// Enqueues a message; wakes a blocked consumer if the mailbox was empty.
  /// No-op after Close().
  void Push(Message msg);

  /// Enqueues a whole batch under one lock hold with at most one wake —
  /// the coalescing layer's channel hop: a frame of n messages costs one
  /// mutex acquisition instead of n. `msgs` is drained (cleared, capacity
  /// kept) so callers recycle their send buffer. No-op after Close().
  void PushBatch(std::vector<Message>* msgs);

  /// Swaps the entire mailbox contents into `*out` (cleared first; its
  /// capacity is recycled as the next produce buffer), blocking up to
  /// `timeout` for the first message. Returns false on timeout or when the
  /// channel is closed and drained. This is the consumer hot path: one
  /// lock + one swap per burst, regardless of burst size.
  bool PopAll(std::vector<Message>* out, std::chrono::microseconds timeout);

  /// Dequeues the next message, blocking up to `timeout`. Returns false on
  /// timeout or when the channel is closed and drained. One-at-a-time
  /// compatibility path (tests, simple consumers); the runtime uses PopAll.
  bool Pop(Message* out, std::chrono::milliseconds timeout);

  /// Non-blocking dequeue. Returns false when empty.
  bool TryPop(Message* out);

  /// Closes the channel; blocked consumers wake up once it drains.
  void Close();

  size_t Size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Message> queue_;
  bool closed_ = false;
};

/// Message router for the threaded in-process runtime: one mailbox per
/// node, `Send` routes by destination id. Crashing a node stops delivery to
/// and from it, giving the same fail-stop semantics as the simulator.
class ThreadNetwork {
 public:
  explicit ThreadNetwork(size_t num_nodes);
  ~ThreadNetwork();

  ThreadNetwork(const ThreadNetwork&) = delete;
  ThreadNetwork& operator=(const ThreadNetwork&) = delete;

  /// Routes `msg` to the mailbox of `msg.dst`. Messages involving crashed
  /// nodes are dropped (fail-stop) and counted in `messages_from_crashed`
  /// / `messages_to_crashed`, mirroring the simulator's NetworkStats.
  void Send(Message msg);

  /// Routes a coalesced frame: every message in `msgs` travels src -> dst
  /// as one PushBatch (one lock, at most one wake) instead of one Push per
  /// message. Crash checks are evaluated once per frame and counted per
  /// message; when the fault path is armed the frame decays to per-message
  /// FaultSend so loss/link/delay semantics match un-coalesced sends.
  /// `msgs` is drained (capacity kept) so the caller recycles its buffer.
  void SendBatch(NodeId src, NodeId dst, std::vector<Message>* msgs);

  /// The receiving mailbox of `node`.
  MessageChannel& channel(NodeId node) { return *channels_[node]; }

  void CrashNode(NodeId node);
  void RecoverNode(NodeId node);
  bool IsCrashed(NodeId node) const;

  /// Messages dropped because the source was crashed at send time.
  uint64_t messages_from_crashed() const {
    return from_crashed_.load(std::memory_order_relaxed);
  }
  /// Messages dropped because the destination was crashed at send time.
  uint64_t messages_to_crashed() const {
    return to_crashed_.load(std::memory_order_relaxed);
  }

  // --- Fault injection (the SimNetwork subset chaos campaigns use) ---
  //
  // All setters are thread-safe and may race with Send. The first setter
  // call arms the fault path *and* the NetworkStats counters; until then
  // Send keeps its original two-load fast path and `stats()` reads zero.
  // Loss sampling hashes a per-network seed with a send counter, so a
  // fixed seed gives a reproducible drop *rate* (not a reproducible drop
  // *set* — thread interleaving orders the counter).

  /// Cuts or restores the bidirectional link between `a` and `b`.
  void SetLinkDown(NodeId a, NodeId b, bool down);

  /// Probability that any message is dropped (chaos loss bursts).
  void SetLossProbability(double p);

  /// Per-link (undirected) loss probability; the effective rate for a
  /// message is max(global, link).
  void SetLinkLoss(NodeId a, NodeId b, double p);

  /// Adds a fixed extra delay to every message on the (a -> b) direction.
  /// Delayed messages are delivered by a background pump thread; 0 clears.
  void SetExtraDelay(NodeId a, NodeId b, Micros extra_us);

  /// Seed for loss sampling (call before arming faults).
  void SetFaultSeed(uint64_t seed);

  /// Restores a fault-free network: loss 0, all links up, no extra delay.
  /// Counters stay armed so end-of-run audits can still read them.
  void ClearFaults();

  /// Snapshot of the SimNetwork-style counters. Counting starts when the
  /// fault path is first armed; crashed-node drops and the coalescing
  /// counters (frames_sent / messages_coalesced) are always counted.
  NetworkStats stats() const;

  /// Closes every mailbox; node threads drain and exit.
  void Shutdown();

  size_t num_nodes() const { return channels_.size(); }

 private:
  struct DelayedMessage {
    std::chrono::steady_clock::time_point due;
    Message msg;
  };

  static uint64_t UndirectedKey(NodeId a, NodeId b) {
    NodeId lo = a < b ? a : b;
    NodeId hi = a < b ? b : a;
    return (static_cast<uint64_t>(lo) << 32) | hi;
  }
  static uint64_t DirectedKey(NodeId a, NodeId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  void Arm() { faults_armed_.store(true, std::memory_order_release); }
  void FaultSend(Message msg);  // slow path, taken only once armed
  void Deliver(Message msg);    // final hop: crashed-dst check + Push
  void DelayPump();
  void EnsurePumpLocked();  // requires delay_mu_

  std::vector<std::unique_ptr<MessageChannel>> channels_;
  std::vector<std::atomic<bool>> crashed_;
  std::atomic<uint64_t> from_crashed_{0};
  std::atomic<uint64_t> to_crashed_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> coalesced_{0};

  // Fault state (guarded by fault_mu_; armed flag checked lock-free).
  std::atomic<bool> faults_armed_{false};
  mutable std::mutex fault_mu_;
  double loss_probability_ = 0.0;
  std::unordered_set<uint64_t> links_down_;          // undirected
  std::unordered_map<uint64_t, double> link_loss_;   // undirected
  std::unordered_map<uint64_t, Micros> extra_delay_;  // directed
  std::atomic<uint64_t> fault_seed_{0x6563646273656564ULL};  // "ecdbseed"
  std::atomic<uint64_t> fault_counter_{0};

  // Delayed-delivery pump (lazily spawned on first SetExtraDelay).
  std::thread delay_thread_;
  std::mutex delay_mu_;
  std::condition_variable delay_cv_;
  std::vector<DelayedMessage> delayed_;
  bool delay_stop_ = false;

  // SimNetwork-style counters (armed fault path only).
  std::atomic<uint64_t> sent_{0};
  std::atomic<uint64_t> delivered_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> bytes_{0};
  std::array<std::atomic<uint64_t>, MsgTypeCounts::kNumTypes> per_type_{};
};

}  // namespace ecdb

#endif  // ECDB_NET_CHANNEL_H_
