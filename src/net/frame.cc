#include "net/frame.h"

#include <cstring>

namespace ecdb {
namespace {

// [magic u16][src u32][dst u32][count u32] (messages...) [fnv1a u32]
constexpr uint16_t kFrameMagic = 0xECF5;
constexpr size_t kFrameHeaderBytes = 2 + 4 + 4 + 4;
constexpr size_t kFrameChecksumBytes = 4;

// flags byte inside a message encoding
constexpr uint8_t kFlagForwarded = 1u << 0;
constexpr uint8_t kFlagHasDecision = 1u << 1;
constexpr uint8_t kFlagTxnHasWrites = 1u << 2;

template <typename T>
void Put(std::vector<uint8_t>* out, T v) {
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &v, sizeof(T));
}

template <typename T>
bool Get(const uint8_t* data, size_t size, size_t* at, T* v) {
  if (size - *at < sizeof(T)) return false;
  std::memcpy(v, data + *at, sizeof(T));
  *at += sizeof(T);
  return true;
}

uint32_t Fnv1a(const uint8_t* data, size_t size) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

// The frame header carries src/dst once for every message inside — that
// shared header (plus the single checksum) is the wire-level saving the
// coalescing layer buys, so per-message encodings omit both.
size_t EncodedMessageBytes(const Message& m) {
  return 1 /*type*/ + 1 /*flags*/ + 1 /*term_state*/ + 1 /*decision*/ +
         8 /*txn*/ + 8 /*priority_ts*/ + 8 /*trace_seq*/ +
         4 + m.participants.size() * sizeof(NodeId) +
         4 + m.ops.size() * (sizeof(TableId) + sizeof(Key) + 1 /*mode*/);
}

void EncodeMessage(const Message& m, std::vector<uint8_t>* out) {
  Put<uint8_t>(out, static_cast<uint8_t>(m.type));
  uint8_t flags = 0;
  if (m.forwarded) flags |= kFlagForwarded;
  if (m.has_decision) flags |= kFlagHasDecision;
  if (m.txn_has_writes) flags |= kFlagTxnHasWrites;
  Put<uint8_t>(out, flags);
  Put<uint8_t>(out, static_cast<uint8_t>(m.term_state));
  Put<uint8_t>(out, static_cast<uint8_t>(m.decision));
  Put<uint64_t>(out, m.txn);
  Put<uint64_t>(out, m.priority_ts);
  Put<uint64_t>(out, m.trace_seq);
  Put<uint32_t>(out, static_cast<uint32_t>(m.participants.size()));
  for (NodeId n : m.participants) Put<NodeId>(out, n);
  Put<uint32_t>(out, static_cast<uint32_t>(m.ops.size()));
  for (const Operation& op : m.ops) {
    Put<TableId>(out, op.table);
    Put<Key>(out, op.key);
    Put<uint8_t>(out, static_cast<uint8_t>(op.mode));
  }
}

bool DecodeMessage(const uint8_t* data, size_t size, size_t* at, NodeId src,
                   NodeId dst, Message* m) {
  uint8_t type, flags, term_state, decision;
  if (!Get(data, size, at, &type) || !Get(data, size, at, &flags) ||
      !Get(data, size, at, &term_state) || !Get(data, size, at, &decision)) {
    return false;
  }
  if (type >= static_cast<uint8_t>(MsgType::kMsgTypeCount)) return false;
  m->type = static_cast<MsgType>(type);
  m->src = src;
  m->dst = dst;
  m->forwarded = (flags & kFlagForwarded) != 0;
  m->has_decision = (flags & kFlagHasDecision) != 0;
  m->txn_has_writes = (flags & kFlagTxnHasWrites) != 0;
  m->term_state = static_cast<CohortState>(term_state);
  m->decision = static_cast<Decision>(decision);
  if (!Get(data, size, at, &m->txn) || !Get(data, size, at, &m->priority_ts) ||
      !Get(data, size, at, &m->trace_seq)) {
    return false;
  }
  uint32_t nparticipants;
  if (!Get(data, size, at, &nparticipants)) return false;
  if ((size - *at) / sizeof(NodeId) < nparticipants) return false;
  m->participants.clear();
  for (uint32_t i = 0; i < nparticipants; ++i) {
    NodeId n = 0;
    Get(data, size, at, &n);
    m->participants.push_back(n);
  }
  uint32_t nops;
  if (!Get(data, size, at, &nops)) return false;
  constexpr size_t kOpBytes = sizeof(TableId) + sizeof(Key) + 1;
  if ((size - *at) / kOpBytes < nops) return false;
  m->ops.clear();
  for (uint32_t i = 0; i < nops; ++i) {
    Operation op;
    uint8_t mode = 0;
    Get(data, size, at, &op.table);
    Get(data, size, at, &op.key);
    Get(data, size, at, &mode);
    op.mode = static_cast<AccessMode>(mode);
    m->ops.push_back(op);
  }
  return true;
}

}  // namespace

size_t MessageFrame::WireBytes() const {
  size_t bytes = kFrameHeaderBytes + kFrameChecksumBytes;
  for (const Message& m : messages) bytes += EncodedMessageBytes(m);
  return bytes;
}

void EncodeFrame(const MessageFrame& frame, std::vector<uint8_t>* out) {
  const size_t start = out->size();
  Put<uint16_t>(out, kFrameMagic);
  Put<NodeId>(out, frame.src);
  Put<NodeId>(out, frame.dst);
  Put<uint32_t>(out, static_cast<uint32_t>(frame.messages.size()));
  for (const Message& m : frame.messages) EncodeMessage(m, out);
  Put<uint32_t>(out, Fnv1a(out->data() + start, out->size() - start));
}

bool DecodeFrame(const uint8_t* data, size_t size, MessageFrame* out) {
  if (size < kFrameHeaderBytes + kFrameChecksumBytes) return false;
  size_t at = 0;
  uint16_t magic;
  Get(data, size, &at, &magic);
  if (magic != kFrameMagic) return false;
  uint32_t expected;
  std::memcpy(&expected, data + size - kFrameChecksumBytes,
              kFrameChecksumBytes);
  if (Fnv1a(data, size - kFrameChecksumBytes) != expected) return false;
  const size_t body_end = size - kFrameChecksumBytes;

  NodeId src, dst;
  uint32_t count;
  Get(data, body_end, &at, &src);
  Get(data, body_end, &at, &dst);
  Get(data, body_end, &at, &count);
  constexpr size_t kMinMsgBytes = 4 + 8 * 3 + 4 + 4;
  if ((body_end - at) / kMinMsgBytes < count) return false;
  MessageFrame frame;
  frame.src = src;
  frame.dst = dst;
  frame.messages.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!DecodeMessage(data, body_end, &at, src, dst, &frame.messages[i])) {
      return false;
    }
  }
  if (at != body_end) return false;  // trailing garbage
  *out = std::move(frame);
  return true;
}

}  // namespace ecdb
