#include "net/message.h"

namespace ecdb {

std::string ToString(MsgType type) {
  switch (type) {
    case MsgType::kPrepare:
      return "Prepare";
    case MsgType::kVoteCommit:
      return "VoteCommit";
    case MsgType::kVoteAbort:
      return "VoteAbort";
    case MsgType::kPreCommit:
      return "PreCommit";
    case MsgType::kPreCommitAck:
      return "PreCommitAck";
    case MsgType::kGlobalCommit:
      return "GlobalCommit";
    case MsgType::kGlobalAbort:
      return "GlobalAbort";
    case MsgType::kAck:
      return "Ack";
    case MsgType::kTermElect:
      return "TermElect";
    case MsgType::kTermStateRequest:
      return "TermStateRequest";
    case MsgType::kTermStateReply:
      return "TermStateReply";
    case MsgType::kRemoteExec:
      return "RemoteExec";
    case MsgType::kRemoteExecOk:
      return "RemoteExecOk";
    case MsgType::kRemoteExecFail:
      return "RemoteExecFail";
    case MsgType::kRemoteRollback:
      return "RemoteRollback";
    case MsgType::kMsgTypeCount:
      break;  // sentinel, not a wire type
  }
  return "Unknown";
}

std::string ToString(CohortState state) {
  switch (state) {
    case CohortState::kInitial:
      return "INITIAL";
    case CohortState::kReady:
      return "READY";
    case CohortState::kWait:
      return "WAIT";
    case CohortState::kPreCommit:
      return "PRE-COMMIT";
    case CohortState::kTransmitA:
      return "TRANSMIT-A";
    case CohortState::kTransmitC:
      return "TRANSMIT-C";
    case CohortState::kAborted:
      return "ABORT";
    case CohortState::kCommitted:
      return "COMMIT";
  }
  return "UNKNOWN";
}

size_t Message::ApproximateBytes() const {
  // Fixed header: type, src, dst, txn, flags.
  size_t bytes = 24;
  bytes += participants.size() * sizeof(NodeId);
  bytes += ops.size() * (sizeof(Key) + sizeof(TableId) + 1);
  return bytes;
}

}  // namespace ecdb
