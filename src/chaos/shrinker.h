#ifndef ECDB_CHAOS_SHRINKER_H_
#define ECDB_CHAOS_SHRINKER_H_

#include <cstddef>

#include "chaos/campaign.h"
#include "chaos/fault_plan.h"

namespace ecdb {

/// Outcome of shrinking a failing fault plan.
struct ShrinkResult {
  /// Smallest plan found that still fails the audit. If the input plan did
  /// not fail (`reproduced == false`), this is the input plan unchanged.
  FaultPlan plan;

  /// The input plan's failure reproduced on replay at all.
  bool reproduced = false;

  /// Replays executed while shrinking (cost indicator).
  size_t replays = 0;
};

/// Delta-debugging (ddmin) minimization over `plan.events`: repeatedly
/// replays candidate subsets and keeps the smallest event list whose
/// replay still fails the consistency audit. Fault events are
/// independently removable — the audit itself recovers every node and
/// heals every link first, so dropping a recover/heal event cannot wedge
/// the candidate run.
///
/// Each replay is a full deterministic simulation of the case, so the
/// result is stable for a given (cfg, plan). `max_replays` bounds the
/// search; on exhaustion the best plan found so far is returned.
ShrinkResult ShrinkFaultPlan(const ChaosCaseConfig& cfg, const FaultPlan& plan,
                             size_t max_replays = 400);

}  // namespace ecdb

#endif  // ECDB_CHAOS_SHRINKER_H_
