#ifndef ECDB_CHAOS_CONSISTENCY_AUDIT_H_
#define ECDB_CHAOS_CONSISTENCY_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/chaos_driver.h"
#include "cluster/sim_cluster.h"
#include "common/types.h"

namespace ecdb {

/// One audit failure. `check` is "atomicity", "durability" or "liveness";
/// `detail` is a human-readable explanation naming nodes/WAL evidence.
struct AuditViolation {
  std::string check;
  TxnId txn = kInvalidTxn;
  std::string detail;
};

/// Result of an end-of-run consistency audit.
struct AuditResult {
  /// The post-restart drain reached quiescence within the event budget.
  /// False means undrained work (reported as a liveness violation too).
  bool quiescent = false;

  /// Protocol commits acked to clients during the run (durability set).
  uint64_t acked_commits = 0;

  /// Distinct transactions that reported blocked at some node during the
  /// run (2PC's expected failure mode; informational, not a violation).
  uint64_t blocked_txns = 0;

  /// Violations, sorted by (check, txn) for deterministic output.
  std::vector<AuditViolation> violations;

  bool ok() const { return violations.empty(); }
  uint64_t CountFor(const std::string& check) const {
    uint64_t n = 0;
    for (const AuditViolation& v : violations) {
      if (v.check == check) n++;
    }
    return n;
  }
};

/// End-of-run crash-recovery audit (the tentpole's check):
///
///  1. Clear every injected fault (loss back to base, links healed,
///     crashed nodes recovered) — a recovered node behind a dead link
///     would re-run elections forever.
///  2. Quiesce the closed loop and drain in-flight work.
///  3. Crash *every* node, then recover every node: each WAL goes through
///     replay + the Section 4.2 RecoveryManager analysis, and unresolved
///     transactions re-enter the termination protocol.
///  4. Drain again, then check:
///     (a) atomicity — no transaction with both a commit- and an
///         abort-flavored record across all WALs, and the SafetyMonitor
///         saw no conflicting applied decisions;
///     (b) durability — every client-acked protocol commit has a commit
///         record in its coordinator's WAL and no abort record anywhere
///         (decision-level durability: the WAL logs protocol milestones,
///         not data pages; see docs/ROBUSTNESS.md for the scope);
///     (c) liveness — no node's engine still tracks an undecided,
///         non-blocked transaction (the non-blocking claim). Blocked 2PC
///         cohorts are counted in `blocked_txns`, not as violations.
///
/// Requires TrackAckedCommits(true) on every node from the start of the
/// run for the durability set to be complete.
AuditResult RunConsistencyAudit(SimCluster* cluster, ChaosDriver* driver,
                                size_t drain_budget = 20'000'000);

}  // namespace ecdb

#endif  // ECDB_CHAOS_CONSISTENCY_AUDIT_H_
