#include "chaos/campaign.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "chaos/chaos_driver.h"
#include "cluster/sim_cluster.h"
#include "trace/trace_export.h"
#include "workload/ycsb.h"

namespace ecdb {

namespace {

ClusterConfig MakeClusterConfig(const ChaosCaseConfig& cfg, uint64_t seed,
                                uint32_t num_nodes) {
  ClusterConfig cluster;
  cluster.num_nodes = num_nodes;
  cluster.workers_per_node = cfg.workers_per_node;
  cluster.clients_per_node = cfg.clients_per_node;
  cluster.protocol = cfg.protocol;
  cluster.seed = seed;
  // The coordinator must be able to answer "what was decided?" after the
  // decision record is trimmed from its in-memory map, and termination
  // must survive rounds whose replies were all lost.
  cluster.commit.keep_decision_ledger = true;
  cluster.commit.term_fruitless_retries = cfg.term_fruitless_retries;
  cluster.coalesce_transport = cfg.coalesce_transport;
  cluster.scheduler_backend = cfg.scheduler_backend;
  return cluster;
}

std::unique_ptr<Workload> MakeWorkload(uint32_t num_nodes) {
  YcsbConfig ycsb;
  ycsb.num_partitions = num_nodes;
  ycsb.rows_per_partition = 1024;
  ycsb.partitions_per_txn = num_nodes < 2 ? 1 : 2;
  return std::make_unique<YcsbWorkload>(ycsb);
}

ChaosCaseResult RunCase(const ChaosCaseConfig& cfg, const FaultPlan& plan,
                        uint64_t seed, const std::string& trace_path) {
  ChaosCaseResult result;
  result.seed = seed;
  result.plan = plan;

  SimCluster cluster(MakeClusterConfig(cfg, seed, plan.num_nodes),
                     MakeWorkload(plan.num_nodes));
  if (!trace_path.empty()) cluster.EnableTracing();
  cluster.Start();
  for (NodeId id = 0; id < cluster.num_nodes(); ++id) {
    cluster.node(id).TrackAckedCommits(true);
  }

  ChaosDriver driver(&cluster);
  driver.Schedule(plan);
  cluster.RunFor(static_cast<double>(plan.horizon_us) / 1e6);

  result.audit = RunConsistencyAudit(&cluster, &driver, cfg.drain_budget);
  result.faults_applied = driver.faults_applied();

  if (!trace_path.empty()) {
    TraceMeta meta;
    meta.runtime = "sim";
    meta.protocol = ToString(cfg.protocol);
    meta.num_nodes = static_cast<uint32_t>(plan.num_nodes);
    WriteJsonlFile(meta, CollectEvents(cluster.recorders()), trace_path);
  }
  return result;
}

}  // namespace

ChaosCaseResult RunChaosCase(const ChaosCaseConfig& cfg, uint64_t seed,
                             const std::string& trace_path) {
  const FaultPlan plan =
      GenerateFaultPlan(seed, cfg.num_nodes, cfg.horizon_us, cfg.intensity);
  return RunCase(cfg, plan, seed, trace_path);
}

ChaosCaseResult ReplayFaultPlan(const ChaosCaseConfig& cfg,
                                const FaultPlan& plan,
                                const std::string& trace_path) {
  return RunCase(cfg, plan, plan.seed, trace_path);
}

CampaignSummary RunCampaign(
    const ChaosCaseConfig& cfg, uint64_t first_seed, uint64_t num_seeds,
    const std::function<void(const ChaosCaseResult&)>& on_failure) {
  CampaignSummary summary;
  summary.protocol = cfg.protocol;
  for (uint64_t seed = first_seed; seed < first_seed + num_seeds; ++seed) {
    const ChaosCaseResult result = RunChaosCase(cfg, seed);
    summary.seeds_run++;
    summary.acked_commits += result.audit.acked_commits;
    summary.blocked_txns += result.audit.blocked_txns;
    summary.faults_applied += result.faults_applied;
    summary.atomicity_violations += result.audit.CountFor("atomicity");
    summary.durability_violations += result.audit.CountFor("durability");
    summary.liveness_violations += result.audit.CountFor("liveness");
    if (!result.audit.quiescent) summary.non_quiescent++;
    if (!result.ok()) {
      summary.seeds_failed++;
      summary.failing_seeds.push_back(seed);
      if (on_failure) on_failure(result);
    }
  }
  return summary;
}

std::string FormatCampaignTable(const std::vector<CampaignSummary>& rows) {
  std::ostringstream out;
  auto cell = [&out](const std::string& s, int width) {
    out << s;
    for (int i = static_cast<int>(s.size()); i < width; ++i) out << ' ';
  };
  auto num = [&cell](uint64_t v, int width) {
    cell(std::to_string(v), width);
  };
  cell("protocol", 14);
  cell("seeds", 7);
  cell("failed", 8);
  cell("atomicity", 11);
  cell("durability", 12);
  cell("liveness", 10);
  cell("blocked", 9);
  cell("acked", 9);
  out << "faults\n";
  for (const CampaignSummary& row : rows) {
    cell(ToString(row.protocol), 14);
    num(row.seeds_run, 7);
    num(row.seeds_failed, 8);
    num(row.atomicity_violations, 11);
    num(row.durability_violations, 12);
    num(row.liveness_violations, 10);
    num(row.blocked_txns, 9);
    num(row.acked_commits, 9);
    out << row.faults_applied << "\n";
  }
  return out.str();
}

}  // namespace ecdb
