#ifndef ECDB_CHAOS_FAULT_PLAN_H_
#define ECDB_CHAOS_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace ecdb {

/// One kind of injected fault. The vocabulary covers the failure models
/// the paper discusses: fail-stop crashes with WAL-replay restarts
/// (Section 4.2), link failures and partitions, and the message-loss /
/// message-delay regime of Section 4's impossibility discussion.
enum class FaultType : uint8_t {
  kCrash,          // node `a` fail-stops (volatile state lost, WAL kept)
  kRecover,        // node `a` restarts: WAL replay + independent recovery
  kLinkCut,        // bidirectional link a<->b drops every message
  kLinkHeal,       // restore a<->b
  kPartition,      // isolate `group` from the rest (all cross links cut)
  kPartitionHeal,  // restore every link cut by the last kPartition
  kLossBurst,      // global drop probability = `probability` for `duration_us`
  kDelaySpike,     // extra `delay_us` on a<->b for `duration_us`

  kFaultTypeCount,  // sentinel, keep last
};

/// Short stable name used in the JSON form, e.g. "crash", "loss_burst".
const char* ToString(FaultType type);

/// One timed fault. Fields beyond `at_us`/`type` are used per-type (see
/// FaultType comments); unused fields keep their defaults and are omitted
/// from the JSON form.
struct FaultEvent {
  Micros at_us = 0;
  FaultType type = FaultType::kCrash;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  Micros duration_us = 0;
  Micros delay_us = 0;
  double probability = 0.0;
  std::vector<NodeId> group;

  bool operator==(const FaultEvent& o) const {
    return at_us == o.at_us && type == o.type && a == o.a && b == o.b &&
           duration_us == o.duration_us && delay_us == o.delay_us &&
           probability == o.probability && group == o.group;
  }
};

/// How adversarial a generated plan is. Default keeps a majority of nodes
/// up and loss rates low (the regime where EC/3PC must stay clean);
/// heavy adds partitions, overlapping crashes and double-digit loss — the
/// regime that separates EC from its no-forwarding ablation.
enum class ChaosIntensity : uint8_t { kLight, kDefault, kHeavy };

const char* ToString(ChaosIntensity intensity);

/// True and sets `*out` when `name` is "light"/"default"/"heavy".
bool ParseIntensity(const std::string& name, ChaosIntensity* out);

/// A deterministic, replayable fault timeline for one chaos run. All
/// event times lie in [0, horizon_us); the driver schedules them up front
/// so identical plans yield identical simulations.
struct FaultPlan {
  uint64_t seed = 0;        // also seeds the cluster for full replay
  uint32_t num_nodes = 0;
  Micros horizon_us = 0;
  ChaosIntensity intensity = ChaosIntensity::kDefault;
  std::vector<FaultEvent> events;  // sorted by at_us

  bool operator==(const FaultPlan& o) const {
    return seed == o.seed && num_nodes == o.num_nodes &&
           horizon_us == o.horizon_us && intensity == o.intensity &&
           events == o.events;
  }

  /// Canonical JSON form. Byte-deterministic: the same plan always
  /// serializes to the same string, and ParseFaultPlan(ToJson()) == *this.
  std::string ToJson() const;
};

/// Generates a random plan from `seed`. Guarantees: every event time is
/// below 0.8 * horizon (faults end well before the drain window); crashed
/// nodes get a matching kRecover; at most a minority of nodes is down at
/// once below kHeavy; node 0 is never crashed at kLight.
FaultPlan GenerateFaultPlan(uint64_t seed, uint32_t num_nodes,
                            Micros horizon_us, ChaosIntensity intensity);

/// Parses the JSON form produced by FaultPlan::ToJson (tolerates unknown
/// keys and arbitrary whitespace). Returns false and fills `*error` on
/// malformed input.
bool ParseFaultPlan(const std::string& json, FaultPlan* out,
                    std::string* error);

/// File convenience wrappers around ToJson/ParseFaultPlan.
bool WriteFaultPlanFile(const FaultPlan& plan, const std::string& path,
                        std::string* error);
bool ReadFaultPlanFile(const std::string& path, FaultPlan* out,
                       std::string* error);

}  // namespace ecdb

#endif  // ECDB_CHAOS_FAULT_PLAN_H_
