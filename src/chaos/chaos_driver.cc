#include "chaos/chaos_driver.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace ecdb {

namespace {

uint64_t UndirectedKey(NodeId a, NodeId b) {
  NodeId lo = a < b ? a : b;
  NodeId hi = a < b ? b : a;
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

uint64_t DirectedKey(NodeId a, NodeId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

ChaosDriver::ChaosDriver(SimCluster* cluster)
    : cluster_(cluster),
      base_drop_probability_(cluster->config().network.drop_probability) {}

void ChaosDriver::Schedule(const FaultPlan& plan) {
  // All events are scheduled up front, before the workload advances: the
  // scheduler orders equal-time events by insertion, so scheduling inside
  // earlier callbacks would change the interleaving between replays.
  Scheduler& sched = cluster_->scheduler();
  const Micros now = sched.Now();
  for (const FaultEvent& ev : plan.events) {
    const Micros delay = ev.at_us > now ? ev.at_us - now : 0;
    FaultEvent copy = ev;
    sched.ScheduleAfter(delay, [this, copy]() { Apply(copy); });
  }
}

void ChaosDriver::Apply(const FaultEvent& ev) {
  SimNetwork& net = cluster_->network();
  Scheduler& sched = cluster_->scheduler();
  faults_applied_++;
  switch (ev.type) {
    case FaultType::kCrash:
      if (ev.a < cluster_->num_nodes() && !cluster_->node(ev.a).crashed()) {
        cluster_->CrashNode(ev.a);
      }
      break;
    case FaultType::kRecover:
      if (ev.a < cluster_->num_nodes() && cluster_->node(ev.a).crashed()) {
        cluster_->RecoverNode(ev.a);
      }
      break;
    case FaultType::kLinkCut:
      net.SetLinkDown(ev.a, ev.b, true);
      cut_links_.insert(UndirectedKey(ev.a, ev.b));
      break;
    case FaultType::kLinkHeal:
      net.SetLinkDown(ev.a, ev.b, false);
      cut_links_.erase(UndirectedKey(ev.a, ev.b));
      break;
    case FaultType::kPartition:
      // Cut every link between the group and the rest. Links the plan cut
      // individually stay attributed to cut_links_ (heal order-safe).
      for (NodeId in : ev.group) {
        for (NodeId out = 0; out < cluster_->num_nodes(); ++out) {
          if (std::find(ev.group.begin(), ev.group.end(), out) !=
              ev.group.end()) {
            continue;
          }
          if (cut_links_.count(UndirectedKey(in, out)) != 0) continue;
          net.SetLinkDown(in, out, true);
          partition_cuts_.emplace_back(in, out);
        }
      }
      break;
    case FaultType::kPartitionHeal:
      for (const auto& [a, b] : partition_cuts_) net.SetLinkDown(a, b, false);
      partition_cuts_.clear();
      break;
    case FaultType::kLossBurst: {
      net.SetDropProbability(ev.probability);
      const double base = base_drop_probability_;
      sched.ScheduleAfter(ev.duration_us, [this, base]() {
        cluster_->network().SetDropProbability(base);
      });
      break;
    }
    case FaultType::kDelaySpike: {
      net.SetExtraDelay(ev.a, ev.b, ev.delay_us);
      net.SetExtraDelay(ev.b, ev.a, ev.delay_us);
      delayed_links_.insert(DirectedKey(ev.a, ev.b));
      delayed_links_.insert(DirectedKey(ev.b, ev.a));
      const NodeId a = ev.a, b = ev.b;
      sched.ScheduleAfter(ev.duration_us, [this, a, b]() {
        cluster_->network().SetExtraDelay(a, b, 0);
        cluster_->network().SetExtraDelay(b, a, 0);
        delayed_links_.erase(DirectedKey(a, b));
        delayed_links_.erase(DirectedKey(b, a));
      });
      break;
    }
    case FaultType::kFaultTypeCount:
      break;
  }
}

void ChaosDriver::ClearFaults() {
  SimNetwork& net = cluster_->network();
  net.SetDropProbability(base_drop_probability_);
  for (const auto& [a, b] : partition_cuts_) net.SetLinkDown(a, b, false);
  partition_cuts_.clear();
  for (uint64_t key : cut_links_) {
    net.SetLinkDown(static_cast<NodeId>(key >> 32),
                    static_cast<NodeId>(key & 0xFFFFFFFFULL), false);
  }
  cut_links_.clear();
  for (uint64_t key : delayed_links_) {
    net.SetExtraDelay(static_cast<NodeId>(key >> 32),
                      static_cast<NodeId>(key & 0xFFFFFFFFULL), 0);
  }
  delayed_links_.clear();
  for (NodeId id = 0; id < cluster_->num_nodes(); ++id) {
    if (cluster_->node(id).crashed()) cluster_->RecoverNode(id);
  }
}

// --------------------------------------------------------------------------
// Threaded runtime (crash/loss subset)
// --------------------------------------------------------------------------

void ApplyPlanToThreadCluster(const FaultPlan& plan, ThreadCluster* cluster,
                              double time_scale) {
  if (time_scale <= 0.0) time_scale = 1.0;
  ThreadNetwork& net = cluster->network();
  net.SetFaultSeed(plan.seed);

  // Flatten duration-based events into apply/restore points, then walk the
  // timeline in wall clock.
  struct TimedAction {
    Micros at_us;
    FaultEvent ev;
    bool restore;
  };
  std::vector<TimedAction> timeline;
  for (const FaultEvent& ev : plan.events) {
    timeline.push_back({ev.at_us, ev, false});
    if (ev.type == FaultType::kLossBurst ||
        ev.type == FaultType::kDelaySpike) {
      timeline.push_back({ev.at_us + ev.duration_us, ev, true});
    }
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const TimedAction& x, const TimedAction& y) {
                     return x.at_us < y.at_us;
                   });

  const size_t n = cluster->num_nodes();
  std::vector<std::pair<NodeId, NodeId>> partition_cuts;
  // ThreadNode::Recover on a node that never crashed would replay WAL
  // analysis over live transactions; track down-state here to guard it.
  std::vector<bool> down(n, false);
  const auto start = std::chrono::steady_clock::now();
  for (const TimedAction& action : timeline) {
    const auto due = start + std::chrono::microseconds(static_cast<uint64_t>(
                                 static_cast<double>(action.at_us) /
                                 time_scale));
    std::this_thread::sleep_until(due);
    const FaultEvent& ev = action.ev;
    switch (ev.type) {
      case FaultType::kCrash:
        if (ev.a < n && !down[ev.a]) {
          cluster->node(ev.a).Crash();
          down[ev.a] = true;
        }
        break;
      case FaultType::kRecover:
        if (ev.a < n && down[ev.a]) {
          cluster->node(ev.a).Recover();
          down[ev.a] = false;
        }
        break;
      case FaultType::kLinkCut:
        net.SetLinkDown(ev.a, ev.b, true);
        break;
      case FaultType::kLinkHeal:
        net.SetLinkDown(ev.a, ev.b, false);
        break;
      case FaultType::kPartition:
        for (NodeId in : ev.group) {
          for (NodeId out = 0; out < n; ++out) {
            if (std::find(ev.group.begin(), ev.group.end(), out) !=
                ev.group.end()) {
              continue;
            }
            net.SetLinkDown(in, out, true);
            partition_cuts.emplace_back(in, out);
          }
        }
        break;
      case FaultType::kPartitionHeal:
        for (const auto& [a, b] : partition_cuts) net.SetLinkDown(a, b, false);
        partition_cuts.clear();
        break;
      case FaultType::kLossBurst:
        net.SetLossProbability(action.restore ? 0.0 : ev.probability);
        break;
      case FaultType::kDelaySpike: {
        const Micros d =
            action.restore
                ? 0
                : static_cast<Micros>(static_cast<double>(ev.delay_us) /
                                      time_scale);
        net.SetExtraDelay(ev.a, ev.b, d);
        net.SetExtraDelay(ev.b, ev.a, d);
        break;
      }
      case FaultType::kFaultTypeCount:
        break;
    }
  }

  // End of plan: fault-free network, everyone back up.
  net.ClearFaults();
  for (NodeId id = 0; id < n; ++id) {
    if (down[id]) cluster->node(id).Recover();
  }
}

}  // namespace ecdb
