#include "chaos/shrinker.h"

#include <algorithm>
#include <vector>

namespace ecdb {

ShrinkResult ShrinkFaultPlan(const ChaosCaseConfig& cfg, const FaultPlan& plan,
                             size_t max_replays) {
  ShrinkResult result;
  result.plan = plan;

  auto fails = [&](const std::vector<FaultEvent>& events) {
    if (result.replays >= max_replays) return false;
    result.replays++;
    FaultPlan candidate = plan;
    candidate.events = events;
    return !ReplayFaultPlan(cfg, candidate).ok();
  };

  if (!fails(plan.events)) return result;  // not reproducible: keep as-is
  result.reproduced = true;

  // Classic ddmin over the event list. `granularity` chunks per pass; a
  // successful complement removal restarts the pass one level coarser,
  // an exhausted pass doubles the granularity until chunks are single
  // events.
  std::vector<FaultEvent> current = plan.events;
  size_t granularity = 2;
  while (current.size() >= 2 && result.replays < max_replays) {
    const size_t chunk = (current.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (size_t start = 0;
         start < current.size() && result.replays < max_replays;
         start += chunk) {
      std::vector<FaultEvent> complement;
      complement.reserve(current.size());
      for (size_t i = 0; i < current.size(); ++i) {
        if (i < start || i >= start + chunk) complement.push_back(current[i]);
      }
      if (complement.empty()) continue;
      if (fails(complement)) {
        current = std::move(complement);
        granularity = std::max<size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunk <= 1) break;  // single-event chunks and nothing removable
      granularity = std::min(current.size(), granularity * 2);
    }
  }
  result.plan.events = std::move(current);
  return result;
}

}  // namespace ecdb
