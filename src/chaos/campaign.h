#ifndef ECDB_CHAOS_CAMPAIGN_H_
#define ECDB_CHAOS_CAMPAIGN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chaos/consistency_audit.h"
#include "chaos/fault_plan.h"
#include "common/types.h"
#include "sim/scheduler.h"

namespace ecdb {

/// Fixed shape of one chaos case; the seed is the only thing a campaign
/// varies. Small cluster + few clients on purpose: chaos runs are about
/// fault interleavings, not load, and a small case keeps a 500-seed
/// campaign in CI territory.
struct ChaosCaseConfig {
  CommitProtocol protocol = CommitProtocol::kEasyCommit;
  uint32_t num_nodes = 4;
  uint32_t clients_per_node = 4;
  uint32_t workers_per_node = 2;
  Micros horizon_us = 600'000;
  ChaosIntensity intensity = ChaosIntensity::kDefault;

  /// Loss-hardening for the termination protocol (see
  /// CommitEngineConfig::term_fruitless_retries). The paper's unmodified
  /// rule (0) unilaterally aborts when every queried peer's reply was
  /// lost, which under injected loss manufactures atomicity violations
  /// that say nothing about the protocol logic.
  uint32_t term_fruitless_retries = 6;

  /// Event budget for each audit drain phase.
  size_t drain_budget = 20'000'000;

  /// Run the cluster over the coalescing transport (frames + per-frame
  /// loss/latency + WAL group commit). Chaos campaigns are the safety net
  /// proving the coalesced fast path drops/delivers frames without ever
  /// violating atomicity or durability.
  bool coalesce_transport = false;

  /// Event-queue backend. The timer wheel must survive the same fault
  /// interleavings as the reference heap; campaigns under kTimerWheel are
  /// the safety net for the wheel's ordering guarantees.
  SchedulerBackend scheduler_backend = SchedulerBackend::kHeap;
};

/// Outcome of one seeded case.
struct ChaosCaseResult {
  uint64_t seed = 0;
  FaultPlan plan;
  AuditResult audit;
  uint64_t faults_applied = 0;
  bool ok() const { return audit.ok(); }
};

/// Runs one case: generate plan from `seed`, run the workload under it for
/// the horizon, then run the crash-recovery audit. `trace_path` non-empty
/// enables protocol tracing and writes a JSONL trace there (no-op build
/// under ECDB_TRACE=OFF still writes the meta line).
ChaosCaseResult RunChaosCase(const ChaosCaseConfig& cfg, uint64_t seed,
                             const std::string& trace_path = "");

/// Replays an explicit plan (e.g. a dumped or shrunken repro). The cluster
/// seed, node count and horizon come from the plan, so a replay of a
/// dumped plan reproduces the original run bit for bit.
ChaosCaseResult ReplayFaultPlan(const ChaosCaseConfig& cfg,
                                const FaultPlan& plan,
                                const std::string& trace_path = "");

/// Aggregates over a seed range for one protocol.
struct CampaignSummary {
  CommitProtocol protocol = CommitProtocol::kEasyCommit;
  uint64_t seeds_run = 0;
  uint64_t seeds_failed = 0;
  uint64_t atomicity_violations = 0;
  uint64_t durability_violations = 0;
  uint64_t liveness_violations = 0;
  uint64_t blocked_txns = 0;     // 2PC's expected mode, reported not failed
  uint64_t acked_commits = 0;
  uint64_t faults_applied = 0;
  uint64_t non_quiescent = 0;
  std::vector<uint64_t> failing_seeds;

  bool ok() const { return seeds_failed == 0; }
};

/// Runs seeds [first_seed, first_seed + num_seeds). `on_failure` (may be
/// null) is invoked with each failing case, e.g. to dump + shrink plans.
CampaignSummary RunCampaign(
    const ChaosCaseConfig& cfg, uint64_t first_seed, uint64_t num_seeds,
    const std::function<void(const ChaosCaseResult&)>& on_failure = nullptr);

/// Fixed-width per-protocol table (deterministic output; ends with '\n').
std::string FormatCampaignTable(const std::vector<CampaignSummary>& rows);

}  // namespace ecdb

#endif  // ECDB_CHAOS_CAMPAIGN_H_
