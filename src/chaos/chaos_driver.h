#ifndef ECDB_CHAOS_CHAOS_DRIVER_H_
#define ECDB_CHAOS_CHAOS_DRIVER_H_

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "chaos/fault_plan.h"
#include "cluster/sim_cluster.h"
#include "cluster/thread_node.h"

namespace ecdb {

/// Applies a FaultPlan to a running SimCluster. Every fault event (and
/// every duration-expiry restore it implies) is executed as a scheduler
/// event, so a run with a given (cluster seed, plan) pair is bit-for-bit
/// deterministic and a dumped plan replays exactly.
class ChaosDriver {
 public:
  explicit ChaosDriver(SimCluster* cluster);

  /// Schedules every event of `plan` on the cluster's scheduler. Call
  /// once, after SimCluster::Start() and before running the horizon.
  void Schedule(const FaultPlan& plan);

  /// Restores a fault-free cluster: loss back to the configured base
  /// rate, all links up, extra delays cleared, every crashed node
  /// recovered (WAL replay + independent recovery). The consistency audit
  /// calls this first — an isolated recovered node would otherwise re-run
  /// elections forever and the drain would never quiesce.
  void ClearFaults();

  /// Fault events actually applied so far (restores not counted).
  uint64_t faults_applied() const { return faults_applied_; }

 private:
  void Apply(const FaultEvent& ev);

  SimCluster* cluster_;
  double base_drop_probability_;
  uint64_t faults_applied_ = 0;
  std::unordered_set<uint64_t> cut_links_;            // undirected key
  std::unordered_set<uint64_t> delayed_links_;        // directed key
  std::vector<std::pair<NodeId, NodeId>> partition_cuts_;
};

/// Applies the crash/recover + link/loss/delay subset of `plan` to a
/// running ThreadCluster in wall clock, each event at `at_us /
/// time_scale` after the call (time_scale > 1 compresses the plan; sim
/// plans assume microsecond-level latencies the threaded runtime does not
/// have). Blocks until the last event has fired, then restores a
/// fault-free network and recovers every crashed node. Partition events
/// are expanded to link cuts; WAL replay runs in ThreadNode::Recover.
void ApplyPlanToThreadCluster(const FaultPlan& plan, ThreadCluster* cluster,
                              double time_scale = 1.0);

}  // namespace ecdb

#endif  // ECDB_CHAOS_CHAOS_DRIVER_H_
