#include "chaos/fault_plan.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <tuple>
#include <utility>

#include "common/rng.h"

namespace ecdb {

const char* ToString(FaultType type) {
  switch (type) {
    case FaultType::kCrash:
      return "crash";
    case FaultType::kRecover:
      return "recover";
    case FaultType::kLinkCut:
      return "link_cut";
    case FaultType::kLinkHeal:
      return "link_heal";
    case FaultType::kPartition:
      return "partition";
    case FaultType::kPartitionHeal:
      return "partition_heal";
    case FaultType::kLossBurst:
      return "loss_burst";
    case FaultType::kDelaySpike:
      return "delay_spike";
    case FaultType::kFaultTypeCount:
      break;
  }
  return "unknown";
}

const char* ToString(ChaosIntensity intensity) {
  switch (intensity) {
    case ChaosIntensity::kLight:
      return "light";
    case ChaosIntensity::kDefault:
      return "default";
    case ChaosIntensity::kHeavy:
      return "heavy";
  }
  return "default";
}

bool ParseIntensity(const std::string& name, ChaosIntensity* out) {
  if (name == "light") {
    *out = ChaosIntensity::kLight;
  } else if (name == "default") {
    *out = ChaosIntensity::kDefault;
  } else if (name == "heavy") {
    *out = ChaosIntensity::kHeavy;
  } else {
    return false;
  }
  return true;
}

namespace {

bool FaultTypeFromString(const std::string& name, FaultType* out) {
  for (size_t i = 0; i < static_cast<size_t>(FaultType::kFaultTypeCount);
       ++i) {
    const FaultType t = static_cast<FaultType>(i);
    if (name == ToString(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

/// Shortest decimal form that round-trips a double through strtod.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer a shorter representation when it round-trips exactly, so the
  // JSON stays human-readable (0.05, not 0.05000000000000000277...).
  for (int prec = 1; prec < 17; ++prec) {
    char trial[64];
    std::snprintf(trial, sizeof(trial), "%.*g", prec, v);
    if (std::strtod(trial, nullptr) == v) return trial;
  }
  return buf;
}

}  // namespace

std::string FaultPlan::ToJson() const {
  std::ostringstream out;
  out << "{\"seed\":" << seed << ",\"num_nodes\":" << num_nodes
      << ",\"horizon_us\":" << horizon_us << ",\"intensity\":\""
      << ToString(intensity) << "\",\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& ev = events[i];
    if (i > 0) out << ",";
    out << "\n{\"at_us\":" << ev.at_us << ",\"type\":\"" << ToString(ev.type)
        << "\"";
    switch (ev.type) {
      case FaultType::kCrash:
      case FaultType::kRecover:
        out << ",\"a\":" << ev.a;
        break;
      case FaultType::kLinkCut:
      case FaultType::kLinkHeal:
        out << ",\"a\":" << ev.a << ",\"b\":" << ev.b;
        break;
      case FaultType::kDelaySpike:
        out << ",\"a\":" << ev.a << ",\"b\":" << ev.b
            << ",\"duration_us\":" << ev.duration_us
            << ",\"delay_us\":" << ev.delay_us;
        break;
      case FaultType::kLossBurst:
        out << ",\"duration_us\":" << ev.duration_us
            << ",\"probability\":" << FormatDouble(ev.probability);
        break;
      case FaultType::kPartition:
      case FaultType::kPartitionHeal: {
        out << ",\"group\":[";
        for (size_t g = 0; g < ev.group.size(); ++g) {
          if (g > 0) out << ",";
          out << ev.group[g];
        }
        out << "]";
        break;
      }
      case FaultType::kFaultTypeCount:
        break;
    }
    out << "}";
  }
  out << "\n]}\n";
  return out.str();
}

// --------------------------------------------------------------------------
// Generator
// --------------------------------------------------------------------------

namespace {

struct DownWindow {
  NodeId node;
  Micros begin;
  Micros end;
};

bool Overlaps(const DownWindow& w, Micros begin, Micros end) {
  return w.begin < end && begin < w.end;
}

}  // namespace

FaultPlan GenerateFaultPlan(uint64_t seed, uint32_t num_nodes,
                            Micros horizon_us, ChaosIntensity intensity) {
  FaultPlan plan;
  plan.seed = seed;
  plan.num_nodes = num_nodes;
  plan.horizon_us = horizon_us;
  plan.intensity = intensity;

  // Decouple the plan stream from the cluster's seed derivation (the
  // cluster also consumes `seed`); any fixed odd multiplier works.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL);

  // All faults end before 0.8 * horizon: the tail is the drain window in
  // which in-flight terminations settle before the audit runs.
  const Micros window = horizon_us / 5 * 4;
  const auto at = [&](double lo, double hi) {
    return static_cast<Micros>(static_cast<double>(window) *
                               (lo + rng.NextDouble() * (hi - lo)));
  };
  const auto dur = [&](double lo, double hi, Micros start) {
    Micros d = static_cast<Micros>(static_cast<double>(window) *
                                   (lo + rng.NextDouble() * (hi - lo)));
    if (start + d >= window) d = window - start - 1;
    return d < 1 ? 1 : d;
  };

  const bool heavy = intensity == ChaosIntensity::kHeavy;
  const bool light = intensity == ChaosIntensity::kLight;

  // Crash/recover pairs. Below kHeavy at most a minority of nodes is ever
  // down simultaneously (the regime of the paper's liveness theorem);
  // heavy allows up to half, rounding up.
  const uint32_t max_down =
      heavy ? (num_nodes + 1) / 2
            : (num_nodes > 2 ? (num_nodes - 1) / 2 : (num_nodes > 1 ? 1 : 0));
  uint32_t crashes = light ? 1
                     : heavy
                         ? 2 + static_cast<uint32_t>(rng.NextBounded(3))
                         : 1 + static_cast<uint32_t>(rng.NextBounded(2));
  std::vector<DownWindow> down;
  for (uint32_t c = 0; c < crashes && max_down > 0; ++c) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const NodeId node =
          static_cast<NodeId>(rng.NextBounded(num_nodes));
      if (light && node == 0) continue;  // keep the "observer" node up
      const Micros begin = at(0.05, 0.7);
      const Micros end =
          begin + dur(heavy ? 0.1 : 0.05, heavy ? 0.35 : 0.2, begin);
      bool ok = true;
      uint32_t concurrent = 1;
      for (const DownWindow& w : down) {
        if (!Overlaps(w, begin, end)) continue;
        if (w.node == node) {
          ok = false;
          break;
        }
        concurrent++;
      }
      if (!ok || concurrent > max_down) continue;
      down.push_back({node, begin, end});
      FaultEvent crash;
      crash.at_us = begin;
      crash.type = FaultType::kCrash;
      crash.a = node;
      plan.events.push_back(crash);
      FaultEvent recover;
      recover.at_us = end;
      recover.type = FaultType::kRecover;
      recover.a = node;
      plan.events.push_back(recover);
      break;
    }
  }

  // Link cuts (healed within the window).
  uint32_t cuts = light ? 0
                  : heavy ? 1 + static_cast<uint32_t>(rng.NextBounded(2))
                          : static_cast<uint32_t>(rng.NextBounded(2));
  for (uint32_t c = 0; c < cuts && num_nodes >= 2; ++c) {
    const NodeId a = static_cast<NodeId>(rng.NextBounded(num_nodes));
    NodeId b = static_cast<NodeId>(rng.NextBounded(num_nodes - 1));
    if (b >= a) b++;
    const Micros begin = at(0.05, 0.6);
    const Micros end = begin + dur(0.05, heavy ? 0.3 : 0.2, begin);
    FaultEvent cut;
    cut.at_us = begin;
    cut.type = FaultType::kLinkCut;
    cut.a = a;
    cut.b = b;
    plan.events.push_back(cut);
    FaultEvent heal = cut;
    heal.at_us = end;
    heal.type = FaultType::kLinkHeal;
    plan.events.push_back(heal);
  }

  // Delay spikes: a<->b gets extra latency well above base for a while.
  uint32_t spikes = light ? 1
                    : heavy ? 2 + static_cast<uint32_t>(rng.NextBounded(3))
                            : 1 + static_cast<uint32_t>(rng.NextBounded(3));
  for (uint32_t s = 0; s < spikes && num_nodes >= 2; ++s) {
    const NodeId a = static_cast<NodeId>(rng.NextBounded(num_nodes));
    NodeId b = static_cast<NodeId>(rng.NextBounded(num_nodes - 1));
    if (b >= a) b++;
    FaultEvent spike;
    spike.at_us = at(0.05, 0.7);
    spike.type = FaultType::kDelaySpike;
    spike.a = a;
    spike.b = b;
    spike.duration_us = dur(0.05, 0.2, spike.at_us);
    spike.delay_us = 2000 + rng.NextBounded(8000);
    plan.events.push_back(spike);
  }

  // Loss bursts: the Section-4 message-loss regime. Default keeps the
  // rate low (<= 1%); heavy goes to double digits, where the unilateral
  // termination rules genuinely come under fire.
  uint32_t bursts = light ? 0
                    : heavy ? 1 + static_cast<uint32_t>(rng.NextBounded(2))
                            : static_cast<uint32_t>(rng.NextBounded(2));
  for (uint32_t l = 0; l < bursts; ++l) {
    FaultEvent burst;
    burst.at_us = at(0.05, 0.6);
    burst.type = FaultType::kLossBurst;
    burst.duration_us = dur(0.05, heavy ? 0.35 : 0.15, burst.at_us);
    burst.probability = heavy ? 0.10 + rng.NextDouble() * 0.25
                              : 0.002 + rng.NextDouble() * 0.008;
    plan.events.push_back(burst);
  }

  // Partitions: heavy only. A minority group is isolated, then healed.
  if (heavy && num_nodes >= 3 && rng.NextBounded(2) == 0) {
    const uint32_t group_size =
        1 + static_cast<uint32_t>(rng.NextBounded(num_nodes / 2));
    std::vector<NodeId> pool(num_nodes);
    for (uint32_t i = 0; i < num_nodes; ++i) pool[i] = i;
    std::vector<NodeId> group;
    for (uint32_t g = 0; g < group_size; ++g) {
      const size_t pick = rng.NextBounded(pool.size());
      group.push_back(pool[pick]);
      pool.erase(pool.begin() + static_cast<long>(pick));
    }
    std::sort(group.begin(), group.end());
    FaultEvent part;
    part.at_us = at(0.1, 0.5);
    part.type = FaultType::kPartition;
    part.group = group;
    plan.events.push_back(part);
    FaultEvent heal;
    heal.at_us = part.at_us + dur(0.1, 0.3, part.at_us);
    heal.type = FaultType::kPartitionHeal;
    heal.group = group;
    plan.events.push_back(heal);
  }

  std::sort(plan.events.begin(), plan.events.end(),
            [](const FaultEvent& x, const FaultEvent& y) {
              return std::make_tuple(x.at_us, static_cast<uint8_t>(x.type),
                                     x.a, x.b) <
                     std::make_tuple(y.at_us, static_cast<uint8_t>(y.type),
                                     y.a, y.b);
            });
  return plan;
}

// --------------------------------------------------------------------------
// JSON parser (schema-specific, tolerant of whitespace and unknown keys —
// same approach as trace_reader.cc)
// --------------------------------------------------------------------------

namespace {

struct Cursor {
  const char* p;
  const char* end;
  std::string err;

  bool Fail(const std::string& what) {
    if (err.empty()) err = what;
    return false;
  }
  void SkipWs() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) p++;
  }
  bool Peek(char c) {
    SkipWs();
    return p < end && *p == c;
  }
  bool Consume(char c) {
    SkipWs();
    if (p >= end || *p != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    p++;
    return true;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (p < end && *p != '"') {
      if (*p == '\\' && p + 1 < end) p++;  // schema uses no escapes; skip
      out->push_back(*p++);
    }
    if (p >= end) return Fail("unterminated string");
    p++;  // closing quote
    return true;
  }
  bool ParseNumber(double* out) {
    SkipWs();
    char* num_end = nullptr;
    *out = std::strtod(p, &num_end);
    if (num_end == p) return Fail("expected number");
    p = num_end;
    return true;
  }
  // Skips any JSON value (for unknown keys).
  bool SkipValue() {
    SkipWs();
    if (p >= end) return Fail("unexpected end of input");
    if (*p == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (*p == '{' || *p == '[') {
      const char open = *p;
      const char close = open == '{' ? '}' : ']';
      p++;
      int depth = 1;
      while (p < end && depth > 0) {
        if (*p == '"') {
          std::string ignored;
          if (!ParseString(&ignored)) return false;
          continue;
        }
        if (*p == open) depth++;
        if (*p == close) depth--;
        p++;
      }
      return depth == 0 || Fail("unbalanced brackets");
    }
    while (p < end && *p != ',' && *p != '}' && *p != ']') p++;
    return true;
  }
};

bool ParseNodeArray(Cursor& c, std::vector<NodeId>* out) {
  if (!c.Consume('[')) return false;
  out->clear();
  if (c.Peek(']')) return c.Consume(']');
  while (true) {
    double v = 0;
    if (!c.ParseNumber(&v)) return false;
    out->push_back(static_cast<NodeId>(v));
    if (c.Peek(']')) return c.Consume(']');
    if (!c.Consume(',')) return false;
  }
}

bool ParseEvent(Cursor& c, FaultEvent* ev) {
  if (!c.Consume('{')) return false;
  bool saw_type = false;
  while (true) {
    std::string key;
    if (!c.ParseString(&key)) return false;
    if (!c.Consume(':')) return false;
    if (key == "type") {
      std::string name;
      if (!c.ParseString(&name)) return false;
      if (!FaultTypeFromString(name, &ev->type)) {
        return c.Fail("unknown fault type \"" + name + "\"");
      }
      saw_type = true;
    } else if (key == "group") {
      if (!ParseNodeArray(c, &ev->group)) return false;
    } else {
      double v = 0;
      if (key == "at_us" || key == "a" || key == "b" ||
          key == "duration_us" || key == "delay_us" ||
          key == "probability") {
        if (!c.ParseNumber(&v)) return false;
        if (key == "at_us") ev->at_us = static_cast<Micros>(v);
        if (key == "a") ev->a = static_cast<NodeId>(v);
        if (key == "b") ev->b = static_cast<NodeId>(v);
        if (key == "duration_us") ev->duration_us = static_cast<Micros>(v);
        if (key == "delay_us") ev->delay_us = static_cast<Micros>(v);
        if (key == "probability") ev->probability = v;
      } else if (!c.SkipValue()) {
        return false;
      }
    }
    if (c.Peek('}')) break;
    if (!c.Consume(',')) return false;
  }
  if (!c.Consume('}')) return false;
  return saw_type || c.Fail("event without \"type\"");
}

}  // namespace

bool ParseFaultPlan(const std::string& json, FaultPlan* out,
                    std::string* error) {
  Cursor c{json.data(), json.data() + json.size(), {}};
  FaultPlan plan;
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = c.err.empty() ? what : c.err;
    return false;
  };
  if (!c.Consume('{')) return fail("not a JSON object");
  while (true) {
    std::string key;
    if (!c.ParseString(&key)) return fail("bad key");
    if (!c.Consume(':')) return fail("missing ':'");
    if (key == "seed" || key == "num_nodes" || key == "horizon_us") {
      double v = 0;
      if (!c.ParseNumber(&v)) return fail("bad number for " + key);
      if (key == "seed") plan.seed = static_cast<uint64_t>(v);
      if (key == "num_nodes") plan.num_nodes = static_cast<uint32_t>(v);
      if (key == "horizon_us") plan.horizon_us = static_cast<Micros>(v);
    } else if (key == "intensity") {
      std::string name;
      if (!c.ParseString(&name)) return fail("bad intensity");
      if (!ParseIntensity(name, &plan.intensity)) {
        return fail("unknown intensity \"" + name + "\"");
      }
    } else if (key == "events") {
      if (!c.Consume('[')) return fail("events is not an array");
      if (!c.Peek(']')) {
        while (true) {
          FaultEvent ev;
          if (!ParseEvent(c, &ev)) return fail("bad event");
          plan.events.push_back(std::move(ev));
          if (c.Peek(']')) break;
          if (!c.Consume(',')) return fail("missing ',' in events");
        }
      }
      if (!c.Consume(']')) return fail("unterminated events array");
    } else if (!c.SkipValue()) {
      return fail("bad value for " + key);
    }
    if (c.Peek('}')) break;
    if (!c.Consume(',')) return fail("missing ',' in plan object");
  }
  if (!c.Consume('}')) return fail("unterminated plan object");
  if (plan.num_nodes == 0) return fail("plan missing num_nodes");
  if (plan.horizon_us == 0) return fail("plan missing horizon_us");
  *out = std::move(plan);
  return true;
}

bool WriteFaultPlanFile(const FaultPlan& plan, const std::string& path,
                        std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << plan.ToJson();
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

bool ReadFaultPlanFile(const std::string& path, FaultPlan* out,
                       std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseFaultPlan(buf.str(), out, error);
}

}  // namespace ecdb
