#include "chaos/consistency_audit.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "wal/log_record.h"

namespace ecdb {

namespace {

struct WalEvidence {
  std::vector<NodeId> commit_nodes;  // nodes whose WAL has a commit record
  std::vector<NodeId> abort_nodes;   // nodes whose WAL has an abort record
};

void Dedup(std::vector<NodeId>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

std::string NodeList(const std::vector<NodeId>& nodes) {
  std::ostringstream out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out << ",";
    out << nodes[i];
  }
  return out.str();
}

}  // namespace

AuditResult RunConsistencyAudit(SimCluster* cluster, ChaosDriver* driver,
                                size_t drain_budget) {
  AuditResult result;

  // 1. Back to a fault-free network with every node up: the audit judges
  // protocol outcomes, not behaviour under an adversary that never stops.
  if (driver != nullptr) {
    driver->ClearFaults();
  } else {
    for (NodeId id = 0; id < cluster->num_nodes(); ++id) {
      if (cluster->node(id).crashed()) cluster->RecoverNode(id);
    }
  }

  // 2. Stop the closed loop and drain in-flight work.
  cluster->Quiesce();
  const size_t drained = cluster->RunToQuiescence(drain_budget);
  bool quiescent = drained < drain_budget;

  // 3. Force every node through crash -> WAL replay -> RecoveryManager.
  // The order (all crash, then all recover) is the hardest variant: no
  // node can answer from live pre-crash engine state, only from WALs and
  // reseeded decision ledgers.
  for (NodeId id = 0; id < cluster->num_nodes(); ++id) {
    cluster->CrashNode(id);
  }
  for (NodeId id = 0; id < cluster->num_nodes(); ++id) {
    cluster->RecoverNode(id);
  }
  const size_t resolved = cluster->RunToQuiescence(drain_budget);
  quiescent = quiescent && resolved < drain_budget;
  result.quiescent = quiescent;
  if (!quiescent) {
    result.violations.push_back(
        {"liveness", kInvalidTxn,
         "drain did not reach quiescence within the event budget"});
  }

  // Collect decision evidence from every WAL.
  std::unordered_map<TxnId, WalEvidence> evidence;
  for (NodeId id = 0; id < cluster->num_nodes(); ++id) {
    for (const LogRecord& r : cluster->node(id).wal().Scan()) {
      switch (r.type) {
        case LogRecordType::kCommitDecision:
        case LogRecordType::kCommitReceived:
        case LogRecordType::kTransactionCommit:
          evidence[r.txn].commit_nodes.push_back(id);
          break;
        case LogRecordType::kAbortDecision:
        case LogRecordType::kAbortReceived:
        case LogRecordType::kTransactionAbort:
          evidence[r.txn].abort_nodes.push_back(id);
          break;
        default:
          break;
      }
    }
  }
  for (auto& [txn, ev] : evidence) {
    Dedup(&ev.commit_nodes);
    Dedup(&ev.abort_nodes);
  }

  // (a) Atomicity: no transaction may leave both commit and abort records
  // behind, across all nodes' stable storage.
  for (const auto& [txn, ev] : evidence) {
    if (!ev.commit_nodes.empty() && !ev.abort_nodes.empty()) {
      result.violations.push_back(
          {"atomicity", txn,
           "commit logged at node(s) " + NodeList(ev.commit_nodes) +
               " but abort logged at node(s) " + NodeList(ev.abort_nodes)});
    }
  }
  // ... and no node may have *applied* conflicting decisions (in-memory
  // view; catches conflicts the WAL scan cannot, e.g. EC-noforward apply
  // paths that logged nothing).
  std::vector<TxnId> monitor_violations = cluster->monitor().Violations();
  std::sort(monitor_violations.begin(), monitor_violations.end());
  for (TxnId txn : monitor_violations) {
    const auto it = evidence.find(txn);
    if (it != evidence.end() && !it->second.commit_nodes.empty() &&
        !it->second.abort_nodes.empty()) {
      continue;  // already reported from the WAL evidence
    }
    result.violations.push_back(
        {"atomicity", txn,
         "conflicting decisions applied (SafetyMonitor)"});
  }

  // (b) Durability: every client-acked protocol commit must survive the
  // full restart — a commit record at its coordinator, no abort anywhere.
  for (NodeId id = 0; id < cluster->num_nodes(); ++id) {
    for (TxnId txn : cluster->node(id).acked_commits()) {
      result.acked_commits++;
      const auto it = evidence.find(txn);
      const bool has_commit =
          it != evidence.end() &&
          std::binary_search(it->second.commit_nodes.begin(),
                             it->second.commit_nodes.end(),
                             TxnCoordinator(txn));
      if (!has_commit) {
        result.violations.push_back(
            {"durability", txn,
             "client-acked commit has no commit record in coordinator " +
                 std::to_string(TxnCoordinator(txn)) + "'s WAL"});
      } else if (!it->second.abort_nodes.empty()) {
        result.violations.push_back(
            {"durability", txn,
             "client-acked commit aborted at node(s) " +
                 NodeList(it->second.abort_nodes)});
      }
    }
  }

  // (c) Liveness: after recovery and drain, no active node may still hold
  // an undecided transaction. Blocked 2PC cohorts are the protocol's
  // documented failure mode — reported, not counted as violations.
  for (NodeId id = 0; id < cluster->num_nodes(); ++id) {
    auto unresolved = cluster->node(id).engine().UnresolvedTxns();
    std::sort(unresolved.begin(), unresolved.end());
    for (const auto& [txn, blocked] : unresolved) {
      if (blocked) continue;
      result.violations.push_back(
          {"liveness", txn,
           "still undecided at node " + std::to_string(id) +
               " after full restart and drain"});
    }
  }
  result.blocked_txns = cluster->monitor().BlockedTxnCount();

  std::sort(result.violations.begin(), result.violations.end(),
            [](const AuditViolation& x, const AuditViolation& y) {
              if (x.check != y.check) return x.check < y.check;
              if (x.txn != y.txn) return x.txn < y.txn;
              return x.detail < y.detail;
            });
  return result;
}

}  // namespace ecdb
