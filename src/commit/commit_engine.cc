#include "commit/commit_engine.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace ecdb {

CommitEngine::CommitEngine(CommitProtocol protocol, CommitEnv* env,
                           CommitEngineConfig config)
    : protocol_(protocol), env_(env), config_(config) {}

CommitEngine::TxnRecord* CommitEngine::Find(TxnId txn) {
  const uint32_t* idx = index_.Find(txn);
  return idx == nullptr ? nullptr : &pool_[*idx];
}

const CommitEngine::TxnRecord* CommitEngine::Find(TxnId txn) const {
  const uint32_t* idx = index_.Find(txn);
  return idx == nullptr ? nullptr : &pool_[*idx];
}

CommitEngine::TxnRecord& CommitEngine::GetOrCreate(TxnId txn) {
  const auto [slot, inserted] = index_.Emplace(txn, 0);
  if (!inserted) return pool_[*slot];
  uint32_t idx;
  if (!free_records_.empty()) {
    idx = free_records_.back();  // already Reset by ReleaseRecord
    free_records_.pop_back();
  } else {
    idx = static_cast<uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  *slot = idx;  // pool_ growth does not move index_'s slots
  return pool_[idx];
}

void CommitEngine::ReleaseRecord(TxnId txn) {
  const uint32_t* idx = index_.Find(txn);
  if (idx == nullptr) return;
  const uint32_t freed = *idx;
  index_.Erase(txn);
  pool_[freed].Reset();
  free_records_.push_back(freed);
}

void CommitEngine::SendTo(NodeId dst, TxnId txn, MsgType type,
                          const TxnRecord& rec, bool forwarded) {
  Message msg;
  msg.type = type;
  msg.src = env_->self();
  msg.dst = dst;
  msg.txn = txn;
  msg.participants = rec.participants;
  msg.forwarded = forwarded;
  env_->Send(std::move(msg));
}

void CommitEngine::BroadcastDecision(TxnId txn, TxnRecord& rec,
                                     bool forwarded) {
  const MsgType type = rec.decision == Decision::kCommit
                           ? MsgType::kGlobalCommit
                           : MsgType::kGlobalAbort;
  uint64_t recipients = 0;
  if (!rec.participants.empty()) {
    for (NodeId p : rec.participants) {
      if (p != env_->self()) {
        SendTo(p, txn, type, rec, forwarded);
        recipients++;
      }
    }
  } else {
    // Degenerate case: this node never learned the participant list (no
    // Prepare arrived). Tell whoever we know about: the coordinator and any
    // node that answered our termination query.
    FlatNodeSet targets;
    if (rec.coordinator != kInvalidNode && rec.coordinator != env_->self()) {
      targets.insert(rec.coordinator);
    }
    for (const auto& [node, reply] : rec.term_replies) targets.insert(node);
    for (NodeId t : targets) SendTo(t, txn, type, rec, forwarded);
    recipients = targets.size();
  }
  // Every path that pushes the decision onto the network funnels through
  // here (coordinator broadcast, EC forward, termination leader), so this
  // is the one place the transmit leg of "first transmit then commit" is
  // traced. EC-noforward participants never reach it — by design.
  Trace(TraceEventType::kDecisionTransmit, txn, recipients, kInvalidNode,
        static_cast<uint8_t>(rec.decision));
}

// --------------------------------------------------------------------------
// Coordinator side
// --------------------------------------------------------------------------

void CommitEngine::StartCommit(TxnId txn, CowVector<NodeId> participants,
                               Decision own_vote) {
  ECDB_CHECK(!participants.empty() && participants[0] == env_->self());
  TxnRecord& rec = GetOrCreate(txn);
  rec.is_coordinator = true;
  rec.coordinator = env_->self();
  rec.participants = std::move(participants);
  rec.own_vote = own_vote;
  rec.start_us = env_->NowUs();
  SetState(txn, rec, CohortState::kWait);

  if (protocol_ != CommitProtocol::kTwoPhasePresumedAbort) {
    env_->Log(txn, LogRecordType::kBeginCommit);
  }

  // A termination leader may have decided this transaction already (its
  // cohort timed out while our execution replies were delayed) — the
  // forwarded decision landed in the ledger. Honor it instead of running
  // the vote; re-deciding could contradict what cohorts already applied.
  if (!decision_ledger_.empty()) {  // empty-check keeps the default path cold
    const Decision* prior = decision_ledger_.Find(txn);
    if (prior != nullptr) {
      CoordinatorDecide(txn, rec, *prior);
      return;
    }
  }

  // Cohorts are everyone in the list but us; iterated in place instead of
  // materializing a vector per transaction.
  bool has_cohorts = false;
  for (NodeId p : rec.participants) {
    if (p != env_->self()) {
      has_cohorts = true;
      break;
    }
  }
  if (own_vote == Decision::kAbort || !has_cohorts) {
    CoordinatorDecide(txn, rec, own_vote);
    return;
  }
  for (NodeId c : rec.participants) {
    if (c == env_->self()) continue;
    SendTo(c, txn, MsgType::kPrepare, rec);
    rec.votes_pending.insert(c);
  }
  env_->ArmTimer(txn, config_.timeout_us);
}

void CommitEngine::OnVote(const Message& msg, TxnRecord& rec) {
  if (rec.state != CohortState::kWait) return;  // late vote after decision
  rec.votes_pending.erase(msg.src);
  if (msg.type == MsgType::kVoteAbort) {
    rec.any_vote_abort = true;
  } else {
    rec.commit_voters.insert(msg.src);
  }
  if (rec.votes_pending.empty()) {
    CoordinatorAllVotesIn(msg.txn, rec);
  }
}

void CommitEngine::CoordinatorAllVotesIn(TxnId txn, TxnRecord& rec) {
  if (rec.any_vote_abort || rec.own_vote == Decision::kAbort) {
    CoordinatorDecide(txn, rec, Decision::kAbort);
    return;
  }
  // Commit-bound: the vote-collection phase ends here (abort-bound
  // transactions are excluded from phase-latency accounting).
  env_->OnPhaseSample(txn, CommitPhase::kVoteCollection,
                      env_->NowUs() - rec.start_us);
  if (protocol_ == CommitProtocol::kThreePhase) {
    // Extra phase: Prepare-to-Commit, then wait for acknowledgments.
    SetState(txn, rec, CohortState::kPreCommit);
    env_->Log(txn, LogRecordType::kPreCommit);
    for (NodeId c : rec.participants) {
      if (c == env_->self()) continue;
      SendTo(c, txn, MsgType::kPreCommit, rec);
      rec.precommit_acks_pending.insert(c);
    }
    env_->ArmTimer(txn, config_.timeout_us);
    return;
  }
  CoordinatorDecide(txn, rec, Decision::kCommit);
}

void CommitEngine::OnPreCommitAck(const Message& msg, TxnRecord& rec) {
  if (rec.state != CohortState::kPreCommit || !rec.is_coordinator) return;
  rec.precommit_acks_pending.erase(msg.src);
  if (rec.precommit_acks_pending.empty()) {
    CoordinatorDecide(msg.txn, rec, Decision::kCommit);
  }
}

void CommitEngine::CoordinatorDecide(TxnId txn, TxnRecord& rec,
                                     Decision decision) {
  env_->CancelTimer(txn);
  rec.decided = true;
  rec.decision = decision;
  // Presumed-abort coordinators write no abort records at all: recovery
  // maps "no entry" to abort, which is exactly the presumption.
  const bool presumed = protocol_ == CommitProtocol::kTwoPhasePresumedAbort &&
                        decision == Decision::kAbort;
  if (!presumed) {
    env_->Log(txn, decision == Decision::kCommit
                       ? LogRecordType::kCommitDecision
                       : LogRecordType::kAbortDecision);
  }
  // "First transmit and then commit": the global decision reaches the
  // network before the coordinator applies it locally. (2PC/3PC share the
  // ordering; the distinction is that they then wait for acknowledgments.)
  // EC makes the transmit leg an explicit (hidden) state — Figure 6's
  // TRANSMIT-C/TRANSMIT-A — which the trace records even though control
  // passes straight through it.
  if (IsEasyCommit()) {
    SetState(txn, rec, decision == Decision::kCommit
                           ? CohortState::kTransmitC
                           : CohortState::kTransmitA);
  }
  BroadcastDecision(txn, rec, /*forwarded=*/false);
  if (AcksExpectedFor(decision)) {
    // Wait for an ack from every cohort that voted commit (abort-voters
    // have already aborted unilaterally and forgotten the transaction).
    rec.acks_pending = rec.commit_voters;
  }
  ApplyAndLog(txn, rec, decision);
  MaybeCleanup(txn, rec);
}

void CommitEngine::OnAck(const Message& msg, TxnRecord& rec) {
  rec.acks_pending.erase(msg.src);
  if (rec.applied) MaybeCleanup(msg.txn, rec);
}

// --------------------------------------------------------------------------
// Participant side
// --------------------------------------------------------------------------

void CommitEngine::ExpectPrepare(TxnId txn, NodeId coordinator,
                                 CowVector<NodeId> participants) {
  TxnRecord& rec = GetOrCreate(txn);
  if (rec.decided) return;  // decision already arrived (fast path races)
  rec.is_coordinator = false;
  rec.coordinator = coordinator;
  if (!participants.empty()) rec.participants = std::move(participants);
  rec.state = CohortState::kInitial;
  env_->ArmTimer(txn, config_.timeout_us);
}

void CommitEngine::OnPrepare(const Message& msg) {
  if (!decision_ledger_.empty() && Find(msg.txn) == nullptr) {
    // Prepare for a transaction we already decided and cleaned up — e.g.
    // the unilateral no-Prepare timeout abort racing a delayed Prepare.
    // Creating a fresh record would re-run the vote and can contradict
    // the applied decision (abort applied, then READY + vote-commit on
    // the resurrected record). Answer from the ledger instead.
    const Decision* prior = decision_ledger_.Find(msg.txn);
    if (prior != nullptr) {
      Message reply;
      reply.type = *prior == Decision::kCommit ? MsgType::kVoteCommit
                                               : MsgType::kVoteAbort;
      reply.src = env_->self();
      reply.dst = msg.src;
      reply.txn = msg.txn;
      env_->Send(std::move(reply));
      return;
    }
  }
  TxnRecord& rec = GetOrCreate(msg.txn);
  if (rec.decided) return;
  rec.coordinator = msg.src;
  if (!msg.participants.empty()) rec.participants = msg.participants;

  if (rec.state == CohortState::kReady) {
    // Duplicate Prepare (coordinator retry): re-send our vote.
    SendTo(msg.src, msg.txn,
           rec.own_vote == Decision::kCommit ? MsgType::kVoteCommit
                                             : MsgType::kVoteAbort,
           rec);
    return;
  }
  if (rec.state != CohortState::kInitial) return;

  const Decision vote = env_->VoteFor(msg.txn);
  rec.own_vote = vote;

  if (IsEasyCommit()) {
    // Observation I: an EC participant never moves INITIAL -> ABORT
    // directly. Whatever it votes, it enters READY and waits for the
    // global decision (Figure 5b: send decision, then add ready to log).
    SendTo(msg.src, msg.txn,
           vote == Decision::kCommit ? MsgType::kVoteCommit
                                     : MsgType::kVoteAbort,
           rec);
    env_->Log(msg.txn, LogRecordType::kReady);
    rec.ready_us = env_->NowUs();
    SetState(msg.txn, rec, CohortState::kReady);
    env_->ArmTimer(msg.txn, config_.timeout_us);
    return;
  }

  if (vote == Decision::kCommit) {
    env_->Log(msg.txn, LogRecordType::kReady);
    SendTo(msg.src, msg.txn, MsgType::kVoteCommit, rec);
    rec.ready_us = env_->NowUs();
    SetState(msg.txn, rec, CohortState::kReady);
    env_->ArmTimer(msg.txn, config_.timeout_us);
    return;
  }
  // 2PC/3PC: an abort vote moves the cohort to ABORT unilaterally.
  SendTo(msg.src, msg.txn, MsgType::kVoteAbort, rec);
  env_->CancelTimer(msg.txn);
  rec.decided = true;
  rec.decision = Decision::kAbort;
  ApplyAndLog(msg.txn, rec, Decision::kAbort);
  MaybeCleanup(msg.txn, rec);
}

void CommitEngine::OnPreCommitMsg(const Message& msg, TxnRecord& rec) {
  if (rec.decided || protocol_ != CommitProtocol::kThreePhase) return;
  if (rec.state == CohortState::kPreCommit) {
    SendTo(msg.src, msg.txn, MsgType::kPreCommitAck, rec);  // duplicate
    return;
  }
  if (rec.state != CohortState::kReady) return;
  env_->Log(msg.txn, LogRecordType::kPreCommit);
  SetState(msg.txn, rec, CohortState::kPreCommit);
  SendTo(msg.src, msg.txn, MsgType::kPreCommitAck, rec);
  env_->ArmTimer(msg.txn, config_.timeout_us);
}

void CommitEngine::OnGlobalDecision(const Message& msg, TxnRecord& rec) {
  const Decision decision = msg.type == MsgType::kGlobalCommit
                                ? Decision::kCommit
                                : Decision::kAbort;
  if (!msg.participants.empty() && rec.participants.empty()) {
    rec.participants = msg.participants;
  }
  rec.seen_decision_from.insert(msg.src);
  if (rec.decided) {
    // Duplicate or EC forward; only relevant for cleanup accounting. A
    // *conflicting* decision can never happen under EC/2PC/3PC with node
    // failures only; the forwarding-disabled ablation does produce it, and
    // the counter is how that experiment measures safety violations.
    duplicate_decisions_suppressed_++;
    if (rec.decision != decision) {
      conflicting_decisions_++;
      ECDB_LOG(kWarn, "conflicting decision for txn %llu on node %u",
               static_cast<unsigned long long>(msg.txn), env_->self());
    }
    if (rec.applied) MaybeCleanup(msg.txn, rec);
    return;
  }
  AdoptDecision(msg.txn, rec, decision, /*from_termination=*/false);
}

void CommitEngine::AdoptDecision(TxnId txn, TxnRecord& rec, Decision decision,
                                 bool from_termination) {
  env_->CancelTimer(txn);
  rec.in_termination = false;
  rec.decided = true;
  rec.decision = decision;

  // Participant-side transmit phase: READY until the decision arrived.
  // Commit-bound only, and not for termination outcomes (those measure
  // failure handling, not the steady-state transmit leg).
  if (!from_termination && decision == Decision::kCommit &&
      rec.ready_us != 0) {
    env_->OnPhaseSample(txn, CommitPhase::kDecisionTransmit,
                        env_->NowUs() - rec.ready_us);
  }
  // EC's hidden transmit state (Figure 6): entered on learning the
  // decision, left once the forwards are on the wire.
  if (IsEasyCommit() && (from_termination || ForwardingEnabled())) {
    SetState(txn, rec, decision == Decision::kCommit
                           ? CohortState::kTransmitC
                           : CohortState::kTransmitA);
  }

  if (from_termination) {
    Trace(TraceEventType::kTermRoundOutcome, txn, 0, kInvalidNode,
          static_cast<uint8_t>(decision == Decision::kCommit
                                   ? TermOutcome::kLedCommit
                                   : TermOutcome::kLedAbort));
    // Termination leader: log the decision as reached, then transmit
    // (paper cases A-C and the leader-election rule).
    env_->Log(txn, decision == Decision::kCommit
                       ? LogRecordType::kCommitDecision
                       : LogRecordType::kAbortDecision);
    BroadcastDecision(txn, rec, /*forwarded=*/true);
  } else if (IsEasyCommit()) {
    // EC participant (Figure 5b): log reception, forward to every node,
    // only then commit/abort locally.
    env_->Log(txn, decision == Decision::kCommit
                       ? LogRecordType::kCommitReceived
                       : LogRecordType::kAbortReceived);
    if (ForwardingEnabled()) {
      BroadcastDecision(txn, rec, /*forwarded=*/true);
    }
  } else {
    // 2PC/3PC participants acknowledge the coordinator's decision; the
    // presumed variants skip the ack on the presumed side.
    if (AcksExpectedFor(decision) && rec.coordinator != kInvalidNode &&
        rec.coordinator != env_->self()) {
      SendTo(rec.coordinator, txn, MsgType::kAck, rec);
    }
  }

  ApplyAndLog(txn, rec, decision);
  MaybeCleanup(txn, rec);
}

void CommitEngine::ApplyAndLog(TxnId txn, TxnRecord& rec, Decision decision) {
  ECDB_CHECK(!rec.applied);
  rec.applied = true;
  rec.blocked = false;
  Trace(TraceEventType::kDecisionApply, txn, 0, kInvalidNode,
        static_cast<uint8_t>(decision));
  env_->ApplyDecision(txn, decision);
  rec.applied_us = env_->NowUs();
  const bool presumed = protocol_ == CommitProtocol::kTwoPhasePresumedAbort &&
                        decision == Decision::kAbort;
  if (!presumed) {
    env_->Log(txn, decision == Decision::kCommit
                       ? LogRecordType::kTransactionCommit
                       : LogRecordType::kTransactionAbort);
  }
  SetState(txn, rec, decision == Decision::kCommit ? CohortState::kCommitted
                                                   : CohortState::kAborted);
  if (config_.keep_decision_ledger) LedgerRecord(txn, decision);
}

void CommitEngine::LedgerRecord(TxnId txn, Decision decision) {
  const auto [slot, inserted] = decision_ledger_.Emplace(txn, Decision{decision});
  if (!inserted) {
    *slot = decision;
    return;
  }
  if (config_.decision_ledger_cap == 0) return;
  ledger_fifo_.push_back(txn);
  while (decision_ledger_.size() > config_.decision_ledger_cap &&
         !ledger_fifo_.empty()) {
    decision_ledger_.Erase(ledger_fifo_.front());
    ledger_fifo_.pop_front();
  }
}

void CommitEngine::MaybeCleanup(TxnId txn, TxnRecord& rec) {
  if (!rec.applied) return;

  bool pending = false;
  if (rec.is_coordinator && !IsEasyCommit()) {
    pending = !rec.acks_pending.empty();
  } else if (ForwardingEnabled()) {
    // EC (Section 5.3): resources are released only after a Global-*
    // message has been seen from every other participant. Most receipts
    // cannot possibly complete the set yet, so check the count before
    // paying a per-participant lookup; the loop stays authoritative (the
    // set is keyed by sender, which need not be a current participant).
    if (rec.seen_decision_from.size() + 1 < rec.participants.size()) {
      pending = true;
    } else {
      for (NodeId p : rec.participants) {
        if (p == env_->self()) continue;
        if (rec.seen_decision_from.count(p) == 0) {
          pending = true;
          break;
        }
      }
    }
  }

  if (pending) {
    // Give-up timer: if a peer crashed and its ack/forward never comes,
    // release resources anyway once the decision is durable. Armed once
    // per record: under EC every one of the n-1 forwards lands here, and
    // re-arming on each would churn the timer wheel and let a steady
    // trickle of duplicates push the give-up deadline out indefinitely.
    if (!rec.cleanup_armed) {
      rec.cleanup_armed = true;
      env_->ArmTimer(txn, config_.timeout_us);
    }
    return;
  }
  FinishCleanup(txn, rec);
}

void CommitEngine::FinishCleanup(TxnId txn, TxnRecord& rec) {
  // Apply phase: decision applied locally until resources are released
  // (for EC this spans the wait for every participant's forward).
  if (rec.applied && rec.decision == Decision::kCommit) {
    env_->OnPhaseSample(txn, CommitPhase::kDecisionApply,
                        env_->NowUs() - rec.applied_us);
  }
  Trace(TraceEventType::kCleanup, txn);
  env_->CancelTimer(txn);
  env_->OnCleanup(txn);
  ReleaseRecord(txn);  // `rec` is Reset and pooled past this line
}

// --------------------------------------------------------------------------
// Termination protocol
// --------------------------------------------------------------------------

void CommitEngine::OnTimeout(TxnId txn) {
  TxnRecord* rec = Find(txn);
  if (rec == nullptr) return;  // spurious (already cleaned up)

  if (rec->in_termination) {
    TerminationEvaluate(txn, *rec);
    return;
  }

  if (rec->applied) {
    // Waiting on acks (2PC/3PC coordinator) or EC forwards: give up and
    // release resources; the decision is already durable and transmitted.
    // Presumed-abort must never forget an *unacknowledged* commit — the
    // no-record-means-abort presumption is only sound because commit
    // records outlive the last missing ack.
    if (protocol_ == CommitProtocol::kTwoPhasePresumedAbort &&
        rec->decision == Decision::kCommit && !rec->acks_pending.empty()) {
      LedgerRecord(txn, Decision::kCommit);
    }
    FinishCleanup(txn, *rec);
    return;
  }

  if (rec->is_coordinator) {
    if (rec->state == CohortState::kWait) {
      // Case A: a vote is missing; abort.
      CoordinatorDecide(txn, *rec, Decision::kAbort);
      return;
    }
    if (rec->state == CohortState::kPreCommit) {
      // 3PC: a cohort failed after voting commit. Every active cohort is
      // in READY or PRE-COMMIT, so commit is safe; a recovering cohort
      // learns the outcome from its log + peers.
      CoordinatorDecide(txn, *rec, Decision::kCommit);
      return;
    }
    return;
  }

  // Participant timeouts.
  if (rec->state == CohortState::kInitial && !IsEasyCommit()) {
    // 2PC/3PC case B: no Prepare arrived; we have not voted, so the
    // coordinator cannot decide commit — unilateral abort is safe.
    env_->CancelTimer(txn);
    rec->decided = true;
    rec->decision = Decision::kAbort;
    ApplyAndLog(txn, *rec, Decision::kAbort);
    MaybeCleanup(txn, *rec);
    return;
  }
  // EC case B/C, 2PC cooperative termination, 3PC termination.
  StartTermination(txn, *rec);
}

void CommitEngine::StartTermination(TxnId txn, TxnRecord& rec) {
  if (IsTwoPhaseFamily() && rec.term_attempts >= kMaxBlockedRetries) {
    // Blocked 2PC cohorts stop re-running elections after a few fruitless
    // rounds; under fail-stop the missing coordinator never returns.
    if (!rec.blocked) {
      rec.blocked = true;
      Trace(TraceEventType::kTermRoundOutcome, txn, 0, kInvalidNode,
            static_cast<uint8_t>(TermOutcome::kBlocked));
      env_->OnBlocked(txn);
    }
    rec.in_termination = false;
    return;
  }
  termination_rounds_++;
  rec.term_attempts++;
  rec.in_termination = true;
  rec.term_replies.clear();
  Trace(TraceEventType::kTermRoundStart, txn, rec.term_attempts);

  FlatNodeSet targets;
  for (NodeId p : rec.participants) {
    if (p != env_->self()) targets.insert(p);
  }
  if (rec.coordinator != kInvalidNode && rec.coordinator != env_->self()) {
    targets.insert(rec.coordinator);
  }
  for (NodeId t : targets) SendTo(t, txn, MsgType::kTermElect, rec);
  env_->ArmTimer(txn, config_.termination_window_us);
}

void CommitEngine::OnTermElect(const Message& msg) {
  TxnRecord* rec = Find(msg.txn);
  if (rec == nullptr) {
    // Possibly already decided and cleaned up; answer from the ledger.
    const Decision* prior = decision_ledger_.Find(msg.txn);
    if (prior == nullptr) {
      if (protocol_ == CommitProtocol::kTwoPhasePresumedAbort) {
        // Presumed abort: no record of the transaction IS the answer.
        // (Sound because PA retains commit records until every cohort
        // acked; an unacked commit is never forgotten.)
        Message reply;
        reply.type = MsgType::kGlobalAbort;
        reply.src = env_->self();
        reply.dst = msg.src;
        reply.txn = msg.txn;
        reply.forwarded = true;
        env_->Send(std::move(reply));
      } else if (config_.keep_decision_ledger && !IsTwoPhaseFamily()) {
        // Ledger regime: every decision this node ever reached is in the
        // ledger (ApplyAndLog records it; recovery reseeds it from the
        // WAL), and a node that durably voted READY has a WAL record that
        // recovery resurrects. No record and no ledger entry therefore
        // means this node never voted and never decided — it simply has
        // not (yet) heard of the transaction. Say so instead of staying
        // silent, so elections can reach complete information: INITIAL is
        // exactly "I have not voted". Deliberately NOT an abort reply —
        // answering abort without remembering it would let this node
        // (e.g. a coordinator still executing the transaction) decide
        // commit moments later. Gated to the non-blocking protocols: for
        // the plain 2PC family an INITIAL reply would let cooperative
        // termination abort where the paper's 2PC blocks, erasing the
        // blocking behaviour this repo exists to contrast.
        Message reply;
        reply.type = MsgType::kTermStateReply;
        reply.src = env_->self();
        reply.dst = msg.src;
        reply.txn = msg.txn;
        reply.term_state = CohortState::kInitial;
        reply.has_decision = false;
        env_->Send(std::move(reply));
      }
      return;
    }
    Message reply;
    reply.type = *prior == Decision::kCommit ? MsgType::kGlobalCommit
                                             : MsgType::kGlobalAbort;
    reply.src = env_->self();
    reply.dst = msg.src;
    reply.txn = msg.txn;
    reply.forwarded = true;
    env_->Send(std::move(reply));
    return;
  }
  if (rec->decided) {
    // Share the decision directly; the initiator adopts it on receipt.
    SendTo(msg.src, msg.txn,
           rec->decision == Decision::kCommit ? MsgType::kGlobalCommit
                                              : MsgType::kGlobalAbort,
           *rec, /*forwarded=*/true);
    return;
  }
  Message reply;
  reply.type = MsgType::kTermStateReply;
  reply.src = env_->self();
  reply.dst = msg.src;
  reply.txn = msg.txn;
  reply.participants = rec->participants;
  reply.term_state = rec->state;
  reply.has_decision = false;
  env_->Send(std::move(reply));
}

void CommitEngine::OnTermStateReply(const Message& msg, TxnRecord& rec) {
  if (!rec.in_termination) return;
  if (!msg.participants.empty() && rec.participants.empty()) {
    rec.participants = msg.participants;
  }
  for (auto& [node, reply] : rec.term_replies) {
    if (node == msg.src) {
      reply = msg;  // peer re-replied (duplicate election round)
      return;
    }
  }
  rec.term_replies.emplace_back(msg.src, msg);
}

void CommitEngine::TerminationEvaluate(TxnId txn, TxnRecord& rec) {
  if (rec.decided) return;

  // A reply that carried a decision (defensive: deciders normally reply
  // with a Global-* message handled elsewhere).
  for (const auto& [node, reply] : rec.term_replies) {
    if (reply.has_decision) {
      AdoptDecision(txn, rec, reply.decision, /*from_termination=*/true);
      return;
    }
  }

  NodeId leader = env_->self();
  for (const auto& [node, reply] : rec.term_replies) {
    // An INITIAL reply means "I never entered the protocol for this
    // transaction" (the ledger-regime answer for an unknown txn): that
    // node has no record, no timer, and will never run an election, so
    // it cannot be deferred to.
    if (reply.term_state == CohortState::kInitial && !reply.has_decision) {
      continue;
    }
    leader = std::min(leader, node);
  }
  if (leader != env_->self()) {
    // Someone with a smaller id is active; defer to them. If their
    // decision never arrives (they crashed mid-termination), the next
    // timeout re-runs the election without them.
    Trace(TraceEventType::kTermRoundOutcome, txn, 0, leader,
          static_cast<uint8_t>(TermOutcome::kDeferred));
    rec.in_termination = false;
    env_->ArmTimer(txn, config_.timeout_us);
    return;
  }
  TerminationLead(txn, rec);
}

void CommitEngine::TerminationLead(TxnId txn, TxnRecord& rec) {
  // "Complete information": every queried peer (participants + coordinator)
  // replied this round. Any durably applied decision is logged before it is
  // applied, and a restarted node reseeds its decision ledger from the WAL,
  // so a replier that reached a decision always reports it — a full set of
  // decision-free replies proves no decision exists anywhere.
  FlatNodeSet queried;
  for (NodeId p : rec.participants) {
    if (p != env_->self()) queried.insert(p);
  }
  if (rec.coordinator != kInvalidNode && rec.coordinator != env_->self()) {
    queried.insert(rec.coordinator);
  }
  const bool complete_info = rec.term_replies.size() >= queried.size();

  if (rec.recovered && !complete_info) {
    // Section 4.2: a node recovering in the READY/PRE-COMMIT case cannot
    // terminate the transaction on its own — the decision may have been
    // reached and applied while it was down. The unilateral rules below
    // are sound only for nodes that were operational throughout the
    // failure (they would have received any decision per the transmit-
    // before-commit discipline). Keep consulting until a peer (or its
    // decision ledger) answers — or until every peer has answered with
    // complete information, which happens when the whole cluster restarts
    // (all records recovered) and would otherwise defer forever.
    Trace(TraceEventType::kTermRoundOutcome, txn, 0, kInvalidNode,
          static_cast<uint8_t>(TermOutcome::kDeferred));
    rec.in_termination = false;
    env_->ArmTimer(txn, config_.timeout_us);
    return;
  }
  // If the coordinator is alive but undecided (WAIT), its own timeout will
  // produce the decision; deciding here would race it. Defer.
  bool coordinator_active_undecided = false;
  std::vector<CohortState> states;
  states.push_back(rec.state);
  for (const auto& [node, reply] : rec.term_replies) {
    states.push_back(reply.term_state);
    if (node == rec.coordinator && reply.term_state == CohortState::kWait) {
      coordinator_active_undecided = true;
    }
  }
  if (coordinator_active_undecided) {
    Trace(TraceEventType::kTermRoundOutcome, txn, 0, rec.coordinator,
          static_cast<uint8_t>(TermOutcome::kDeferred));
    rec.in_termination = false;
    env_->ArmTimer(txn, config_.timeout_us);
    return;
  }

  // Optional loss hardening (term_fruitless_retries > 0): the EC and 3PC
  // rules below decide unilaterally from "no reply I received carries a
  // decision". That inference needs every *silent* peer to be crashed —
  // true under fail-stop, not under message loss, where a silent peer may
  // have applied the opposite decision. If any queried peer has not
  // replied, re-run the election instead, up to the configured budget.
  // (StartTermination already counted the current round in term_attempts.)
  if (config_.term_fruitless_retries > 0 && !IsTwoPhaseFamily() &&
      !complete_info) {
    // Zero replies means we are isolated (partitioned or sole survivor):
    // deciding on no information at all can always contradict a decision
    // applied on the other side of the cut, so keep deferring — progress
    // resumes when connectivity does. Partial information consumes the
    // bounded retry budget before falling back to the paper's rule.
    const bool total_silence = rec.term_replies.empty() && !queried.empty();
    if (total_silence ||
        rec.term_attempts <= config_.term_fruitless_retries) {
      Trace(TraceEventType::kTermRoundOutcome, txn, 0, kInvalidNode,
            static_cast<uint8_t>(TermOutcome::kDeferred));
      rec.in_termination = false;
      env_->ArmTimer(txn, config_.timeout_us);
      return;
    }
  }

  const auto any_in = [&](CohortState s) {
    return std::find(states.begin(), states.end(), s) != states.end();
  };

  switch (protocol_) {
    case CommitProtocol::kEasyCommit:
    case CommitProtocol::kEasyCommitNoForward:
      // Paper: "If none of the nodes know the global decision, then the
      // leader first adds a log entry for global-abort-decision-reached,
      // then transmits Global-abort ... and finally aborts."
      AdoptDecision(txn, rec, Decision::kAbort, /*from_termination=*/true);
      return;

    case CommitProtocol::kThreePhase:
      // Skeen: a PRE-COMMIT among the active nodes implies every active
      // node voted commit and no active node aborted -> commit is safe.
      // Otherwise no one can have committed -> abort.
      AdoptDecision(txn, rec,
                    any_in(CohortState::kPreCommit) ? Decision::kCommit
                                                    : Decision::kAbort,
                    /*from_termination=*/true);
      return;

    case CommitProtocol::kTwoPhase:
    case CommitProtocol::kTwoPhasePresumedAbort:
    case CommitProtocol::kTwoPhasePresumedCommit:
      // Cooperative termination: an INITIAL cohort has not voted, so abort
      // is safe. If every active cohort is READY and the coordinator is
      // down, the outcome is unknowable -> blocked. This is the 2PC
      // blocking behaviour the paper sets out to remove (the presumed
      // variants optimize logging/acks, not blocking).
      if (any_in(CohortState::kInitial)) {
        AdoptDecision(txn, rec, Decision::kAbort, /*from_termination=*/true);
        return;
      }
      rec.blocked = true;
      rec.in_termination = false;
      Trace(TraceEventType::kTermRoundOutcome, txn, 0, kInvalidNode,
            static_cast<uint8_t>(TermOutcome::kBlocked));
      env_->OnBlocked(txn);
      if (rec.term_attempts < kMaxBlockedRetries) {
        env_->ArmTimer(txn, config_.timeout_us);
      }
      return;
  }
}

void CommitEngine::Forget(TxnId txn) {
  env_->CancelTimer(txn);
  ReleaseRecord(txn);
}

void CommitEngine::ResumeAfterRecovery(TxnId txn, NodeId coordinator,
                                       CowVector<NodeId> participants,
                                       CohortState state) {
  TxnRecord& rec = GetOrCreate(txn);
  rec.is_coordinator = false;
  rec.coordinator = coordinator;
  rec.participants = std::move(participants);
  SetState(txn, rec, state);
  rec.recovered = true;
  // The next timeout runs the termination protocol, which asks the
  // participants whether a decision was reached.
  env_->ArmTimer(txn, config_.termination_window_us);
}

// --------------------------------------------------------------------------
// Dispatch and introspection
// --------------------------------------------------------------------------

void CommitEngine::OnMessage(const Message& msg) {
  switch (msg.type) {
    case MsgType::kPrepare:
      OnPrepare(msg);
      return;
    case MsgType::kTermElect:
      OnTermElect(msg);
      return;
    default:
      break;
  }

  TxnRecord* rec = Find(msg.txn);
  if (rec == nullptr) {
    // Cleaned up or never known. In the ledger regime a decision that
    // reaches us for an unknown transaction must still bind us: a
    // termination leader may abort a transaction before its coordinator
    // even reaches StartCommit (the cohort's timer raced a delayed
    // execution reply), and the coordinator must not later start the
    // protocol fresh and decide commit. StartCommit and OnPrepare consult
    // the ledger first.
    if (config_.keep_decision_ledger && (msg.type == MsgType::kGlobalCommit ||
                                         msg.type == MsgType::kGlobalAbort)) {
      if (decision_ledger_.Contains(msg.txn)) {
        // Redundant copy of a decision already on record for a cleaned-up
        // transaction — the ledger-side twin of the decided-record fast
        // path in OnGlobalDecision.
        duplicate_decisions_suppressed_++;
      } else {
        LedgerRecord(msg.txn, msg.type == MsgType::kGlobalCommit
                                  ? Decision::kCommit
                                  : Decision::kAbort);
      }
    }
    return;
  }

  switch (msg.type) {
    case MsgType::kVoteCommit:
    case MsgType::kVoteAbort:
      if (rec->is_coordinator) OnVote(msg, *rec);
      return;
    case MsgType::kPreCommit:
      OnPreCommitMsg(msg, *rec);
      return;
    case MsgType::kPreCommitAck:
      OnPreCommitAck(msg, *rec);
      return;
    case MsgType::kGlobalCommit:
    case MsgType::kGlobalAbort:
      OnGlobalDecision(msg, *rec);
      return;
    case MsgType::kAck:
      if (rec->is_coordinator) OnAck(msg, *rec);
      return;
    case MsgType::kTermStateReply:
      OnTermStateReply(msg, *rec);
      return;
    default:
      return;  // execution-layer messages are not ours
  }
}

std::optional<CommitTxnStatus> CommitEngine::StatusOf(TxnId txn) const {
  const TxnRecord* found = Find(txn);
  if (found == nullptr) return std::nullopt;
  const TxnRecord& rec = *found;
  CommitTxnStatus status;
  status.state = rec.state;
  status.is_coordinator = rec.is_coordinator;
  status.decided = rec.decided;
  status.decision = rec.decision;
  status.blocked = rec.blocked;
  status.done = false;
  status.in_termination = rec.in_termination;
  return status;
}

std::vector<TxnId> CommitEngine::BlockedTxns() const {
  std::vector<TxnId> blocked;
  for (const auto& slot : index_) {
    if (pool_[slot.value].blocked) blocked.push_back(slot.key);
  }
  return blocked;
}

std::vector<std::pair<TxnId, bool>> CommitEngine::UnresolvedTxns() const {
  std::vector<std::pair<TxnId, bool>> out;
  for (const auto& slot : index_) {
    const TxnRecord& rec = pool_[slot.value];
    if (!rec.decided) out.emplace_back(slot.key, rec.blocked);
  }
  return out;
}

}  // namespace ecdb
