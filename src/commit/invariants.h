#ifndef ECDB_COMMIT_INVARIANTS_H_
#define ECDB_COMMIT_INVARIANTS_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/types.h"
#include "net/message.h"

namespace ecdb {

/// The five state classes of the expanded EC state diagram (Figure 6):
/// every protocol-visible state maps into one of these, and Figure 7
/// defines which pairs may coexist across nodes at the same instant.
enum class StateClass : uint8_t {
  kUndecided,  // INITIAL, READY, WAIT (and 3PC PRE-COMMIT for this check)
  kTransmitA,  // global abort known, still transmitting
  kTransmitC,  // global commit known, still transmitting
  kAbort,
  kCommit,
};

/// Maps a cohort state (plus decision knowledge) to its Figure-6 class.
StateClass ClassOf(CohortState state);

/// Figure 7: whether two state classes may coexist on different nodes for
/// the same transaction. E.g. TRANSMIT-C and ABORT conflict; TRANSMIT-C
/// and COMMIT coexist.
bool CanCoexist(StateClass a, StateClass b);

/// Records the decisions every node applies for every transaction and
/// flags conflicts (one node commits while another aborts — the safety
/// violation Theorem 3.1 rules out for EC). Fault-injection tests and the
/// forwarding ablation feed this monitor; any violation under plain
/// EC/2PC/3PC with node failures is a bug. Thread-safe: the threaded
/// runtime records from every node thread concurrently.
///
/// Striped by transaction id: each node's lock table and commit engine are
/// single-thread-owned (one OS thread per node), so this monitor is the
/// one structure every node thread writes on every applied decision — the
/// actual cross-thread serialization point of the threaded runtime. One
/// global mutex here put every committing thread in one convoy; hashing
/// the txn id onto independent stripes lets decisions for different
/// transactions record in parallel, while both appliers of the *same*
/// transaction still land on one stripe — which is exactly the pair the
/// conflict check must observe together.
class SafetyMonitor {
 public:
  /// Reports that `node` applied `decision` for `txn`.
  void RecordApplied(TxnId txn, NodeId node, Decision decision);

  /// Reports that `node` declared itself blocked on `txn`.
  void RecordBlocked(TxnId txn, NodeId node);

  /// Transactions for which conflicting decisions were applied.
  std::vector<TxnId> Violations() const;

  /// Total (txn, node) blocked reports.
  uint64_t blocked_reports() const;

  /// Distinct transactions with at least one blocked node.
  size_t BlockedTxnCount() const;

  /// Decision applied by `node` for `txn`, if recorded.
  std::optional<Decision> DecisionOf(TxnId txn, NodeId node) const;

  /// All (node, decision) pairs recorded for `txn`.
  std::vector<std::pair<NodeId, Decision>> AppliedFor(TxnId txn) const;

 private:
  struct PerTxn {
    // A transaction has tens of appliers at most; a flat vector keyed by
    // linear scan beats a per-txn hash map and never allocates per insert
    // once grown.
    std::vector<std::pair<NodeId, Decision>> applied;
    bool conflict = false;
  };

  struct Stripe {
    mutable std::mutex mu;
    FlatMap<TxnId, PerTxn> txns;
    FlatMap<TxnId, uint64_t> blocked;
    uint64_t blocked_reports = 0;
  };

  static constexpr size_t kStripes = 16;  // power of two, masks cheaply

  const Stripe& StripeFor(TxnId txn) const {
    return stripes_[FlatHash<TxnId>{}(txn) & (kStripes - 1)];
  }
  Stripe& StripeFor(TxnId txn) {
    return stripes_[FlatHash<TxnId>{}(txn) & (kStripes - 1)];
  }

  std::array<Stripe, kStripes> stripes_;
};

}  // namespace ecdb

#endif  // ECDB_COMMIT_INVARIANTS_H_
