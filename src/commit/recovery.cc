#include "commit/recovery.h"

#include <unordered_map>

namespace ecdb {

RecoveryAction RecoveryManager::AnalyzeRecord(
    const std::optional<LogRecord>& last) {
  if (!last.has_value()) return RecoveryAction::kAbort;
  switch (last->type) {
    case LogRecordType::kBeginCommit:
      // Coordinator failed before reaching a decision (rule ii).
      return RecoveryAction::kAbort;
    case LogRecordType::kReady:
    case LogRecordType::kPreCommit:
      // Voted commit; the decision may have gone either way.
      return RecoveryAction::kConsultPeers;
    case LogRecordType::kCommitDecision:
    case LogRecordType::kCommitReceived:
    case LogRecordType::kTransactionCommit:
      return RecoveryAction::kCommit;
    case LogRecordType::kAbortDecision:
    case LogRecordType::kAbortReceived:
    case LogRecordType::kTransactionAbort:
      return RecoveryAction::kAbort;
  }
  return RecoveryAction::kConsultPeers;
}

RecoveryAction RecoveryManager::Analyze(const WriteAheadLog& wal, TxnId txn) {
  return AnalyzeRecord(wal.LastFor(txn));
}

std::vector<TxnId> RecoveryManager::InFlightTxns(const WriteAheadLog& wal) {
  std::unordered_map<TxnId, LogRecordType> last;
  for (const LogRecord& record : wal.Scan()) {
    last[record.txn] = record.type;
  }
  std::vector<TxnId> in_flight;
  for (const auto& [txn, type] : last) {
    if (type != LogRecordType::kTransactionCommit &&
        type != LogRecordType::kTransactionAbort) {
      in_flight.push_back(txn);
    }
  }
  return in_flight;
}

}  // namespace ecdb
