#ifndef ECDB_COMMIT_TESTBED_H_
#define ECDB_COMMIT_TESTBED_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "commit/commit_engine.h"
#include "commit/commit_env.h"
#include "commit/invariants.h"
#include "net/network.h"
#include "sim/scheduler.h"
#include "trace/trace_recorder.h"
#include "wal/wal.h"

namespace ecdb {
namespace testbed {

/// Protocol test/experimentation kit: bare hosts and a scripted cluster
/// for driving the commit engines without the full database. Used by the
/// unit tests, the exhaustive failure sweeps and the ablation benchmarks;
/// exposed as a library so downstream users can script their own failure
/// scenarios.
///
/// A bare protocol host: one CommitEngine wired to the simulated network,
/// scheduler-backed timers, an in-memory WAL and a decision recorder. This
/// is the minimal CommitEnv — no storage, no locks — so protocol unit and
/// property tests can script exact scenarios.
class ProtocolHost : public CommitEnv {
 public:
  ProtocolHost(NodeId id, CommitProtocol protocol, Scheduler* scheduler,
               SimNetwork* network, SafetyMonitor* monitor,
               CommitEngineConfig config = {})
      : id_(id),
        trace_(id),
        scheduler_(scheduler),
        network_(network),
        monitor_(monitor) {
    config.keep_decision_ledger = true;
    engine_ = std::make_unique<CommitEngine>(protocol, this, config);
    engine_->set_trace(&trace_);
    network_->RegisterNode(id_, [this](const Message& msg) {
      if (network_->IsCrashed(id_)) return;
      if (trace_.enabled()) {
        trace_.Record(TraceEventType::kMsgRecv, scheduler_->Now(), msg.txn,
                      msg.trace_seq, msg.src,
                      static_cast<uint8_t>(msg.type));
      }
      engine_->OnMessage(msg);
    });
  }

  // --- CommitEnv ---
  NodeId self() const override { return id_; }

  Micros NowUs() const override { return scheduler_->Now(); }

  void Send(Message msg) override {
    msg.src = id_;
    if (trace_.enabled()) {
      msg.trace_seq = trace_.NextSeq();
      trace_.Record(TraceEventType::kMsgSend, scheduler_->Now(), msg.txn,
                    msg.trace_seq, msg.dst, static_cast<uint8_t>(msg.type));
    }
    network_->Send(std::move(msg));
  }

  void Log(TxnId txn, LogRecordType type) override {
    if (trace_.enabled()) {
      trace_.Record(TraceEventType::kWalWrite, scheduler_->Now(), txn, 0,
                    kInvalidNode, static_cast<uint8_t>(type));
    }
    wal_.Append({0, txn, type, {}});
  }

  void ArmTimer(TxnId txn, Micros delay_us) override {
    CancelTimer(txn);
    if (trace_.enabled()) {
      trace_.Record(TraceEventType::kTimerArm, scheduler_->Now(), txn,
                    delay_us);
    }
    timers_[txn] = scheduler_->ScheduleAfter(delay_us, [this, txn]() {
      timers_.erase(txn);
      if (network_->IsCrashed(id_)) return;
      if (trace_.enabled()) {
        trace_.Record(TraceEventType::kTimerFire, scheduler_->Now(), txn);
      }
      engine_->OnTimeout(txn);
    });
  }

  void CancelTimer(TxnId txn) override {
    auto it = timers_.find(txn);
    if (it == timers_.end()) return;
    if (trace_.enabled()) {
      trace_.Record(TraceEventType::kTimerCancel, scheduler_->Now(), txn);
    }
    scheduler_->Cancel(it->second);
    timers_.erase(it);
  }

  Decision VoteFor(TxnId txn) override {
    (void)txn;
    return vote_;
  }

  void ApplyDecision(TxnId txn, Decision decision) override {
    // A node whose crash truncated its own decision broadcast (send-filter
    // fault injection) never reaches the commit/abort step: under EC the
    // local apply strictly follows a *completed* transmission.
    if (network_->IsCrashed(id_)) return;
    applied_[txn] = decision;
    if (monitor_ != nullptr) monitor_->RecordApplied(txn, id_, decision);
    if (crash_after_apply_) {
      // Fail-stop immediately after the local commit/abort step: the
      // narrowest window in which a decided node can disappear.
      network_->CrashNode(id_);
    }
  }

  void OnBlocked(TxnId txn) override {
    blocked_count_++;
    if (monitor_ != nullptr) monitor_->RecordBlocked(txn, id_);
  }

  void OnCleanup(TxnId txn) override { cleaned_.insert(txn); }

  // --- Test controls ---
  void set_vote(Decision vote) { vote_ = vote; }
  void set_crash_after_apply(bool v) { crash_after_apply_ = v; }

  /// Turns on event tracing for this host (inert under ECDB_TRACE=OFF).
  void EnableTracing(size_t capacity = TraceRecorder::kDefaultCapacity) {
    trace_.Enable(capacity);
  }

  CommitEngine& engine() { return *engine_; }
  MemoryWal& wal() { return wal_; }
  TraceRecorder& trace() { return trace_; }

  std::optional<Decision> applied(TxnId txn) const {
    auto it = applied_.find(txn);
    if (it == applied_.end()) return std::nullopt;
    return it->second;
  }
  bool cleaned(TxnId txn) const { return cleaned_.count(txn) > 0; }
  uint64_t blocked_count() const { return blocked_count_; }

  /// Log entry types for `txn`, in order.
  std::vector<LogRecordType> LogTypes(TxnId txn) const {
    std::vector<LogRecordType> out;
    for (const LogRecord& r : wal_.Scan()) {
      if (r.txn == txn) out.push_back(r.type);
    }
    return out;
  }

 private:
  NodeId id_;
  TraceRecorder trace_;
  Scheduler* scheduler_;
  SimNetwork* network_;
  SafetyMonitor* monitor_;
  std::unique_ptr<CommitEngine> engine_;
  MemoryWal wal_;
  Decision vote_ = Decision::kCommit;
  std::unordered_map<TxnId, Decision> applied_;
  std::unordered_set<TxnId> cleaned_;
  std::unordered_map<TxnId, Scheduler::TaskId> timers_;
  uint64_t blocked_count_ = 0;
  bool crash_after_apply_ = false;
};

/// A cluster of ProtocolHosts over a SimNetwork: the fixture for protocol
/// unit tests and the exhaustive failure sweeps.
class ProtocolTestbed {
 public:
  ProtocolTestbed(CommitProtocol protocol, uint32_t num_nodes,
                  NetworkConfig net = {}, CommitEngineConfig commit = {},
                  uint64_t seed = 7,
                  SchedulerBackend backend = SchedulerBackend::kHeap)
      : network_(&scheduler_, net, seed) {
    scheduler_.SetBackend(backend);
    for (NodeId id = 0; id < num_nodes; ++id) {
      hosts_.push_back(std::make_unique<ProtocolHost>(
          id, protocol, &scheduler_, &network_, &monitor_, commit));
    }
  }

  /// Starts the commit protocol for one transaction spanning all nodes,
  /// coordinated by node 0. Returns the txn id.
  TxnId StartAll(Decision coordinator_vote = Decision::kCommit) {
    const TxnId txn = MakeTxnId(0, ++seq_);
    // One copy-on-write buffer, shared by all n engine records — at large
    // n a per-host deep copy would be O(n^2) bytes per round.
    CowVector<NodeId> participants;
    {
      std::vector<NodeId>& p = participants.Mutable();
      for (NodeId id = 0; id < hosts_.size(); ++id) p.push_back(id);
    }
    for (NodeId id = 1; id < hosts_.size(); ++id) {
      hosts_[id]->engine().ExpectPrepare(txn, 0, participants);
    }
    hosts_[0]->engine().StartCommit(txn, participants, coordinator_vote);
    return txn;
  }

  /// Runs the simulation to quiescence (or the event cap).
  size_t Settle(size_t max_events = 1'000'000) {
    return scheduler_.RunAll(max_events);
  }

  /// Turns on tracing on every host. Call before the scenario runs.
  void EnableTracing(size_t capacity = TraceRecorder::kDefaultCapacity) {
    for (auto& h : hosts_) h->EnableTracing(capacity);
  }

  /// Per-node recorders, for CollectEvents + the exporters.
  std::vector<const TraceRecorder*> recorders() const {
    std::vector<const TraceRecorder*> out;
    out.reserve(hosts_.size());
    for (const auto& h : hosts_) out.push_back(&h->trace());
    return out;
  }

  ProtocolHost& host(NodeId id) { return *hosts_[id]; }
  size_t num_nodes() const { return hosts_.size(); }
  Scheduler& scheduler() { return scheduler_; }
  SimNetwork& network() { return network_; }
  SafetyMonitor& monitor() { return monitor_; }

  /// True when every non-crashed node applied a decision for `txn`.
  bool AllActiveDecided(TxnId txn) const {
    for (NodeId id = 0; id < hosts_.size(); ++id) {
      if (network_.IsCrashed(id)) continue;
      if (!hosts_[id]->applied(txn).has_value()) return false;
    }
    return true;
  }

 private:
  Scheduler scheduler_;
  SimNetwork network_;
  SafetyMonitor monitor_;
  std::vector<std::unique_ptr<ProtocolHost>> hosts_;
  uint64_t seq_ = 0;
};

}  // namespace testbed
}  // namespace ecdb

#endif  // ECDB_COMMIT_TESTBED_H_
