#ifndef ECDB_COMMIT_RECOVERY_H_
#define ECDB_COMMIT_RECOVERY_H_

#include <vector>

#include "common/types.h"
#include "wal/wal.h"

namespace ecdb {

/// What a recovering node should do with a transaction that was in flight
/// when it crashed.
enum class RecoveryAction : uint8_t {
  kAbort,         // independently abort (rules i and ii of Section 4.2)
  kCommit,        // independently commit (rule iii, commit decision logged)
  kConsultPeers,  // outcome unknowable locally; ask active participants
};

/// Implements the independent-recovery analysis of Section 4.2: given the
/// local WAL, decide each in-flight transaction's fate without (when
/// possible) contacting other nodes.
///
/// Rules, keyed on the *last* WAL entry for the transaction:
///  * none / begin_commit .......... abort  (failed before voting / before
///                                   reaching a decision — rules i, ii)
///  * ready / pre-commit ........... consult peers (voted commit; the
///                                   global outcome is unknowable locally —
///                                   the case where 2PC/3PC/EC all lack
///                                   independent recovery)
///  * *-commit-decision/received ... commit (rule iii)
///  * *-abort-decision/received .... abort  (rule iii)
///  * transaction-commit/abort ..... already durable; redo is a no-op
class RecoveryManager {
 public:
  /// Action for one transaction based on `wal`'s last entry for it.
  static RecoveryAction Analyze(const WriteAheadLog& wal, TxnId txn);

  /// Same, from an already-fetched last record (nullopt = no entry).
  static RecoveryAction AnalyzeRecord(const std::optional<LogRecord>& last);

  /// Scans `wal` and returns every transaction with protocol activity but
  /// no terminal (transaction-commit/abort) entry — the set a recovering
  /// node must resolve.
  static std::vector<TxnId> InFlightTxns(const WriteAheadLog& wal);
};

}  // namespace ecdb

#endif  // ECDB_COMMIT_RECOVERY_H_
