#ifndef ECDB_COMMIT_COMMIT_ENGINE_H_
#define ECDB_COMMIT_COMMIT_ENGINE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include <algorithm>

#include "commit/commit_env.h"
#include "common/cow_vector.h"
#include "common/flat_map.h"
#include "common/types.h"
#include "net/message.h"
#include "trace/trace_recorder.h"

namespace ecdb {

/// Set of NodeIds stored as a flat unsorted vector. Cohorts are tens of
/// nodes at most, where a linear scan over contiguous ids beats hashing —
/// and, unlike unordered_set, membership changes never allocate once the
/// vector has grown. Used for the per-transaction bookkeeping sets that
/// the commit engine updates on every vote/ack/decision receipt.
class FlatNodeSet {
 public:
  /// Inserts `n` if absent. Returns true when the set changed.
  bool insert(NodeId n) {
    if (contains(n)) return false;
    ids_.push_back(n);
    return true;
  }

  /// Removes `n` if present (order is not preserved). Returns the number
  /// of elements removed (0 or 1), mirroring std::unordered_set::erase.
  size_t erase(NodeId n) {
    auto it = std::find(ids_.begin(), ids_.end(), n);
    if (it == ids_.end()) return 0;
    *it = ids_.back();
    ids_.pop_back();
    return 1;
  }

  bool contains(NodeId n) const {
    return std::find(ids_.begin(), ids_.end(), n) != ids_.end();
  }
  size_t count(NodeId n) const { return contains(n) ? 1 : 0; }
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  void clear() { ids_.clear(); }

  std::vector<NodeId>::const_iterator begin() const { return ids_.begin(); }
  std::vector<NodeId>::const_iterator end() const { return ids_.end(); }

 private:
  std::vector<NodeId> ids_;
};

/// Timeouts governing the commit protocols. All values in microseconds of
/// (simulated or real) time. Timeouts must exceed the maximum round-trip
/// message delay — the synchrony assumption under which the paper proves EC
/// safe (Section 4 shows no commit protocol is safe under unbounded delay).
struct CommitEngineConfig {
  /// How long a node waits for the message that drives its next state
  /// transition (votes at the coordinator, Prepare/decision at cohorts).
  Micros timeout_us = 10'000;

  /// How long a termination-protocol initiator collects state replies
  /// before evaluating leadership.
  Micros termination_window_us = 5'000;

  /// Keep a map of decided transactions so late termination queries (from
  /// nodes that timed out after this node cleaned up) can still be
  /// answered. Enabled by fault-injection tests; off for benchmarks.
  bool keep_decision_ledger = false;

  /// Upper bound on decision-ledger entries; 0 = unbounded. The ledger
  /// exists to answer peers whose termination timers are still running,
  /// i.e. queries land within a protocol-timeout window of the decision —
  /// a bounded FIFO loses nothing as long as the cap outlives that window
  /// at peak decision rate (the default gives >10x headroom at the
  /// throughput benchmarks' rates). Left unbounded, a long throughput run
  /// grows the map without limit and every insert walks colder and colder
  /// memory, which measurably dominates the threaded-runtime profile.
  uint32_t decision_ledger_cap = 65'536;

  /// Opt-in (0 = the paper's rule, proven for fail-stop): an EC/3PC
  /// termination leader that is missing state replies from one or more
  /// queried peers re-runs the election up to this many rounds before
  /// falling back to the unilateral decision rules. Under message loss —
  /// the regime where Section 4 shows *no* commit protocol is safe — a
  /// silent peer may have applied a decision the leader never saw, and
  /// "nobody I heard from knows it" no longer justifies the irreversible
  /// unilateral abort. Retrying shrinks that window from one lossy round
  /// to N consecutive lossy rounds. Chaos campaigns and the loss-soak
  /// tests enable it; benchmarks and the fail-stop sweeps keep 0. Has no
  /// effect on the 2PC family, whose fallback already blocks instead of
  /// guessing.
  uint32_t term_fruitless_retries = 0;
};

/// Per-transaction, per-node view of the commit protocol, exposed for
/// tests and the invariant monitor.
struct CommitTxnStatus {
  CohortState state = CohortState::kInitial;
  bool is_coordinator = false;
  bool decided = false;
  Decision decision = Decision::kAbort;
  bool blocked = false;
  bool done = false;  // cleanup delivered to host
  bool in_termination = false;
};

/// Atomic-commitment engine for one node. Implements the coordinator and
/// participant state machines of 2PC, 3PC and EasyCommit (plus the
/// forwarding-disabled EC ablation), and the cooperative termination
/// protocol each of them falls back to on timeouts.
///
/// Host contract:
///  * Coordinator side: call StartCommit() once the transaction's fragments
///    have all executed successfully.
///  * Participant side: call ExpectPrepare() when a remote fragment
///    executes, so the node can time out if the Prepare never arrives
///    (termination case B).
///  * Route every commit-protocol message (kPrepare .. kTermStateReply) to
///    OnMessage(), and deliver timer expirations to OnTimeout().
///
/// The engine is deliberately single-threaded; each runtime serializes
/// calls per node.
class CommitEngine {
 public:
  CommitEngine(CommitProtocol protocol, CommitEnv* env,
               CommitEngineConfig config = {});

  CommitEngine(const CommitEngine&) = delete;
  CommitEngine& operator=(const CommitEngine&) = delete;

  CommitProtocol protocol() const { return protocol_; }

  /// Coordinator entry point. `participants` lists every node touching the
  /// transaction with the coordinator (this node) first. `own_vote` is the
  /// local fragment's vote. Copy-on-write: a host that already holds the
  /// list in a CowVector hands over a reference-counted view; plain
  /// std::vector arguments convert (one copy) at the call site.
  void StartCommit(TxnId txn, CowVector<NodeId> participants,
                   Decision own_vote);

  /// Participant entry point: a fragment of `txn` executed here; the
  /// coordinator will (normally) send Prepare. `participants` is the full
  /// participant list (coordinator first), piggybacked on the fragment.
  void ExpectPrepare(TxnId txn, NodeId coordinator,
                     CowVector<NodeId> participants);

  /// Delivers a commit-protocol or termination-protocol message.
  void OnMessage(const Message& msg);

  /// Drops all engine state for `txn` without callbacks. The host calls
  /// this when an attempt is aborted *before* the commit protocol started
  /// (execution-phase rollback), so a stale ExpectPrepare record does not
  /// later trigger spurious termination rounds.
  void Forget(TxnId txn);

  /// Re-registers a transaction after this node recovered from a crash in
  /// the consult-peers case (last WAL entry `ready`/`pre-commit`). The
  /// armed timer fires the termination protocol, which consults the listed
  /// participants for the outcome.
  void ResumeAfterRecovery(TxnId txn, NodeId coordinator,
                           CowVector<NodeId> participants,
                           CohortState state);

  /// Delivers the expiration of the timer armed via CommitEnv::ArmTimer.
  void OnTimeout(TxnId txn);

  /// Status of `txn` on this node, if the engine still tracks it.
  std::optional<CommitTxnStatus> StatusOf(TxnId txn) const;

  /// Transactions currently marked blocked (2PC only).
  std::vector<TxnId> BlockedTxns() const;

  /// Transactions still tracked without an applied decision, paired with
  /// their blocked flag. After a run has drained, a non-blocked entry here
  /// is a liveness violation (the consistency audit's check c); blocked
  /// entries are 2PC cohorts that gave up, reported separately.
  std::vector<std::pair<TxnId, bool>> UnresolvedTxns() const;

  /// Seeds the decision ledger directly. Recovery calls this for every
  /// decision found in the WAL: the pre-crash engine (and its ledger) is
  /// gone, but peers running the termination protocol must still get an
  /// answer from this node for transactions it decided before crashing.
  void SeedDecision(TxnId txn, Decision decision) {
    LedgerRecord(txn, decision);
  }

  /// Number of transactions still tracked (not yet cleaned up).
  size_t ActiveCount() const { return index_.size(); }

  /// Total termination-protocol rounds initiated by this node.
  uint64_t termination_rounds() const { return termination_rounds_; }

  /// Number of decision messages received that contradicted an already
  /// applied local decision. Always zero for 2PC/3PC/EC under node
  /// failures; nonzero values quantify the safety loss of the
  /// forwarding-disabled ablation.
  uint64_t conflicting_decisions() const { return conflicting_decisions_; }

  /// Global-* receipts for transactions this node had already decided —
  /// EC's O(n^2) forward redundancy arriving after the first copy (plus
  /// ledger-answered duplicates for cleaned-up transactions). The engine
  /// short-circuits these to cleanup accounting instead of re-running the
  /// adoption path; the count sizes how much of the transmit phase is
  /// wire-level redundancy on this node.
  uint64_t duplicate_decisions_suppressed() const {
    return duplicate_decisions_suppressed_;
  }

  /// Attaches the host's trace recorder. The engine records protocol-level
  /// events (state transitions, decision transmit/apply, termination
  /// rounds) into it; message/timer/WAL events are recorded by the host at
  /// its CommitEnv implementation, where the I/O actually happens. Pass
  /// nullptr to detach. Must be re-called if the host recreates the engine
  /// (e.g. after a simulated crash).
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

 private:
  struct TxnRecord {
    bool is_coordinator = false;
    NodeId coordinator = kInvalidNode;
    // Coordinator first; empty until known. Copy-on-write: stamping the
    // list onto every outgoing Prepare/Global-* message shares one buffer
    // with the record instead of deep-copying per recipient.
    CowVector<NodeId> participants;
    CohortState state = CohortState::kInitial;
    Decision own_vote = Decision::kCommit;

    // Coordinator bookkeeping.
    FlatNodeSet votes_pending;
    FlatNodeSet commit_voters;
    FlatNodeSet precommit_acks_pending;  // 3PC
    FlatNodeSet acks_pending;            // 2PC/3PC
    bool any_vote_abort = false;

    // Decision state.
    bool decided = false;
    Decision decision = Decision::kAbort;
    bool applied = false;
    bool blocked = false;
    // The post-decision give-up timer has been armed; MaybeCleanup arms it
    // once per record instead of on every duplicate Global-* receipt.
    bool cleanup_armed = false;

    // EC cleanup tracking: participants from whom a Global-* message
    // (original or forwarded) has been received.
    FlatNodeSet seen_decision_from;

    // Termination protocol.
    bool recovered = false;  // resumed via ResumeAfterRecovery (Section 4.2)
    bool in_termination = false;
    uint32_t term_attempts = 0;
    // One reply per peer, deduplicated by sender on insert. A flat vector:
    // termination queries a handful of peers, replies arrive in network
    // order (deterministic), and the buffer's capacity survives pooling.
    std::vector<std::pair<NodeId, Message>> term_replies;

    // Phase-latency anchors (observability only; per-node clock).
    Micros start_us = 0;    // coordinator: StartCommit
    Micros ready_us = 0;    // participant: entered READY
    Micros applied_us = 0;  // decision applied locally

    /// Returns the record to its default-constructed state while keeping
    /// every container's capacity, so a pooled record re-fills without
    /// allocating. Called when the record is released to the free list —
    /// not on reuse — so shared message payloads are dropped promptly.
    void Reset() {
      is_coordinator = false;
      coordinator = kInvalidNode;
      participants.clear();
      state = CohortState::kInitial;
      own_vote = Decision::kCommit;
      votes_pending.clear();
      commit_voters.clear();
      precommit_acks_pending.clear();
      acks_pending.clear();
      any_vote_abort = false;
      decided = false;
      decision = Decision::kAbort;
      applied = false;
      blocked = false;
      cleanup_armed = false;
      seen_decision_from.clear();
      recovered = false;
      in_termination = false;
      term_attempts = 0;
      term_replies.clear();
      start_us = 0;
      ready_us = 0;
      applied_us = 0;
    }
  };

  /// After this many fruitless termination rounds a blocked 2PC cohort
  /// stops re-arming its timer (it stays blocked; under fail-stop the
  /// missing coordinator never returns).
  static constexpr uint32_t kMaxBlockedRetries = 5;

  TxnRecord* Find(TxnId txn);
  const TxnRecord* Find(TxnId txn) const;

  /// Looks up `txn`'s record, creating (from the pool's free list when
  /// possible) a fresh one if absent. References into the pool are stable
  /// across later insertions — the pool is a deque — matching the
  /// unordered_map semantics the protocol code was written against.
  TxnRecord& GetOrCreate(TxnId txn);

  /// Unlinks `txn`'s record and pushes it, Reset, onto the free list.
  void ReleaseRecord(TxnId txn);

  /// Records a protocol trace event if a recorder is attached and enabled
  /// (two predictable branches on the disabled path; compiled out entirely
  /// under ECDB_TRACE=OFF).
  void Trace(TraceEventType type, TxnId txn, uint64_t arg = 0,
             NodeId peer = kInvalidNode, uint8_t a = 0, uint8_t b = 0) {
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->Record(type, env_->NowUs(), txn, arg, peer, a, b);
    }
  }

  /// Transitions `rec` to `next`, tracing old -> new.
  void SetState(TxnId txn, TxnRecord& rec, CohortState next) {
    Trace(TraceEventType::kTxnState, txn, 0, kInvalidNode,
          static_cast<uint8_t>(next), static_cast<uint8_t>(rec.state));
    rec.state = next;
  }

  void SendTo(NodeId dst, TxnId txn, MsgType type, const TxnRecord& rec,
              bool forwarded = false);
  void BroadcastDecision(TxnId txn, TxnRecord& rec, bool forwarded);

  // --- Coordinator paths ---
  void CoordinatorAllVotesIn(TxnId txn, TxnRecord& rec);
  void CoordinatorDecide(TxnId txn, TxnRecord& rec, Decision decision);
  void OnVote(const Message& msg, TxnRecord& rec);
  void OnPreCommitAck(const Message& msg, TxnRecord& rec);
  void OnAck(const Message& msg, TxnRecord& rec);

  // --- Participant paths ---
  void OnPrepare(const Message& msg);
  void OnPreCommitMsg(const Message& msg, TxnRecord& rec);
  void OnGlobalDecision(const Message& msg, TxnRecord& rec);

  /// Applies a decision learned at a participant (or a termination
  /// leader): forwards it first under EC ("first transmit and then
  /// commit"), then applies and logs it.
  void AdoptDecision(TxnId txn, TxnRecord& rec, Decision decision,
                     bool from_termination);

  /// Marks decided+applied and checks whether cleanup can fire.
  void ApplyAndLog(TxnId txn, TxnRecord& rec, Decision decision);
  void MaybeCleanup(TxnId txn, TxnRecord& rec);
  void FinishCleanup(TxnId txn, TxnRecord& rec);

  /// Sole writer of the decision ledger: records (or overwrites) a
  /// decision and, when `decision_ledger_cap` is nonzero, evicts the
  /// oldest entries FIFO once the cap is exceeded.
  void LedgerRecord(TxnId txn, Decision decision);

  // --- Termination protocol ---
  void StartTermination(TxnId txn, TxnRecord& rec);
  void OnTermElect(const Message& msg);
  void OnTermStateReply(const Message& msg, TxnRecord& rec);
  void TerminationEvaluate(TxnId txn, TxnRecord& rec);
  void TerminationLead(TxnId txn, TxnRecord& rec);

  bool IsEasyCommit() const {
    return protocol_ == CommitProtocol::kEasyCommit ||
           protocol_ == CommitProtocol::kEasyCommitNoForward;
  }
  bool IsTwoPhaseFamily() const {
    return protocol_ == CommitProtocol::kTwoPhase ||
           protocol_ == CommitProtocol::kTwoPhasePresumedAbort ||
           protocol_ == CommitProtocol::kTwoPhasePresumedCommit;
  }
  /// Whether an acknowledgment round follows a `decision` broadcast:
  /// plain 2PC/3PC ack everything, PA acks only commits (aborts are the
  /// presumption), PC acks only aborts, EC acks nothing.
  bool AcksExpectedFor(Decision decision) const {
    switch (protocol_) {
      case CommitProtocol::kTwoPhase:
      case CommitProtocol::kThreePhase:
        return true;
      case CommitProtocol::kTwoPhasePresumedAbort:
        return decision == Decision::kCommit;
      case CommitProtocol::kTwoPhasePresumedCommit:
        return decision == Decision::kAbort;
      case CommitProtocol::kEasyCommit:
      case CommitProtocol::kEasyCommitNoForward:
        return false;
    }
    return true;
  }
  bool ForwardingEnabled() const {
    return protocol_ == CommitProtocol::kEasyCommit;
  }

  CommitProtocol protocol_;
  CommitEnv* env_;
  CommitEngineConfig config_;
  TraceRecorder* trace_ = nullptr;

  // Record storage is pooled: `index_` maps txn -> slot in `pool_`, and
  // cleaned-up slots go onto `free_records_` for reuse with their
  // containers' capacity intact. In steady state (bounded concurrent
  // transactions) the per-transaction bookkeeping allocates nothing — the
  // unordered_map this replaces paid a node allocation per transaction
  // plus rehash churn, which showed up directly in the threaded runtime's
  // throughput profile. The deque keeps records at stable addresses, so
  // `TxnRecord&` references obtained before an unrelated insert stay valid
  // (the protocol code relies on that, as it did with unordered_map).
  FlatMap<TxnId, uint32_t> index_;
  std::deque<TxnRecord> pool_;
  std::vector<uint32_t> free_records_;

  FlatMap<TxnId, Decision> decision_ledger_;
  std::deque<TxnId> ledger_fifo_;  // insertion order, drives cap eviction
  uint64_t termination_rounds_ = 0;
  uint64_t conflicting_decisions_ = 0;
  uint64_t duplicate_decisions_suppressed_ = 0;
};

}  // namespace ecdb

#endif  // ECDB_COMMIT_COMMIT_ENGINE_H_
