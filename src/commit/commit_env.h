#ifndef ECDB_COMMIT_COMMIT_ENV_H_
#define ECDB_COMMIT_COMMIT_ENV_H_

#include "common/types.h"
#include "net/message.h"
#include "wal/log_record.h"

namespace ecdb {

/// Phases of a committed transaction's commit-protocol lifetime, measured
/// at the coordinator/participant that owns the sample:
///  * kVoteCollection  — coordinator: StartCommit until the last vote is in
///  * kDecisionTransmit — participant: entering READY until the global
///    decision arrives (the transmit leg of "first transmit then commit")
///  * kDecisionApply   — any node: decision applied locally until cleanup
enum class CommitPhase : uint8_t {
  kVoteCollection,
  kDecisionTransmit,
  kDecisionApply,
};

inline constexpr size_t kNumCommitPhases = 3;

/// Host interface for the commit-protocol engine. The protocol state
/// machines are sans-I/O: every externally visible effect (sending a
/// message, writing the log, arming a timeout, applying a decision) goes
/// through this interface, so the same machines run unchanged inside the
/// discrete-event simulator, the threaded runtime, and unit tests that
/// script message deliveries by hand.
class CommitEnv {
 public:
  virtual ~CommitEnv() = default;

  /// This node's id.
  virtual NodeId self() const = 0;

  /// Transmits `msg` (src is already stamped with self()).
  virtual void Send(Message msg) = 0;

  /// Appends a commit-protocol milestone to this node's WAL. Called
  /// *before* the action it describes takes effect (write-ahead rule).
  virtual void Log(TxnId txn, LogRecordType type) = 0;

  /// Arms (or re-arms) the single protocol timer for `txn`; after
  /// `delay_us` of simulated/real time the host must call
  /// CommitEngine::OnTimeout(txn) unless the timer was re-armed/cancelled.
  virtual void ArmTimer(TxnId txn, Micros delay_us) = 0;

  /// Cancels the pending timer for `txn`, if any.
  virtual void CancelTimer(TxnId txn) = 0;

  /// Participant-side local vote: whether this node's fragment of `txn`
  /// can commit. Without failures every transaction reaching the prepare
  /// phase votes commit (paper footnote 5); fault-injection tests override
  /// this to exercise abort paths.
  virtual Decision VoteFor(TxnId txn) = 0;

  /// Applies the global decision to local state: on commit, release locks
  /// and make writes durable; on abort, roll back the fragment. Called
  /// exactly once per transaction per node.
  virtual void ApplyDecision(TxnId txn, Decision decision) = 0;

  /// The commit protocol cannot make progress for `txn` (2PC cooperative
  /// termination found all active cohorts in READY with the coordinator
  /// failed). The node keeps its locks — this is the blocking behaviour
  /// EasyCommit eliminates.
  virtual void OnBlocked(TxnId txn) = 0;

  /// All protocol activity for `txn` has finished on this node (for EC:
  /// the forwarded decision was received from every other participant, per
  /// Section 5.3); transaction resources may be released.
  virtual void OnCleanup(TxnId txn) = 0;

  /// Current time on this node's clock, in microseconds. Used only for
  /// observability (trace timestamps and phase-latency samples), never for
  /// protocol decisions, so the default is fine for hosts that don't track
  /// time (hand-scripted unit tests).
  virtual Micros NowUs() const { return 0; }

  /// Observability hook: `txn` spent `elapsed_us` in `phase` on this node.
  /// Emitted only for commit-bound transactions; hosts aggregate the
  /// samples into per-phase latency histograms.
  virtual void OnPhaseSample(TxnId txn, CommitPhase phase, Micros elapsed_us) {
    (void)txn;
    (void)phase;
    (void)elapsed_us;
  }
};

}  // namespace ecdb

#endif  // ECDB_COMMIT_COMMIT_ENV_H_
