#include "commit/invariants.h"

#include <optional>

namespace ecdb {

StateClass ClassOf(CohortState state) {
  switch (state) {
    case CohortState::kInitial:
    case CohortState::kReady:
    case CohortState::kWait:
    case CohortState::kPreCommit:
      return StateClass::kUndecided;
    case CohortState::kTransmitA:
      return StateClass::kTransmitA;
    case CohortState::kTransmitC:
      return StateClass::kTransmitC;
    case CohortState::kAborted:
      return StateClass::kAbort;
    case CohortState::kCommitted:
      return StateClass::kCommit;
  }
  return StateClass::kUndecided;
}

bool CanCoexist(StateClass a, StateClass b) {
  // Figure 7, symmetric. Row/column order:
  // UNDECIDED, TRANSMIT-A, TRANSMIT-C, ABORT, COMMIT.
  static constexpr bool kTable[5][5] = {
      //            UND    T-A    T-C    ABORT  COMMIT
      /* UND    */ {true,  true,  true,  false, false},
      /* T-A    */ {true,  true,  false, true,  false},
      /* T-C    */ {true,  false, true,  false, true},
      /* ABORT  */ {false, true,  false, true,  false},
      /* COMMIT */ {false, false, true,  false, true},
  };
  return kTable[static_cast<int>(a)][static_cast<int>(b)];
}

void SafetyMonitor::RecordApplied(TxnId txn, NodeId node, Decision decision) {
  std::lock_guard<std::mutex> lock(mu_);
  PerTxn& per = txns_[txn];
  per.applied[node] = decision;
  for (const auto& [other, d] : per.applied) {
    if (d != decision) {
      per.conflict = true;
      break;
    }
  }
}

void SafetyMonitor::RecordBlocked(TxnId txn, NodeId node) {
  (void)node;
  std::lock_guard<std::mutex> lock(mu_);
  blocked_reports_++;
  blocked_txns_[txn]++;
}

std::vector<TxnId> SafetyMonitor::Violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TxnId> out;
  for (const auto& [txn, per] : txns_) {
    if (per.conflict) out.push_back(txn);
  }
  return out;
}

std::optional<Decision> SafetyMonitor::DecisionOf(TxnId txn,
                                                  NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(txn);
  if (it == txns_.end()) return std::nullopt;
  auto nit = it->second.applied.find(node);
  if (nit == it->second.applied.end()) return std::nullopt;
  return nit->second;
}

std::vector<std::pair<NodeId, Decision>> SafetyMonitor::AppliedFor(
    TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<NodeId, Decision>> out;
  auto it = txns_.find(txn);
  if (it == txns_.end()) return out;
  for (const auto& [node, d] : it->second.applied) out.emplace_back(node, d);
  return out;
}

}  // namespace ecdb
