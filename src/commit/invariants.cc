#include "commit/invariants.h"

#include <algorithm>
#include <optional>

namespace ecdb {

StateClass ClassOf(CohortState state) {
  switch (state) {
    case CohortState::kInitial:
    case CohortState::kReady:
    case CohortState::kWait:
    case CohortState::kPreCommit:
      return StateClass::kUndecided;
    case CohortState::kTransmitA:
      return StateClass::kTransmitA;
    case CohortState::kTransmitC:
      return StateClass::kTransmitC;
    case CohortState::kAborted:
      return StateClass::kAbort;
    case CohortState::kCommitted:
      return StateClass::kCommit;
  }
  return StateClass::kUndecided;
}

bool CanCoexist(StateClass a, StateClass b) {
  // Figure 7, symmetric. Row/column order:
  // UNDECIDED, TRANSMIT-A, TRANSMIT-C, ABORT, COMMIT.
  static constexpr bool kTable[5][5] = {
      //            UND    T-A    T-C    ABORT  COMMIT
      /* UND    */ {true,  true,  true,  false, false},
      /* T-A    */ {true,  true,  false, true,  false},
      /* T-C    */ {true,  false, true,  false, true},
      /* ABORT  */ {false, true,  false, true,  false},
      /* COMMIT */ {false, false, true,  false, true},
  };
  return kTable[static_cast<int>(a)][static_cast<int>(b)];
}

void SafetyMonitor::RecordApplied(TxnId txn, NodeId node, Decision decision) {
  Stripe& stripe = StripeFor(txn);
  std::lock_guard<std::mutex> lock(stripe.mu);
  PerTxn& per = stripe.txns[txn];
  bool found = false;
  for (auto& [other, d] : per.applied) {
    if (other == node) {
      d = decision;
      found = true;
    } else if (d != decision) {
      per.conflict = true;
    }
  }
  if (!found) per.applied.emplace_back(node, decision);
}

void SafetyMonitor::RecordBlocked(TxnId txn, NodeId node) {
  (void)node;
  Stripe& stripe = StripeFor(txn);
  std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.blocked_reports++;
  stripe.blocked[txn]++;
}

std::vector<TxnId> SafetyMonitor::Violations() const {
  std::vector<TxnId> out;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& slot : stripe.txns) {
      if (slot.value.conflict) out.push_back(slot.key);
    }
  }
  return out;
}

uint64_t SafetyMonitor::blocked_reports() const {
  uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    total += stripe.blocked_reports;
  }
  return total;
}

size_t SafetyMonitor::BlockedTxnCount() const {
  size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    total += stripe.blocked.size();
  }
  return total;
}

std::optional<Decision> SafetyMonitor::DecisionOf(TxnId txn,
                                                  NodeId node) const {
  const Stripe& stripe = StripeFor(txn);
  std::lock_guard<std::mutex> lock(stripe.mu);
  const PerTxn* per = stripe.txns.Find(txn);
  if (per == nullptr) return std::nullopt;
  for (const auto& [other, d] : per->applied) {
    if (other == node) return d;
  }
  return std::nullopt;
}

std::vector<std::pair<NodeId, Decision>> SafetyMonitor::AppliedFor(
    TxnId txn) const {
  const Stripe& stripe = StripeFor(txn);
  std::lock_guard<std::mutex> lock(stripe.mu);
  const PerTxn* per = stripe.txns.Find(txn);
  if (per == nullptr) return {};
  return per->applied;
}

}  // namespace ecdb
