// Offline inspector for JSONL protocol traces (see docs/OBSERVABILITY.md).
//
// Usage:
//   trace_inspect TRACE.jsonl             # summary: events per node/type
//   trace_inspect --txn C:SEQ TRACE.jsonl # per-transaction timeline
//   trace_inspect --check TRACE.jsonl     # verify the EC ordering
//                                         # invariant; exit 1 on violation
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "trace/trace_check.h"
#include "trace/trace_export.h"
#include "trace/trace_reader.h"

namespace {

using namespace ecdb;

int Usage() {
  std::fprintf(stderr,
               "usage: trace_inspect [--check | --txn COORD:SEQ] TRACE.jsonl\n");
  return 2;
}

void PrintSummary(const ParsedTrace& trace) {
  std::printf("runtime=%s protocol=%s nodes=%u events=%zu\n",
              trace.meta.runtime.c_str(), trace.meta.protocol.c_str(),
              trace.meta.num_nodes, trace.events.size());
  std::map<NodeId, uint64_t> per_node;
  std::map<std::string, uint64_t> per_type;
  std::map<TxnId, uint64_t> per_txn;
  for (const TraceEvent& ev : trace.events) {
    per_node[ev.node]++;
    per_type[ToString(ev.type)]++;
    if (ev.txn != kInvalidTxn) per_txn[ev.txn]++;
  }
  std::printf("per-node:");
  for (const auto& [node, n] : per_node) {
    std::printf(" %u=%llu", node, static_cast<unsigned long long>(n));
  }
  std::printf("\nper-type:");
  for (const auto& [type, n] : per_type) {
    std::printf(" %s=%llu", type.c_str(), static_cast<unsigned long long>(n));
  }
  std::printf("\ntransactions traced: %zu\n", per_txn.size());
}

void PrintTimeline(const ParsedTrace& trace, TxnId txn) {
  std::printf("timeline for txn %u:%llu (%s, per-node clocks)\n",
              TxnCoordinator(txn),
              static_cast<unsigned long long>(TxnSequence(txn)),
              trace.meta.protocol.c_str());
  size_t shown = 0;
  for (const TraceEvent& ev : trace.events) {
    if (ev.txn != txn) continue;
    std::printf("  t=%-10llu node %-3u %-16s %s\n",
                static_cast<unsigned long long>(ev.at), ev.node,
                ToString(ev.type).c_str(), DescribeEvent(ev).c_str());
    shown++;
  }
  if (shown == 0) std::printf("  (no events)\n");
}

int RunCheck(const ParsedTrace& trace) {
  const TraceCheckResult result = CheckTransmitBeforeApply(trace);
  if (!result.strict) {
    std::printf(
        "transmit-before-apply: not applicable (protocol %s); trace OK\n",
        trace.meta.protocol.c_str());
    return 0;
  }
  if (result.ok) {
    std::printf(
        "transmit-before-apply: OK (%llu applies, each preceded by the "
        "node's own decision transmit)\n",
        static_cast<unsigned long long>(result.applies_checked));
    return 0;
  }
  std::fprintf(stderr, "transmit-before-apply: %zu violation(s)\n",
               result.violations.size());
  for (const std::string& v : result.violations) {
    std::fprintf(stderr, "  %s\n", v.c_str());
  }
  return 1;
}

bool ParseTxnArg(const char* s, TxnId* out) {
  const char* colon = std::strchr(s, ':');
  if (colon == nullptr) return false;
  char* end = nullptr;
  const unsigned long coord = std::strtoul(s, &end, 10);
  if (end != colon) return false;
  const unsigned long long seq = std::strtoull(colon + 1, &end, 10);
  if (*end != '\0') return false;
  *out = MakeTxnId(static_cast<NodeId>(coord), seq);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  bool have_txn = false;
  TxnId txn = kInvalidTxn;
  const char* path = nullptr;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--txn") == 0) {
      if (++i >= argc || !ParseTxnArg(argv[i], &txn)) return Usage();
      have_txn = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return Usage();
    }
  }
  if (path == nullptr) return Usage();

  ParsedTrace trace;
  std::string error;
  if (!ReadJsonlTraceFile(path, &trace, &error)) {
    std::fprintf(stderr, "trace_inspect: %s\n", error.c_str());
    return 2;
  }

  if (check) return RunCheck(trace);
  if (have_txn) {
    PrintTimeline(trace, txn);
    return 0;
  }
  PrintSummary(trace);
  return 0;
}
