// chaos_run: seeded chaos campaigns against the simulated cluster.
//
//   chaos_run [--seeds N] [--first-seed S] [--protocols ec,3pc,2pc]
//             [--intensity light|default|heavy] [--nodes N]
//             [--clients N] [--horizon-us N] [--retries N] [--coalesce]
//             [--scheduler heap|wheel] [--dump-dir DIR] [--trace-dir DIR]
//             [--shrink]
//   chaos_run --plan FILE [--shrink] [--trace-dir DIR] [--protocols ec]
//
// Campaign mode runs N seeds per protocol and prints one table row per
// protocol. A failing seed's plan is dumped to --dump-dir (and, with
// --shrink, ddmin-minimized to a *.min.json repro); --trace-dir replays
// each failure with protocol tracing on and writes a JSONL trace.
// Replay mode (--plan) re-runs one dumped plan and prints the audit
// verdict. Exit code: 0 if every audit passed, 1 otherwise (blocked 2PC
// cohorts are reported in the table, not counted as failures).

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "chaos/campaign.h"
#include "chaos/fault_plan.h"
#include "chaos/shrinker.h"
#include "common/types.h"

namespace {

using namespace ecdb;

bool ParseProtocol(const std::string& name, CommitProtocol* out) {
  std::string lower;
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "ec" || lower == "easycommit") {
    *out = CommitProtocol::kEasyCommit;
  } else if (lower == "ec-noforward" || lower == "ecnoforward") {
    *out = CommitProtocol::kEasyCommitNoForward;
  } else if (lower == "2pc") {
    *out = CommitProtocol::kTwoPhase;
  } else if (lower == "3pc") {
    *out = CommitProtocol::kThreePhase;
  } else if (lower == "2pc-pa") {
    *out = CommitProtocol::kTwoPhasePresumedAbort;
  } else if (lower == "2pc-pc") {
    *out = CommitProtocol::kTwoPhasePresumedCommit;
  } else {
    return false;
  }
  return true;
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : csv) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string SlugFor(CommitProtocol protocol, uint64_t seed) {
  std::string slug = ToString(protocol);
  for (char& c : slug) {
    c = static_cast<char>(std::tolower(c));
  }
  return slug + "_seed" + std::to_string(seed);
}

void PrintAudit(const AuditResult& audit) {
  std::printf("audit: %s (quiescent=%d acked=%llu blocked=%llu)\n",
              audit.ok() ? "PASS" : "FAIL", audit.quiescent ? 1 : 0,
              static_cast<unsigned long long>(audit.acked_commits),
              static_cast<unsigned long long>(audit.blocked_txns));
  for (const AuditViolation& v : audit.violations) {
    std::printf("  %s txn=%llu: %s\n", v.check.c_str(),
                static_cast<unsigned long long>(v.txn), v.detail.c_str());
  }
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--first-seed S] [--protocols csv]\n"
               "          [--intensity light|default|heavy] [--nodes N]\n"
               "          [--clients N] [--horizon-us N] [--retries N]\n"
               "          [--coalesce] [--scheduler heap|wheel]\n"
               "          [--dump-dir DIR] [--trace-dir DIR]\n"
               "          [--shrink]\n"
               "       %s --plan FILE [--shrink] [--trace-dir DIR]\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seeds = 8;
  uint64_t first_seed = 1;
  std::string protocols_csv = "ec,3pc,2pc";
  std::string plan_path;
  std::string dump_dir;
  std::string trace_dir;
  bool shrink = false;
  ChaosCaseConfig cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      seeds = std::strtoull(next("--seeds"), nullptr, 10);
    } else if (arg == "--first-seed") {
      first_seed = std::strtoull(next("--first-seed"), nullptr, 10);
    } else if (arg == "--protocols") {
      protocols_csv = next("--protocols");
    } else if (arg == "--intensity") {
      if (!ParseIntensity(next("--intensity"), &cfg.intensity)) {
        std::fprintf(stderr, "unknown intensity\n");
        return 2;
      }
    } else if (arg == "--nodes") {
      cfg.num_nodes =
          static_cast<uint32_t>(std::strtoul(next("--nodes"), nullptr, 10));
    } else if (arg == "--clients") {
      cfg.clients_per_node =
          static_cast<uint32_t>(std::strtoul(next("--clients"), nullptr, 10));
    } else if (arg == "--horizon-us") {
      cfg.horizon_us = std::strtoull(next("--horizon-us"), nullptr, 10);
    } else if (arg == "--retries") {
      cfg.term_fruitless_retries =
          static_cast<uint32_t>(std::strtoul(next("--retries"), nullptr, 10));
    } else if (arg == "--coalesce") {
      cfg.coalesce_transport = true;
    } else if (arg == "--scheduler") {
      const std::string backend = next("--scheduler");
      if (backend == "heap") {
        cfg.scheduler_backend = SchedulerBackend::kHeap;
      } else if (backend == "wheel") {
        cfg.scheduler_backend = SchedulerBackend::kTimerWheel;
      } else {
        std::fprintf(stderr, "unknown scheduler backend '%s'\n",
                     backend.c_str());
        return 2;
      }
    } else if (arg == "--plan") {
      plan_path = next("--plan");
    } else if (arg == "--dump-dir") {
      dump_dir = next("--dump-dir");
    } else if (arg == "--trace-dir") {
      trace_dir = next("--trace-dir");
    } else if (arg == "--shrink") {
      shrink = true;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }

  std::vector<CommitProtocol> protocols;
  for (const std::string& name : SplitCsv(protocols_csv)) {
    CommitProtocol p;
    if (!ParseProtocol(name, &p)) {
      std::fprintf(stderr, "unknown protocol '%s'\n", name.c_str());
      return 2;
    }
    protocols.push_back(p);
  }
  if (protocols.empty()) return Usage(argv[0]);
  if (!dump_dir.empty()) std::filesystem::create_directories(dump_dir);
  if (!trace_dir.empty()) std::filesystem::create_directories(trace_dir);

  // ---- Replay mode -------------------------------------------------------
  if (!plan_path.empty()) {
    FaultPlan plan;
    std::string error;
    if (!ReadFaultPlanFile(plan_path, &plan, &error)) {
      std::fprintf(stderr, "cannot read %s: %s\n", plan_path.c_str(),
                   error.c_str());
      return 2;
    }
    cfg.protocol = protocols.front();
    std::string trace_path;
    if (!trace_dir.empty()) {
      trace_path = trace_dir + "/" +
                   SlugFor(cfg.protocol, plan.seed) + ".trace.jsonl";
    }
    std::printf("replaying %s (%s, seed %llu, %zu events)\n",
                plan_path.c_str(), ToString(cfg.protocol).c_str(),
                static_cast<unsigned long long>(plan.seed),
                plan.events.size());
    const ChaosCaseResult result = ReplayFaultPlan(cfg, plan, trace_path);
    PrintAudit(result.audit);
    if (!trace_path.empty()) {
      std::printf("trace: %s\n", trace_path.c_str());
    }
    if (shrink && !result.ok()) {
      const ShrinkResult shrunk = ShrinkFaultPlan(cfg, plan);
      std::printf("shrunk: %zu -> %zu events in %zu replays\n",
                  plan.events.size(), shrunk.plan.events.size(),
                  shrunk.replays);
      const std::string min_path = plan_path + ".min.json";
      WriteFaultPlanFile(shrunk.plan, min_path, nullptr);
      std::printf("minimal plan: %s\n", min_path.c_str());
    }
    return result.ok() ? 0 : 1;
  }

  // ---- Campaign mode -----------------------------------------------------
  std::vector<CampaignSummary> rows;
  bool all_ok = true;
  for (CommitProtocol protocol : protocols) {
    cfg.protocol = protocol;
    auto on_failure = [&](const ChaosCaseResult& result) {
      std::printf("FAIL %s seed %llu (%zu events, %llu faults)\n",
                  ToString(protocol).c_str(),
                  static_cast<unsigned long long>(result.seed),
                  result.plan.events.size(),
                  static_cast<unsigned long long>(result.faults_applied));
      PrintAudit(result.audit);
      const std::string slug = SlugFor(protocol, result.seed);
      FaultPlan repro = result.plan;
      if (shrink) {
        const ShrinkResult shrunk = ShrinkFaultPlan(cfg, result.plan);
        if (shrunk.reproduced) {
          repro = shrunk.plan;
          std::printf("  shrunk: %zu -> %zu events in %zu replays\n",
                      result.plan.events.size(), repro.events.size(),
                      shrunk.replays);
        }
      }
      if (!dump_dir.empty()) {
        const std::string path = dump_dir + "/" + slug + ".json";
        WriteFaultPlanFile(result.plan, path, nullptr);
        std::printf("  plan: %s\n", path.c_str());
        if (shrink && repro.events.size() < result.plan.events.size()) {
          const std::string min_path = dump_dir + "/" + slug + ".min.json";
          WriteFaultPlanFile(repro, min_path, nullptr);
          std::printf("  minimal plan: %s\n", min_path.c_str());
        }
      }
      if (!trace_dir.empty()) {
        const std::string trace_path =
            trace_dir + "/" + slug + ".trace.jsonl";
        ReplayFaultPlan(cfg, repro, trace_path);
        std::printf("  trace: %s\n", trace_path.c_str());
      }
    };
    const CampaignSummary summary =
        RunCampaign(cfg, first_seed, seeds, on_failure);
    rows.push_back(summary);
    all_ok = all_ok && summary.ok();
  }
  std::fputs(FormatCampaignTable(rows).c_str(), stdout);
  return all_ok ? 0 : 1;
}
