// scale_smoke: budgeted large-cluster commit rounds for CI.
//
//   scale_smoke [--nodes N] [--participants K] [--rounds R]
//               [--protocol ec|3pc|2pc] [--scheduler heap|wheel]
//               [--max-rss-mb MB] [--max-seconds S]
//
// Builds an N-node ProtocolTestbed (the discrete-event simulator: real
// scheduler, real SimNetwork, real CommitEngines) and drives R full commit
// rounds, each spanning a K-participant window that rotates across the
// cluster so successive rounds touch different links. Prints one summary
// line and enforces two budgets:
//
//   --max-rss-mb    peak RSS (getrusage ru_maxrss) — the scale axis's
//                   memory acceptance: node/link state must be O(active),
//                   not O(N^2).
//   --max-seconds   wall-clock budget for the whole run.
//
// Exit code 0 iff every round committed everywhere and both budgets held.
// CI runs this at N=1024 (full-span rounds) and N=10000 (K=512 windows);
// see .github/workflows/ci.yml.

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "commit/testbed.h"
#include "net/network.h"
#include "sim/scheduler.h"

namespace {

using namespace ecdb;
using ecdb::testbed::ProtocolTestbed;

double PeakRssMb() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--nodes N] [--participants K] [--rounds R]\n"
               "          [--protocol ec|3pc|2pc] [--scheduler heap|wheel]\n"
               "          [--max-rss-mb MB] [--max-seconds S]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t nodes = 10'000;
  uint32_t participants = 512;
  uint32_t rounds = 3;
  CommitProtocol protocol = CommitProtocol::kEasyCommit;
  SchedulerBackend backend = SchedulerBackend::kTimerWheel;
  double max_rss_mb = 0;    // 0 = unenforced
  double max_seconds = 0;   // 0 = unenforced

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--nodes") {
      nodes = static_cast<uint32_t>(std::strtoul(next("--nodes"), nullptr, 10));
    } else if (arg == "--participants") {
      participants = static_cast<uint32_t>(
          std::strtoul(next("--participants"), nullptr, 10));
    } else if (arg == "--rounds") {
      rounds =
          static_cast<uint32_t>(std::strtoul(next("--rounds"), nullptr, 10));
    } else if (arg == "--protocol") {
      const std::string name = next("--protocol");
      if (name == "ec") {
        protocol = CommitProtocol::kEasyCommit;
      } else if (name == "3pc") {
        protocol = CommitProtocol::kThreePhase;
      } else if (name == "2pc") {
        protocol = CommitProtocol::kTwoPhase;
      } else {
        std::fprintf(stderr, "unknown protocol '%s'\n", name.c_str());
        return 2;
      }
    } else if (arg == "--scheduler") {
      const std::string name = next("--scheduler");
      if (name == "heap") {
        backend = SchedulerBackend::kHeap;
      } else if (name == "wheel") {
        backend = SchedulerBackend::kTimerWheel;
      } else {
        std::fprintf(stderr, "unknown scheduler backend '%s'\n", name.c_str());
        return 2;
      }
    } else if (arg == "--max-rss-mb") {
      max_rss_mb = std::strtod(next("--max-rss-mb"), nullptr);
    } else if (arg == "--max-seconds") {
      max_seconds = std::strtod(next("--max-seconds"), nullptr);
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (nodes < 2 || participants < 2 || rounds == 0) {
    std::fprintf(stderr, "need --nodes >= 2, --participants >= 2, "
                         "--rounds >= 1\n");
    return 2;
  }
  if (participants > nodes) participants = nodes;

  const auto wall_start = std::chrono::steady_clock::now();

  NetworkConfig net;
  net.base_latency_us = 1;
  net.jitter_us = 0;
  CommitEngineConfig commit;
  ProtocolTestbed bed(protocol, nodes, net, commit, /*seed=*/7, backend);
  bed.network().EnableCoalescing(true);

  // A K-participant EC round is ~K^2 decision messages; give Settle
  // comfortable headroom on top of that.
  const size_t event_budget =
      64ULL * participants * participants * rounds + 1'000'000ULL;

  uint64_t total_events = 0;
  bool all_applied = true;
  for (uint32_t r = 0; r < rounds; ++r) {
    // Rotate the participant window so each round exercises fresh links —
    // the access pattern the O(active-link) network state is built for.
    const NodeId base_id = static_cast<NodeId>(
        (static_cast<uint64_t>(r) * participants) % nodes);
    const NodeId coord = base_id;
    const TxnId txn = MakeTxnId(coord, r + 1);
    CowVector<NodeId> members;
    {
      std::vector<NodeId>& m = members.Mutable();
      m.reserve(participants);
      for (uint32_t k = 0; k < participants; ++k) {
        m.push_back(static_cast<NodeId>((base_id + k) % nodes));
      }
    }
    for (uint32_t k = 1; k < participants; ++k) {
      const NodeId id = static_cast<NodeId>((base_id + k) % nodes);
      bed.host(id).engine().ExpectPrepare(txn, coord, members);
    }
    bed.host(coord).engine().StartCommit(txn, members, Decision::kCommit);
    total_events += bed.Settle(event_budget);
    for (uint32_t k = 0; k < participants; ++k) {
      const NodeId id = static_cast<NodeId>((base_id + k) % nodes);
      const auto decision = bed.host(id).applied(txn);
      if (!decision.has_value() || *decision != Decision::kCommit) {
        std::fprintf(stderr, "round %u: node %u did not apply commit\n", r,
                     id);
        all_applied = false;
      }
    }
  }

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const double rss_mb = PeakRssMb();
  std::printf(
      "scale_smoke: nodes=%u participants=%u rounds=%u protocol=%s "
      "scheduler=%s events=%llu seconds=%.2f maxrss_mb=%.1f\n",
      nodes, participants, rounds, ToString(protocol).c_str(),
      backend == SchedulerBackend::kTimerWheel ? "wheel" : "heap",
      static_cast<unsigned long long>(total_events), seconds, rss_mb);

  int rc = 0;
  if (!all_applied) {
    std::fprintf(stderr, "FAIL: at least one participant missed a commit\n");
    rc = 1;
  }
  if (max_rss_mb > 0 && rss_mb > max_rss_mb) {
    std::fprintf(stderr, "FAIL: peak RSS %.1f MB exceeds budget %.1f MB\n",
                 rss_mb, max_rss_mb);
    rc = 1;
  }
  if (max_seconds > 0 && seconds > max_seconds) {
    std::fprintf(stderr, "FAIL: wall time %.2f s exceeds budget %.2f s\n",
                 seconds, max_seconds);
    rc = 1;
  }
  return rc;
}
